"""Lemma 3.4 — distinct C blocks give distinct vector spaces Span(A).

    *There are q^{(n-1)²/4} rows in the restricted truth matrix, each
    corresponding to a distinct vector space Span(A) of dimension n-1.*

This is what makes the truth-matrix *rows* genuinely different players: the
first agent's free information (C) is faithfully reflected in the geometry
of Span(A).  Executable content:

* :func:`spans_are_distinct` — exhaustively (or on a sample) check that
  different C's give different canonical subspaces.  Subspace equality is
  exact (RREF canonical form), so a hash set suffices;
* :func:`recover_c_from_span` — the *constructive inverse*: given Span(A),
  reconstruct C.  Its existence is a strictly stronger statement than
  distinctness and doubles as a fast injectivity proof;
* :func:`distinctness_counterexample_without_restrictions` — an ablation:
  drop Fig. 3's unit-diagonal restriction and exhibit two different C's
  with identical spans, showing the restriction is load-bearing.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.exact.matrix import Matrix
from repro.exact.rank import rank
from repro.exact.span import Subspace
from repro.singularity.family import Block, RestrictedFamily


def spans_are_distinct(family: RestrictedFamily, c_blocks: Iterable[Block]) -> bool:
    """Do all listed C blocks give pairwise distinct Span(A)?

    Exact: canonical subspace forms are hashable, so this is one pass.
    """
    seen: set[Subspace] = set()
    count = 0
    for c in c_blocks:
        seen.add(family.span_a(c))
        count += 1
    return len(seen) == count


def span_dimension_is_full(family: RestrictedFamily, c_blocks: Iterable[Block]) -> bool:
    """Every Span(A) has dimension n-1 (the other half of the lemma)."""
    return all(
        family.span_a(c).dimension == family.n - 1 for c in c_blocks
    )


def recover_c_from_span(family: RestrictedFamily, span: Subspace) -> Block:
    """Reconstruct the unique C with ``Span(A(C)) == span``.

    Method (this *is* the mechanism of Lemma 3.4's proof, phrased as a
    decoder).  Column ``h+j`` of A has a rigid tail (``e_{h+j}`` on
    coordinates ``h..n-1``); members of the span with that tail form a coset
    of ``Z = span{q·e_{i-1} + e_i : 1 <= i < h}`` (the heads of A's columns
    1..h-1, which are C-independent).  Each generator of Z evaluates to zero
    in base ``-q``:  ``q·(-q)^{i-1} + (-q)^i = 0`` — so the negabase value
    ``Σ head[i]·(-q)^i`` is a *coset invariant*, and the digit expansion of
    that invariant recovers C's column uniquely.  (The paper's inductive
    steps (i)–(iv) are exactly the statement that this invariant pins the
    digits.)

    Raises :class:`ValueError` when the span is not of family form, which
    doubles as a membership test for the family's span set.
    """
    n, h, q = family.n, family.h, family.q
    if span.ambient != n or span.dimension != n - 1:
        raise ValueError("span has the wrong ambient dimension or rank")
    basis = span.basis_matrix()
    assert basis is not None
    basis_t = basis.transpose()  # n x (n-1): columns are basis vectors
    c_rows = [[0] * h for _ in range(h)]
    from repro.exact.solve import solve as exact_solve
    from repro.exact.vector import Vector
    from repro.singularity.negabase import negabase_digits

    tail_rows = list(range(h, n))
    tail_system = basis_t.submatrix(tail_rows, range(n - 1))
    for j in range(h):
        # Any member of the span whose coordinates h..n-1 equal e_{h+j}.
        target = Vector([1 if i == j else 0 for i in range(n - h)])
        sol = exact_solve(tail_system, target)
        if not sol.solvable:
            raise ValueError("span is not of family form (no rigid column)")
        assert sol.particular is not None
        member = basis_t.matvec(list(sol.particular))
        head = member[:h]
        invariant = sum(head[i] * (-q) ** i for i in range(h))
        if invariant.denominator != 1:
            raise ValueError("span is not of family form (non-integral invariant)")
        digits = negabase_digits(int(invariant), q, width=h)
        if digits is None:
            raise ValueError("span is not of family form (invariant out of range)")
        for i in range(h):
            c_rows[i][j] = digits[i]
    return tuple(tuple(row) for row in c_rows)


def verify_recovery(family: RestrictedFamily, c: Block) -> bool:
    """Round trip: recover_c_from_span(Span(A(C))) == C."""
    return recover_c_from_span(family, family.span_a(c)) == family.check_c(c)


def distinctness_counterexample_without_restrictions(
    family: RestrictedFamily,
) -> tuple[Matrix, Matrix]:
    """Ablation: without the Fig. 3 scaffolding, distinct free blocks can
    span identical spaces.

    Returns two *unrestricted* n×(n-1) matrices that differ entrywise yet
    have equal column spans (one is the other with a column doubled) —
    demonstrating why the paper cannot let A be arbitrary.
    """
    n = family.n
    a1 = Matrix.from_function(n, n - 1, lambda i, j: 1 if i == j else 0)
    a2 = a1.map(lambda x: 2 * x)
    if Subspace.column_space(a1) != Subspace.column_space(a2):
        raise AssertionError("ablation construction broke")
    return a1, a2


def count_distinct_spans_sampled(
    family: RestrictedFamily, rng, samples: int
) -> tuple[int, int]:
    """(distinct spans, samples drawn) over random C blocks.

    With q^{h²} possible C's, the birthday bound makes collisions of the
    *C blocks themselves* vanishingly rare at benchmark sizes; any shortfall
    of distinct spans below distinct C's would falsify the lemma.
    """
    seen_c: set[Block] = set()
    seen_span: set[Subspace] = set()
    for _ in range(samples):
        c = family.random_c(rng)
        seen_c.add(c)
        seen_span.add(family.span_a(c))
    if len(seen_span) != len(seen_c):
        raise AssertionError("Lemma 3.4 violated: span collision observed")
    return len(seen_span), samples
