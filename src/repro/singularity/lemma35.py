"""Lemma 3.5 — the constructive completion, and claim (2a)'s counting.

    *(a) For all instances of C and E, there are instances of D and y such
    that B·u ∈ Span(A).*
    *(b) Each of the q^{(n-1)²/4} rows of the restricted truth matrix
    contains at least q^{n²/2 - O(n log_q n)} and at most q^{n²/2} "one"
    entries.*

Part (a) is a *construction*, and :func:`complete` implements it exactly as
the proof prescribes:

1. the unit rows of A force ``x_i = b_i·u = e_i·w`` for the tail
   coordinates (each bounded by ``m = q^{e_width}`` in magnitude);
2. the head coordinates are chosen by the mod-m recurrence
   ``x_i ≡ -q·x_{i+1} - c_i·x_tail (mod m)``, making every head row satisfy
   ``a_i·x ≡ 0 (mod m)`` with small magnitude;
3. the quotient ``a_i·x / m`` is written in base ``-q`` with
   ``⌈log_q n⌉ + 2`` digits — those digits are row i of D;
4. ``x_1`` itself is written in base ``-q`` with ``n-1`` digits — that is y.

The result is an exact witness ``A·x = B·u``; the checker then confirms the
assembled 2n×2n matrix is singular with an independent rank computation.

Part (b) is counted: the *lower* bound by enumerating/sampling distinct E's
(each completes to a distinct singular column), the *upper* bound by the
free-entry count of B.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.exact.rank import is_singular
from repro.exact.vector import Vector
from repro.singularity.family import Block, FamilyInstance, RestrictedFamily
from repro.singularity.negabase import negabase_digits


class CompletionError(Exception):
    """The parameters are too small for the proof's representations to fit.

    The paper is asymptotic; at the tiniest (n, k) the negabase coverage
    interval can miss the required quotient.  We fail loudly instead of
    silently producing a nonsingular matrix.
    """


@dataclass(frozen=True)
class Completion:
    """The output of the Lemma 3.5(a) construction, with its witness."""

    d: Block
    y: tuple[int, ...]
    x: tuple[Fraction, ...]  # the coefficient witness with A·x = B·u

    def instance(self, family: RestrictedFamily, c: Block, e: Block) -> FamilyInstance:
        """The full family member this completion produces."""
        return FamilyInstance(family, c, self.d, e, self.y)


def complete(family: RestrictedFamily, c: Block, e: Block) -> Completion:
    """Lemma 3.5(a): given C and E, produce D and y making M singular."""
    c = family.check_c(c)
    e = family.check_e(e)
    n, h, q = family.n, family.h, family.q
    m = q**family.e_width  # the proof's modulus (1 when E is empty)

    # Step 1: tail coordinates forced by the unit rows of A.
    x: list[int] = [0] * (n - 1)
    if family.e_width:
        w = family.w()
        for r in range(h):
            value = sum(int(ev) * int(wv) for ev, wv in zip(e[r], w))
            x[h + r] = value
            assert abs(value) < m, "|e_i·w| < m is guaranteed by digit bounds"
    x_tail = x[h : n - 1]

    def c_dot_tail(row: int) -> int:
        return sum(int(cv) * xv for cv, xv in zip(c[row], x_tail))

    # Steps 2–3: head coordinates and D rows, from i = h-1 down to 0.
    d_rows: list[tuple[int, ...]] = [()] * h
    sign = -1 if family.e_width % 2 else 1  # (-q)^e_width = sign * m

    def fit_digits(quotient: int) -> tuple[int, ...] | None:
        digits = negabase_digits(sign * quotient, q, family.d_width)
        if digits is None:
            return None
        return tuple(reversed(digits))  # D columns run high power -> low

    for i in range(h - 1, -1, -1):
        base = (q * x[i + 1] if i < h - 1 else 0) + c_dot_tail(i)
        residue = (-base) % m  # candidate representative in [0, m)
        chosen = None
        for candidate in (residue, residue - m):
            s = candidate + base  # a_i·x for this representative
            assert s % m == 0
            digits = fit_digits(s // m)
            if digits is not None:
                chosen = (candidate, digits)
                break
        if chosen is None:
            raise CompletionError(
                f"row {i}: quotient does not fit in {family.d_width} "
                f"negabase-{q} digits (n={n}, k={family.k} too small)"
            )
        x[i], d_rows[i] = chosen

    # Step 4: y from x_1 = x[0] (row n-1 of A is the unit on coordinate 0).
    y_digits = negabase_digits(x[0], q, n - 1)
    if y_digits is None:
        raise CompletionError(
            f"x_1 = {x[0]} does not fit in {n - 1} negabase-{q} digits"
        )
    y = tuple(reversed(y_digits))

    completion = Completion(
        tuple(d_rows), y, tuple(Fraction(v) for v in x)
    )
    _verify(family, c, e, completion)
    return completion


def _verify(family: RestrictedFamily, c: Block, e: Block, completion: Completion) -> None:
    """A·x == B·u exactly, independent of how the pieces were derived."""
    a = family.build_a(c)
    b = family.build_b(completion.d, e, completion.y)
    ax = a.matvec(list(completion.x))
    bu = family.b_times_u(b)
    if Vector(list(ax)) != bu:
        raise AssertionError("completion witness failed: A·x != B·u")


def complete_and_check_singular(
    family: RestrictedFamily, c: Block, e: Block
) -> FamilyInstance:
    """Run the completion and confirm singularity by exact rank — the full
    executable statement of Lemma 3.5(a)."""
    completion = complete(family, c, e)
    instance = completion.instance(family, c, e)
    if not is_singular(instance.m_matrix()):
        raise AssertionError(
            "Lemma 3.5(a) violated: completed matrix is nonsingular"
        )
    return instance


# ----------------------------------------------------------------------
# Part (b): counting "one" entries per truth-matrix row
# ----------------------------------------------------------------------
def ones_lower_bound(family: RestrictedFamily) -> int:
    """≥ #distinct E instances: each E completes to a distinct singular
    column (distinct E ⇒ distinct E·w ⇒ distinct B·u ⇒ distinct B)."""
    return family.count_e_instances()

def ones_upper_bound(family: RestrictedFamily) -> int:
    """≤ #B instances = q^{(n²-1)/2} (B has (n²-1)/2 free entries)."""
    return family.count_b_instances()


def distinct_e_give_distinct_columns(
    family: RestrictedFamily, c: Block, e_blocks
) -> bool:
    """The injectivity behind the lower bound, checked on explicit E's."""
    if family.e_width == 0:
        return True
    seen_bu: set = set()
    count = 0
    for e in e_blocks:
        completion = complete(family, c, e)
        instance = completion.instance(family, c, e)
        seen_bu.add(instance.b_times_u())
        count += 1
    return len(seen_bu) == count


def count_singular_columns_exhaustive(
    family: RestrictedFamily, c: Block, limit: int = 2_000_000
) -> int:
    """Exact count of B instances making M(A(C), B) singular.

    Feasible only when ``count_b_instances()`` ≤ ``limit``; uses Lemma 3.2
    (span membership of B·u) instead of 2n×2n ranks for speed, which is
    valid because Span(A) always has full dimension under Fig. 3.
    """
    total = family.count_b_instances()
    if total > limit:
        raise ValueError(
            f"B has {total} instances; exhaustive counting capped at {limit}"
        )
    span = family.span_a(c)
    count = 0
    for d, e, y in family.enumerate_b_blocks():
        bu = family.b_times_u_from_blocks(d, e, y)
        if bu in span:
            count += 1
    return count


def count_singular_columns_sampled(
    family: RestrictedFamily, c: Block, rng, samples: int
) -> tuple[int, int]:
    """(singular hits, samples) over uniform random B instances.

    The singular fraction of a row is astronomically small (claim 2a gives
    ~q^{-O(n log_q n)} of all columns); this sampler is for *shape* plots
    and for falsification attempts, not precision estimates.
    """
    span = family.span_a(c)
    hits = 0
    for _ in range(samples):
        d = family.random_d(rng)
        e = family.random_e(rng)
        y = family.random_y(rng)
        if family.b_times_u_from_blocks(d, e, y) in span:
            hits += 1
    return hits, samples


def count_singular_columns_exact(family: RestrictedFamily, c: Block) -> int:
    """Exact count of singular columns per row — at ANY family size.

    The polynomial-time replacement for brute force: Span(A) has dimension
    n-1, so its complement is the line of the left null vector ``z``
    (``zᵀA = 0``), and ``B·u ∈ Span(A)  ⇔  z·(B·u) = 0``.  The rows of B
    are free independently, so the number of zeros of the linear form

        z·(B·u) = Σ_{i<h} z_i·(D_i·u_head) + Σ_r z_{h+r}·(E_r·w) + z_{n-1}·(y·u)

    is a convolution of per-row value distributions — computed exactly with
    dictionaries of big ints.  Cross-validated against the brute-force
    enumerator at the one family size where brute force is feasible.
    """
    from repro.exact.solve import nullspace

    c = family.check_c(c)
    a = family.build_a(c)
    left_null = nullspace(a.transpose())
    if len(left_null) != 1:
        raise AssertionError("Span(A) must have codimension exactly 1")
    # Scale z to integers.
    z_frac = list(left_null[0])
    from math import lcm

    denominator = lcm(*(f.denominator for f in z_frac))
    z = [int(f * denominator) for f in z_frac]

    n, h, q = family.n, family.h, family.q
    u = [int(v) for v in family.u()]
    u_head = u[: family.d_width]
    w = u[len(u) - family.e_width :] if family.e_width else []

    def digit_distribution(weights: list[int]) -> dict[int, int]:
        """Distribution of Σ d_j * weights[j] over digits d_j in [0, q-1]."""
        dist = {0: 1}
        for weight in weights:
            new: dict[int, int] = {}
            for value, count in dist.items():
                for digit in range(q):
                    key = value + digit * weight
                    new[key] = new.get(key, 0) + count
            dist = new
        return dist

    total_dist = {0: 1}

    def convolve(dist: dict[int, int]) -> None:
        nonlocal total_dist
        new: dict[int, int] = {}
        for v1, c1 in total_dist.items():
            for v2, c2 in dist.items():
                key = v1 + v2
                new[key] = new.get(key, 0) + c1 * c2
        total_dist = new

    for i in range(h):  # D rows
        convolve(digit_distribution([z[i] * uv for uv in u_head]))
    for r in range(h):  # E rows
        if family.e_width:
            convolve(digit_distribution([z[h + r] * wv for wv in w]))
    convolve(digit_distribution([z[n - 1] * uv for uv in u]))  # the y row
    return total_dist.get(0, 0)
