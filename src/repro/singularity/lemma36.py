"""Lemmas 3.3, 3.6 and 3.7 — why 1-chromatic submatrices must be small.

Lemma 3.3: a 1-chromatic submatrix with rows A_1..A_r and columns B_1..B_s
satisfies ``{B_1·u, …, B_s·u} ⊆ Span(A_1) ∩ … ∩ Span(A_r)``.

Lemma 3.6: r = q^{n²/16 + n·log_q n} rows force
``dim(∩ Span(A_i)) < 7n/8 - 1`` — many rows squeeze the common space.

Lemma 3.7: via the projection ``p`` (coordinates h..n-2) and the identity
``p(B·u) = E·w``, a 1-chromatic submatrix with ≥ r rows has at most
``q^{3n²/8 + O(n log_q n)}`` columns — the quantitative claim (2b).

The bounds are asymptotic; what *is* exactly checkable at any size (and is
checked here) is the mechanism:

* the intersection containment (Lemma 3.3) holds for every 1-chromatic
  rectangle we can construct;
* the projected intersection kills the first h columns of A;
* the counting step — "a subspace V' of dimension d' contains at most
  q^{d'·(row-length)} of the E·w vectors" — via exact enumeration on
  small instances (:func:`count_ew_vectors_in_subspace`).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.exact.span import Subspace
from repro.exact.vector import Vector
from repro.singularity.family import Block, FamilyInstance, RestrictedFamily


# ----------------------------------------------------------------------
# Lemma 3.3 — the containment
# ----------------------------------------------------------------------
def lemma33_containment(
    family: RestrictedFamily,
    c_blocks: Sequence[Block],
    b_instances: Sequence[tuple[Block, Block, tuple[int, ...]]],
) -> bool:
    """If every (A_i, B_j) pair is singular, then every B_j·u lies in the
    intersection of all Span(A_i).

    We *verify the premise too*: the function returns True only when the
    given rows × columns really form a 1-chromatic rectangle and the
    containment holds (so a False return localizes which part broke).
    """
    spans = [family.span_a(c) for c in c_blocks]
    intersection = Subspace.intersection_of(spans)
    from repro.exact.rank import is_singular

    for d, e, y in b_instances:
        bu = family.b_times_u_from_blocks(d, e, y)
        for c, span in zip(c_blocks, spans):
            m = family.build_m(family.build_a(c), family.build_b(d, e, y))
            if not is_singular(m):
                return False  # premise fails: not 1-chromatic
            if bu not in span:
                return False  # Lemma 3.2 would already be broken
        if bu not in intersection:
            return False  # the containment itself fails
    return True


def intersection_dimension(
    family: RestrictedFamily, c_blocks: Iterable[Block]
) -> int:
    """dim(∩ Span(A_i)) — Lemma 3.6's measured quantity."""
    spans = [family.span_a(c) for c in c_blocks]
    return Subspace.intersection_of(spans).dimension


def intersection_dimension_profile(
    family: RestrictedFamily, c_blocks: Sequence[Block]
) -> list[int]:
    """dim(∩_{i<=t} Span(A_i)) for t = 1..len(c_blocks) — the decay curve.

    The paper needs the dimension to fall below 7n/8 - 1 once the row count
    reaches r; at experiment scale we watch the whole curve instead.
    """
    profile: list[int] = []
    acc: Subspace | None = None
    for c in c_blocks:
        span = family.span_a(c)
        acc = span if acc is None else acc.intersect(span)
        profile.append(acc.dimension)
    return profile


# ----------------------------------------------------------------------
# Lemma 3.6 — the enumeration bound
# ----------------------------------------------------------------------
def lemma36_row_threshold_log2(family: RestrictedFamily) -> float:  # repro-lint: disable=EXA102 -- log-scale bound report
    """log2 of r = q^{n²/16 + n·log_q n} = q^{n²/16} · n^n (exact algebra,
    float log only at the end)."""
    n, q = family.n, family.q
    return (n * n / 16) * math.log2(q) + n * math.log2(n)


def lemma36_enumeration_capacity_log2(family: RestrictedFamily, shared_dim: int) -> float:  # repro-lint: disable=EXA101,EXA102 -- log-scale bound report
    """log2 of the number of distinct Span(A_i) enumerable when all share a
    fixed subspace of dimension ``shared_dim`` = 7n/8 - 1.

    The proof counts: each Span(A_i) is determined by n/8 extra basis
    vectors chosen from the ≤ (n-1)/2 · q^{(n+1)/2}... candidate pool of the
    last columns; its total is q^{n²/16 + (n log_q n)/2} < r.  We expose the
    paper's exponent so the benchmark can print the r-vs-capacity gap.
    """
    n, q = family.n, family.q
    extra = (n - 1) - shared_dim  # columns not already in the shared space
    if extra < 0:
        return 0.0
    # Pool size per extra basis vector: h * q^{(n+1)/2} candidates.
    pool_log2 = math.log2(family.h) + ((n + 1) / 2) * math.log2(q) if family.h else 0.0
    return extra * pool_log2


# ----------------------------------------------------------------------
# Lemma 3.7 — the projected counting
# ----------------------------------------------------------------------
def projected_intersection_dimension(
    family: RestrictedFamily, c_blocks: Iterable[Block]
) -> int:
    """dim p(∩ Span(A_i)) — drops by h relative to the unprojected one
    because the first h columns of A (present in every Span(A_i)) project
    to zero."""
    spans = [family.span_a(c) for c in c_blocks]
    inter = Subspace.intersection_of(spans)
    return inter.project(family.projection_indices()).dimension


def count_ew_vectors_in_subspace(
    family: RestrictedFamily, space: Subspace, limit: int = 2_000_000
) -> int:
    """Exactly how many of the q^{h·e_width} vectors E·w lie in ``space``.

    This is the proof's final counting step, run literally: enumerate every
    E and test membership of E·w (each a length-h integer vector).
    """
    if family.e_width == 0:
        raise ValueError("E is empty at these parameters")
    if space.ambient != family.h:
        raise ValueError("space must live in the projected ambient Q^h")
    total = family.count_e_instances()
    if total > limit:
        raise ValueError(f"{total} E instances; enumeration capped at {limit}")
    count = 0
    for e in family.enumerate_e():
        if family.e_dot_w(e) in space:
            count += 1
    return count


def lemma37_column_bound_log2(family: RestrictedFamily) -> float:  # repro-lint: disable=EXA102 -- log-scale bound report
    """log2 of the paper's column cap q^{3n²/8} for rectangles with ≥ r rows
    (π₀ case; the proper-partition variant uses 3n²/16)."""
    n, q = family.n, family.q
    return (3 * n * n / 8) * math.log2(q)


def ew_count_upper_bound(family: RestrictedFamily, projected_dim: int) -> int:
    """The proof's cap: a subspace of dimension d' < 3n/8 contains at most
    q^{d'·n}... sharpened here to the exact argument: each E·w vector in V'
    is determined by d' of its coordinates, and each coordinate, being
    ``e_row·w``, takes < q^{e_width} < q^n values.  Exact big int."""
    if projected_dim < 0:
        raise ValueError("dimension cannot be negative")
    return (family.q ** family.e_width) ** projected_dim if family.e_width else 1


def one_rectangle_column_cap(
    family: RestrictedFamily, c_blocks: Sequence[Block]
) -> int:
    """The executable Lemma 3.7 chain for an explicit row set:

    rows → V = ∩ Span(A_i) → V' = p(V) → cap = (#values per coordinate)^dim V'.

    Any 1-chromatic rectangle on these rows has at most ``cap`` columns
    *with distinct E blocks* (columns sharing E differ only in D, y).
    """
    spans = [family.span_a(c) for c in c_blocks]
    inter = Subspace.intersection_of(spans)
    projected = inter.project(family.projection_indices())
    return ew_count_upper_bound(family, projected.dimension)


def verify_column_cap_on_rectangle(
    family: RestrictedFamily,
    c_blocks: Sequence[Block],
    e_blocks: Sequence[Block],
) -> bool:
    """Sanity loop: complete each (C_1, E_j) and check that whenever *all*
    rows are singular against the completed column, E·w lies in the
    projected intersection (the mechanism behind the cap)."""
    from repro.exact.rank import is_singular
    from repro.singularity.lemma35 import complete

    spans = [family.span_a(c) for c in c_blocks]
    inter = Subspace.intersection_of(spans)
    projected = inter.project(family.projection_indices())
    for e in e_blocks:
        completion = complete(family, c_blocks[0], e)
        b = family.build_b(completion.d, e, completion.y)
        all_singular = all(
            is_singular(family.build_m(family.build_a(c), b)) for c in c_blocks
        )
        if all_singular and family.e_width:
            if family.e_dot_w(e) not in projected:
                return False
    return True
