"""Negative-base (base ``-q``) digit representations.

The paper's completion argument (Lemma 3.5) silently relies on the fact that
any integer of bounded magnitude can be written as ``Σ d_s (-q)^s`` with
digits ``d_s ∈ [0, q-1]`` — that is how the free blocks ``D`` and ``y`` of
the submatrix ``B`` are chosen to make ``B·u`` land in ``Span(A)``
(``u`` and ``w`` are geometric vectors in ``-q``, so inner products against
digit vectors are exactly negabase evaluations).

This module provides the encoder/decoder plus the exact coverage interval of
a fixed digit count, so the completion can *prove* a representation exists
before committing to it.
"""

from __future__ import annotations


def negabase_digits(value: int, q: int, width: int | None = None) -> list[int] | None:
    """Digits ``d`` with ``value == Σ d[s] * (-q)**s`` and ``d[s] ∈ [0, q-1]``.

    Standard division algorithm for negative bases: at each step take the
    remainder in ``[0, q-1]`` and divide by ``-q`` exactly.

    With ``width=None`` the representation uses however many digits it needs
    (every integer has exactly one).  With a fixed ``width``, returns the
    zero-padded digit list of length ``width``, or ``None`` when the value
    does not fit (the caller treats that as "this branch of the completion
    is infeasible").

    >>> negabase_digits(7, 3)     # 7 = 1 - 3·(-1)... check: 1·1 + 2·(-3) + 1·9
    [1, 2, 1]
    >>> sum(d * (-3)**s for s, d in enumerate(negabase_digits(-11, 3)))
    -11
    """
    if q < 2:
        raise ValueError("negabase needs q >= 2")
    digits: list[int] = []
    v = value
    while v != 0:
        r = v % q  # Python's % already gives a representative in [0, q-1]
        digits.append(r)
        v = (v - r) // (-q)
    if not digits:
        digits = [0]
    if width is None:
        return digits
    if len(digits) > width:
        return None
    return digits + [0] * (width - len(digits))


def negabase_value(digits: list[int], q: int) -> int:
    """Inverse of :func:`negabase_digits`: ``Σ digits[s] * (-q)**s``."""
    return sum(d * (-q) ** s for s, d in enumerate(digits))


def negabase_range(q: int, width: int) -> tuple[int, int]:
    """The exact (min, max) of values representable with ``width`` digits.

    Max: all even positions at q-1.  Min: all odd positions at q-1.  The
    representable set is exactly the integer interval [min, max] (standard
    fact; asserted by the property tests).
    """
    if q < 2:
        raise ValueError("negabase needs q >= 2")
    if width < 0:
        raise ValueError("width must be non-negative")
    hi = sum((q - 1) * q**s for s in range(0, width, 2))
    lo = -sum((q - 1) * q**s for s in range(1, width, 2))
    return lo, hi


def fits_in_negabase(value: int, q: int, width: int) -> bool:
    """Cheap coverage test without computing digits."""
    lo, hi = negabase_range(q, width)
    return lo <= value <= hi
