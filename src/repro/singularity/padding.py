"""The general-case padding reduction (Section 3, opening).

The lower bound is proven for ``2n x 2n`` inputs with n odd.  For an
arbitrary ``m x m`` input the paper restricts attention to matrices whose
last ``d`` rows and columns are an identity tail:

    d := (m - 2) mod 4,  n := (m - d) / 2   (which makes n odd)

and M'[m-1-i, m-1-i] = 1 for i < d with zeros elsewhere in the tail.  Then
M' is singular iff its leading ``2n x 2n`` block is — so any protocol for
``m x m`` singularity solves ``2n x 2n`` singularity at the same cost, and
the Θ(k n²) = Θ(k m²) bound transfers to every size.
"""

from __future__ import annotations

from repro.exact.matrix import Matrix
from repro.exact.rank import is_singular, rank


def padding_parameters(m: int) -> tuple[int, int]:
    """(n, d) for an ``m x m`` input: d = (m-2) mod 4, n = (m-d)/2, n odd."""
    if m < 2:
        raise ValueError("padding needs m >= 2")
    d = (m - 2) % 4
    n = (m - d) // 2
    if n % 2 != 1 or 2 * n + d != m:
        raise AssertionError("padding arithmetic broke — check the formula")
    return n, d


def pad(block: Matrix, m: int) -> Matrix:
    """Embed a ``2n x 2n`` matrix as the leading block of the ``m x m``
    identity-tail form."""
    n, d = padding_parameters(m)
    if block.shape != (2 * n, 2 * n):
        raise ValueError(
            f"for m={m} the leading block must be {2 * n}x{2 * n}, got {block.shape}"
        )
    if d == 0:
        return block
    rows = [[0] * m for _ in range(m)]
    src = block.to_int_rows() if block.is_integer() else None
    for i in range(2 * n):
        for j in range(2 * n):
            rows[i][j] = src[i][j] if src is not None else block[i, j]
    for i in range(d):
        rows[m - 1 - i][m - 1 - i] = 1
    return Matrix(rows)


def unpad(padded: Matrix) -> Matrix:
    """Extract the leading ``2n x 2n`` block (after validating the tail)."""
    m = padded.num_rows
    if not padded.is_square:
        raise ValueError("padded matrix must be square")
    n, d = padding_parameters(m)
    if d and not has_identity_tail(padded, d):
        raise ValueError("matrix does not carry the required identity tail")
    return padded.slice(0, 2 * n, 0, 2 * n)


def has_identity_tail(matrix: Matrix, d: int) -> bool:
    """Is the trailing d x d corner an identity with zero borders?"""
    m = matrix.num_rows
    if d == 0:
        return True
    for i in range(m):
        for j in range(m - d, m):
            expected = 1 if (i == j and i >= m - d) else 0
            if matrix[i, j] != expected or matrix[j, i] != expected:
                return False
    return True


def padding_preserves_singularity(block: Matrix, m: int) -> bool:
    """The reduction's correctness on one instance:
    singular(2n block) == singular(padded m x m)."""
    return is_singular(block) == is_singular(pad(block, m))


def padding_rank_identity(block: Matrix, m: int) -> bool:
    """Quantitatively: rank(padded) == rank(block) + d."""
    _, d = padding_parameters(m)
    return rank(pad(block, m)) == rank(block) + d
