"""Definition 3.8 (proper partitions) and Lemma 3.9 (normalization).

A *proper* partition assigns

* at least ``k(n-1)²/8`` bit positions of the submatrix C to the first
  agent (i.e. agent 0 *dominates* C), and
* at least ``k(n-3-⌈log_q n⌉)/2`` bit positions of *every row* of the
  submatrix E to the second agent (agent 1 dominates each E row).

Lemma 3.9: *any* even partition can be transformed into a proper one by
permuting rows and columns of the input matrix (and possibly renaming the
agents) — permutations don't change singularity, so the lower bound proven
for proper partitions covers all even partitions.

Our executable transform: permuting the input means the construction is free
to choose *which input rows/columns play the roles* of the designated C and
E blocks.  :func:`make_proper` searches for that casting — greedy alternating
optimization with randomized restarts — and returns a verified certificate
(:class:`Properization`).  The paper's pigeonhole case analysis guarantees a
casting exists for every even partition; the search failing would therefore
falsify (our reading of) the lemma, and the test suite hammers it with
adversarial partitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.bits import MatrixBitCodec
from repro.comm.partition import Partition
from repro.singularity.family import RestrictedFamily
from repro.util.rng import ReproducibleRNG


def required_c_bits(family: RestrictedFamily) -> int:
    """The Definition 3.8 threshold for C: k(n-1)²/8 (half of C's bits)."""
    return family.k * (family.n - 1) ** 2 // 8


def required_e_row_bits(family: RestrictedFamily) -> int:
    """Per-row threshold for E: k·e_width/2, rounded up (at least half)."""
    return (family.k * family.e_width + 1) // 2


def is_proper(family: RestrictedFamily, partition: Partition) -> bool:
    """Definition 3.8 on the identity casting (blocks where Fig. 1 puts them)."""
    codec = family.codec()
    c_positions = [
        p for (i, j) in family.c_cells() for p in codec.entry_positions(i, j)
    ]
    agent0_c, _ = partition.count_in(c_positions)
    if agent0_c < required_c_bits(family):
        return False
    for r in range(family.h):
        row_positions = [
            p for (i, j) in family.e_row_cells(r) for p in codec.entry_positions(i, j)
        ]
        _, agent1_row = partition.count_in(row_positions)
        if family.e_width and agent1_row < required_e_row_bits(family):
            return False
    return True


@dataclass(frozen=True)
class Properization:
    """A verified Lemma 3.9 certificate.

    Attributes:
        row_perm / col_perm: constructed cell (i, j) is played by input cell
            (row_perm[i], col_perm[j]).
        swap_agents: whether the agents were renamed.
        c_weight: agent-0 bits landing in the C block (≥ threshold).
        e_row_weights: agent-1 bits per E row (each ≥ threshold).
    """

    family: RestrictedFamily
    row_perm: tuple[int, ...]
    col_perm: tuple[int, ...]
    swap_agents: bool
    c_weight: int
    e_row_weights: tuple[int, ...]

    def transformed_partition(self, partition: Partition) -> Partition:
        """The partition as seen on the permuted matrix: bit (i, j, b) of the
        constructed matrix is owned by whoever owns bit
        (row_perm[i], col_perm[j], b) of the input (names swapped if asked)."""
        codec = self.family.codec()
        agent0: set[int] = set()
        size = self.family.m_size
        for i in range(size):
            for j in range(size):
                src_i, src_j = self.row_perm[i], self.col_perm[j]
                for b in range(self.family.k):
                    owner = partition.owner(codec.bit_index(src_i, src_j, b))
                    if self.swap_agents:
                        owner = 1 - owner
                    if owner == 0:
                        agent0.add(codec.bit_index(i, j, b))
        return Partition(codec.total_bits, frozenset(agent0))

    def verify(self, partition: Partition) -> bool:
        """Re-check Definition 3.8 on the transformed partition from scratch."""
        return is_proper(self.family, self.transformed_partition(partition))


class ProperizationError(Exception):
    """No proper casting found — would falsify (our reading of) Lemma 3.9
    if the input partition was genuinely even."""


def make_proper(
    family: RestrictedFamily,
    partition: Partition,
    seed: int = 0,
    restarts: int = 200,
) -> Properization:
    """Find row/column permutations (and possibly an agent swap) casting the
    partition as proper.

    Strategy per restart: score every input cell by its agent-0 bit weight;
    greedily choose h rows × h columns maximizing agent-0 weight for C
    (alternating row/column improvement), then choose e_width columns and h
    rows (disjoint) where agent 1 dominates every chosen row's chosen cells.
    Deterministic first pass, randomized row/column orderings afterwards.
    """
    codec = family.codec()
    size = family.m_size
    k = family.k
    # weight0[i][j] = bits of entry (i,j) read by agent 0.
    weight0 = [
        [
            sum(
                1
                for b in range(k)
                if partition.owner(codec.bit_index(i, j, b)) == 0
            )
            for j in range(size)
        ]
        for i in range(size)
    ]
    rng = ReproducibleRNG(seed)
    for attempt in range(restarts):
        for swap in (False, True):
            w = (
                weight0
                if not swap
                else [[k - x for x in row] for row in weight0]
            )
            casting = _greedy_casting(family, w, rng if attempt else None)
            if casting is None:
                continue
            c_rows, c_cols, e_rows, e_cols, c_weight, e_weights = casting
            row_perm = _build_perm(size, _c_row_slots(family), c_rows, _e_row_slots(family), e_rows)
            col_perm = _build_perm(size, _c_col_slots(family), c_cols, _e_col_slots(family), e_cols)
            result = Properization(
                family,
                tuple(row_perm),
                tuple(col_perm),
                swap,
                c_weight,
                tuple(e_weights),
            )
            if result.verify(partition):
                return result
    raise ProperizationError(
        f"no proper casting found in {restarts} restarts — "
        f"is the partition even? sizes={partition.sizes()}"
    )


def _c_row_slots(family: RestrictedFamily) -> list[int]:
    return [family.n + i for i in range(family.h)]


def _c_col_slots(family: RestrictedFamily) -> list[int]:
    return [1 + family.h + j for j in range(family.h)]


def _e_row_slots(family: RestrictedFamily) -> list[int]:
    return [family.n + family.h + i for i in range(family.h)]


def _e_col_slots(family: RestrictedFamily) -> list[int]:
    offset = (family.n - 1) - family.e_width
    return [family.n + 1 + offset + j for j in range(family.e_width)]


def _build_perm(
    size: int,
    slots_a: list[int],
    fill_a: list[int],
    slots_b: list[int],
    fill_b: list[int],
) -> list[int]:
    """A permutation sending ``fill_a`` into ``slots_a`` and ``fill_b`` into
    ``slots_b``, everything else in order."""
    perm = [-1] * size
    used = set(fill_a) | set(fill_b)
    for slot, src in zip(slots_a, fill_a):
        perm[slot] = src
    for slot, src in zip(slots_b, fill_b):
        perm[slot] = src
    rest = iter([x for x in range(size) if x not in used])
    for i in range(size):
        if perm[i] == -1:
            perm[i] = next(rest)
    return perm


def _greedy_casting(family: RestrictedFamily, w, rng):
    """Choose (C rows, C cols, E rows, E cols) maximizing agent-0 weight on C
    while agent 1 dominates each chosen E row.  Returns None on failure."""
    size = family.m_size
    h, k = family.h, family.k
    e_width = family.e_width
    need_c = required_c_bits(family)
    need_e = required_e_row_bits(family)
    order = list(range(size))
    if rng is not None:
        rng.shuffle(order)

    # --- C block: alternating maximization of sum of w over rows x cols ---
    cols = sorted(order, key=lambda j: -sum(w[i][j] for i in range(size)))[:h]
    rows: list[int] = []
    for _ in range(4):
        rows = sorted(order, key=lambda i: -sum(w[i][j] for j in cols))[:h]
        cols = sorted(order, key=lambda j: -sum(w[i][j] for i in rows))[:h]
    c_weight = sum(w[i][j] for i in rows for j in cols)
    if c_weight < need_c:
        return None
    c_rows, c_cols = rows, cols

    if e_width == 0:
        return c_rows, c_cols, [], [], c_weight, []

    # --- E block: agent 1 weight is k - w; avoid C's rows and columns ---
    row_pool = [i for i in order if i not in set(c_rows)]
    col_pool = [j for j in order if j not in set(c_cols)]
    # Pick columns with the largest total agent-1 weight over the pool, then
    # rows that individually clear the per-row threshold.
    e_cols = sorted(
        col_pool, key=lambda j: -sum(k - w[i][j] for i in row_pool)
    )[:e_width]
    scored_rows = sorted(
        row_pool, key=lambda i: -sum(k - w[i][j] for j in e_cols)
    )
    e_rows = []
    e_weights = []
    for i in scored_rows:
        weight = sum(k - w[i][j] for j in e_cols)
        if weight >= need_e:
            e_rows.append(i)
            e_weights.append(weight)
            if len(e_rows) == h:
                break
    if len(e_rows) < h:
        return None
    return c_rows, c_cols, e_rows, e_cols, c_weight, e_weights


def lemma39_holds_on(
    family: RestrictedFamily, partitions, seed: int = 0
) -> bool:
    """Run the normalization on each partition; True iff all succeed with a
    verified certificate."""
    for p in partitions:
        make_proper(family, p, seed=seed)
    return True
