"""Corollaries 1.2 and 1.3, plus the matrix-product rank construction.

The paper transfers the Θ(k n²) bound by *reductions*: a device solving
problem P also decides singularity, so P inherits the bound.  Each reduction
here is an executable object with three parts — instance transport, answer
extraction, and a correctness check — so the tests can verify the transfer
on real matrices rather than trusting the prose.

* Corollary 1.2(a–e): determinant, rank, QR, SVD, LUP — extraction uses only
  the *output the corollary grants* (e.g. for QR/SVD/LUP the *nonzero
  structure* of the factors, never their values).
* Corollary 1.3: solvability of ``M'·x = b`` where b is the first column of
  the Fig. 1 matrix and M' has that column zeroed.
* Introduction: ``M = [[I, B], [A, C]]`` has rank n iff ``A·B = C`` (the
  Lin–Wu-style construction the paper uses for the rank-n/2 and SVD-range
  results).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable

from repro.exact.determinant import determinant
from repro.exact.lu import lup_decompose
from repro.exact.matrix import Matrix
from repro.exact.qr import qr_decompose
from repro.exact.rank import is_singular, rank
from repro.exact.solve import is_solvable
from repro.exact.svd import svd_structure
from repro.exact.vector import Vector
from repro.singularity.family import FamilyInstance, RestrictedFamily


@dataclass(frozen=True)
class Reduction:
    """Singularity ≤ P: any solver of problem ``solve`` decides singularity
    through ``extract``.

    Attributes:
        name: corollary label.
        solve: the P-solver (full-information; stands in for the device).
        extract: maps P's output to the singularity answer.
    """

    name: str
    solve: Callable[[Matrix], object]
    extract: Callable[[object], bool]

    def decide_singularity(self, m: Matrix) -> bool:
        """Solve problem P on ``m`` and extract the singularity answer."""
        return self.extract(self.solve(m))

    def agrees_with_ground_truth(self, m: Matrix) -> bool:
        """Does the reduction's answer match the exact rank decision?"""
        return self.decide_singularity(m) == is_singular(m)


def determinant_reduction() -> Reduction:
    """1.2(a): singular iff det = 0."""
    return Reduction("corollary-1.2a-determinant", determinant, lambda det: det == 0)


def rank_reduction() -> Reduction:
    """1.2(b): singular iff rank < n.  The extractor needs the matrix order,
    so the solver returns (rank, order)."""
    return Reduction(
        "corollary-1.2b-rank",
        lambda m: (rank(m), m.num_rows),
        lambda pair: pair[0] < pair[1],
    )


def qr_reduction() -> Reduction:
    """1.2(c): singular iff the *nonzero structure* of Q misses a column.

    Deliberately extracts from ``q_nonzero_structure()`` alone — the
    corollary's strengthened form ("even if we only require ... the nonzero
    structure of the factor matrices").
    """

    def solve(m: Matrix):
        return qr_decompose(m).q_nonzero_structure(), m.num_rows

    def extract(payload) -> bool:
        structure, order = payload
        populated_cols = {j for (_, j) in structure}
        return len(populated_cols) < order

    return Reduction("corollary-1.2c-qr-structure", solve, extract)


def svd_reduction() -> Reduction:
    """1.2(d): singular iff Σ's nonzero pattern has fewer than n entries."""

    def solve(m: Matrix):
        return svd_structure(m).sigma_pattern, m.num_rows

    def extract(payload) -> bool:
        pattern, order = payload
        return len(pattern) < order

    return Reduction("corollary-1.2d-svd-structure", solve, extract)


def lup_reduction() -> Reduction:
    """1.2(e): singular iff U's nonzero structure misses a diagonal slot."""

    def solve(m: Matrix):
        return lup_decompose(m).u_nonzero_structure(), m.num_rows

    def extract(payload) -> bool:
        structure, order = payload
        return any((i, i) not in structure for i in range(order))

    return Reduction("corollary-1.2e-lup-structure", solve, extract)


def all_corollary_12_reductions() -> list[Reduction]:
    """The five Corollary 1.2 reductions, (a) through (e)."""
    return [
        determinant_reduction(),
        rank_reduction(),
        qr_reduction(),
        svd_reduction(),
        lup_reduction(),
    ]


# ----------------------------------------------------------------------
# Corollary 1.3 — linear-system solvability
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SolvabilityInstance:
    """The Corollary 1.3 instance derived from a Fig. 1 matrix M:
    A' = M with its first column zeroed, b = that first column."""

    a_prime: Matrix
    b: Vector


def corollary_13_instance(m: Matrix) -> SolvabilityInstance:
    """Transport: zero out column 0, keep it as the right-hand side."""
    b = Vector(list(m.col(0)))
    zeroed = m.with_block(0, 0, Matrix.zeros(m.num_rows, 1))
    return SolvabilityInstance(zeroed, b)


def corollary_13_holds(instance: FamilyInstance) -> bool:
    """On family members (whose last 2n-1 columns are independent by Fig. 3):
    M singular ⇔ M'·x = b solvable.  Returns whether the biconditional holds.
    """
    m = instance.m_matrix()
    reduced = corollary_13_instance(m)
    return is_singular(m) == is_solvable(reduced.a_prime, reduced.b)


def corollary_13_requires_family(
    family: RestrictedFamily,
) -> tuple[Matrix, bool, bool]:
    """Ablation: on an *unrestricted* singular matrix the biconditional can
    fail (e.g. the zero matrix: singular, and 0·x = 0 IS solvable — pick a
    sharper witness: a matrix whose first column is outside the span of the
    rest yet rank-deficient).  Returns (matrix, singular, solvable) with
    singular=True, solvable=False impossible under the family but realized
    here, documenting why Fig. 3's independence matters."""
    size = 2 * family.n
    rows = [[0] * size for _ in range(size)]
    rows[0][0] = 1  # first column nonzero, all later columns zero
    m = Matrix(rows)
    reduced = corollary_13_instance(m)
    return m, is_singular(m), is_solvable(reduced.a_prime, reduced.b)


# ----------------------------------------------------------------------
# The [[I, B], [A, C]] construction (Section 1)
# ----------------------------------------------------------------------
def product_verification_matrix(a: Matrix, b: Matrix, c: Matrix) -> Matrix:
    """``M = [[I, B], [A, C]]`` with I of order n: rank(M) = n + rank(C - AB),
    so A·B = C iff rank(M) = n."""
    n = a.num_rows
    if a.shape != (n, n) or b.shape != (n, n) or c.shape != (n, n):
        raise ValueError("the construction needs three n x n matrices")
    return Matrix.block([[Matrix.identity(n), b], [a, c]])


def product_equals_via_rank(a: Matrix, b: Matrix, c: Matrix) -> bool:
    """Decide A·B = C through the rank of the block matrix (never forming
    the product) — the reduction's executable form."""
    m = product_verification_matrix(a, b, c)
    return rank(m) == a.num_rows


def rank_identity_holds(a: Matrix, b: Matrix, c: Matrix) -> bool:
    """The algebra behind it: rank([[I,B],[A,C]]) == n + rank(C - A·B)."""
    n = a.num_rows
    m = product_verification_matrix(a, b, c)
    return rank(m) == n + rank(c - (a @ b))


def half_rank_instance(a: Matrix, b: Matrix, c: Matrix) -> Matrix:
    """The "rank n/2 of a 2n x 2n matrix" decision instance the paper derives:
    the block matrix has rank exactly half its order iff A·B = C."""
    return product_verification_matrix(a, b, c)
