"""The vector space span problem (Lovász–Saks) and its bounds.

Section 1: let X be a finite set of vectors spanning the space U and let
``L = {V : V is spanned by some subset of X}``.  Given V₁, V₂ ∈ L, decide
whether their union spans U.

* Lovász–Saks (1988): the *fixed-partition* communication complexity is
  ``log₂ #L`` (one agent holds V₁, the other V₂).
* Theorem 1.1 settles the *unrestricted* complexity when X is the set of
  integer vectors with k-bit components: Θ(k n²), because the singularity
  instance "do the columns held by agent 0 and the columns held by agent 1
  jointly have full rank?" *is* a span-problem instance.

Executable content: the decision itself (:func:`spans_union`), exact
enumeration of L for small X (:func:`enumerate_l`), the log #L bound, and
the bridge from a π₀-split matrix to a span instance.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.exact.matrix import Matrix
from repro.exact.span import Subspace
from repro.exact.vector import Vector


@dataclass(frozen=True)
class SpanInstance:
    """One instance: two subspaces of the same ambient space."""

    v1: Subspace
    v2: Subspace

    def __post_init__(self):
        if self.v1.ambient != self.v2.ambient:
            raise ValueError("V1 and V2 must share the ambient space")

    def union_spans(self) -> bool:
        """The decision: does V1 ∪ V2 span the whole ambient space?"""
        return self.v1.spans_with(self.v2)


def spans_union(v1: Subspace, v2: Subspace) -> bool:
    """The span-problem decision on a pair of subspaces."""
    return SpanInstance(v1, v2).union_spans()


def enumerate_l(vectors: Sequence[Vector]) -> set[Subspace]:
    """The lattice L: spans of all subsets of X (exponential — small X only).

    The empty subset contributes the zero subspace.
    """
    if not vectors:
        raise ValueError("X must be non-empty")
    if len(vectors) > 16:
        raise ValueError("2^|X| subsets; enumeration capped at |X| = 16")
    ambient = len(vectors[0])
    spaces: set[Subspace] = {Subspace.zero(ambient)}
    for mask in range(1, 1 << len(vectors)):
        subset = [vectors[i] for i in range(len(vectors)) if mask >> i & 1]
        spaces.add(Subspace.span(subset))
    return spaces


def lovasz_saks_bound_bits(vectors: Sequence[Vector]) -> float:  # repro-lint: disable=EXA102 -- log-scale bound report
    """log₂ #L — the fixed-partition communication complexity."""
    return math.log2(len(enumerate_l(vectors)))


def matrix_to_span_instance(m: Matrix) -> SpanInstance:
    """The π₀ bridge: agent 0's columns span V₁, agent 1's span V₂; M is
    nonsingular iff V₁ ∪ V₂ spans ℚ^{2m} — so singularity testing *is* the
    span problem on k-bit integer vectors."""
    if not m.is_square or m.num_cols % 2:
        raise ValueError("the π₀ bridge needs a 2m x 2m matrix")
    half = m.num_cols // 2
    v1 = Subspace.column_space(m.slice(0, m.num_rows, 0, half))
    v2 = Subspace.column_space(m.slice(0, m.num_rows, half, m.num_cols))
    return SpanInstance(v1, v2)


def span_instance_agrees_with_singularity(m: Matrix) -> bool:
    """nonsingular(M) == union_spans(bridge(M)) — the reduction's soundness."""
    from repro.exact.rank import is_singular

    return (not is_singular(m)) == matrix_to_span_instance(m).union_spans()


def kbit_span_universe_log2(n: int, k: int) -> float:  # repro-lint: disable=EXA102 -- log-scale bound report
    """log₂ |X| for X = all k-bit integer vectors of length n: k·n bits.

    The lattice L is far larger; Theorem 1.1 gives the Θ(k n²) answer that
    log #L alone (fixed-partition) could not transfer to arbitrary
    partitions."""
    return float(k * n)
