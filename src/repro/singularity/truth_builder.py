"""Builders for the *restricted* truth matrix of Section 3.

The paper's argument lives on the truth matrix whose rows are instances of
the first agent's free block (C) and whose columns are instances of the
second agent's free blocks (D, E, y).  Experiments E1/E6 and the integration
tests all need the same construction; this module owns it:

* rows and columns sampled reproducibly (with completions mixed in so the
  matrix actually contains ones — random columns alone are almost never
  singular against any row);
* the predicate evaluated through Lemma 3.2's cheap surrogate
  (``B·u ∈ Span(A)``), with spans cached per row;
* helper measurements (ones per row, max 1-rectangle fraction) in one call.

Two predicate engines build the same matrix:

* ``engine="fraction"`` — the original exact path: one
  :class:`~repro.exact.span.Subspace` membership test per entry, all
  :class:`~fractions.Fraction` arithmetic;
* ``engine="modnp"`` (default) — the vectorized fast path: per row, **one**
  batched GF(p) call (:func:`repro.exact.modnp.span_membership_batch`)
  filters every column at once, and only the mod-p *members* (rare — ones
  are sparse by claim 2b) are confirmed with the exact Fraction test.  The
  filter direction is sound (see :mod:`repro.exact.modnp`): when
  ``rank_p(A) = rank_ℚ(A) = n − 1``, mod-p non-membership certifies exact
  non-membership, so the two engines produce **byte-identical** matrices;
  rows whose A drops rank mod p (never observed, but checked) fall back to
  the exact path entirely.

Parallelism: :func:`completed_columns` fans its completions out through
:func:`repro.util.parallel.parmap` with per-task seeds derived from the
root seed and the task's (row, completion) position — bit-identical output
at any worker count.

Streaming (the raw-speed tier): :func:`sharded_truth_matrix` builds the
same matrix in **column blocks** — each block is one :func:`parmap` task
(the ``modnp`` batched filter runs per block, so a worker's peak memory is
O(rows x block) instead of O(matrix)), and when a persistent store is
active (:mod:`repro.cache`) every finished block is spilled to disk as a
content-addressed shard (``blake2b`` of family/params/block-range).  A
killed build resumes from whatever shards survived and reassembles to the
same bytes; :func:`restricted_truth_matrix` delegates here whenever callers
ask for workers or an explicit block size, so the streamed path and the
single-pass path are interchangeable by construction (and Hypothesis-pinned
to stay so).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro import obs
from repro.comm.truth_matrix import TruthMatrix, truth_matrix_from_family
from repro.exact import modnp
from repro.singularity.family import Block, RestrictedFamily
from repro.singularity.lemma35 import complete
from repro.trace import core as trace
from repro.util.parallel import parmap, resolve_workers
from repro.util.rng import ReproducibleRNG, derive_seed

BColumn = tuple[Block, Block, tuple[int, ...]]

#: Predicate engines accepted by :func:`restricted_truth_matrix`.
ENGINES = ("modnp", "fraction")

#: Default column-block width of the sharded builder.  A pure function of
#: nothing — block boundaries are part of every shard's content address, so
#: they must never depend on the worker count or the machine.
DEFAULT_BLOCK_COLUMNS = 32

#: Shard-format version tags, per engine (keyed like
#: ``repro.comm.exhaustive.ENGINE_VERSIONS``): bump one whenever its engine
#: could spill different bytes, and stale shards die with the tag.
SHARD_VERSIONS = {"modnp": "modnp-shard-1", "fraction": "fraction-shard-1"}


class TruthBuildInterrupted(RuntimeError):
    """A sharded build deliberately stopped mid-stream (kill simulation).

    Raised by :func:`sharded_truth_matrix` when ``interrupt_after`` blocks
    have been spilled; the resume tests (and operators rehearsing recovery)
    catch it, then call the builder again to finish from the shards.
    """

    def __init__(self, key: str | None, blocks_done: int, blocks_total: int):
        super().__init__(
            f"truth-matrix build interrupted after {blocks_done}/"
            f"{blocks_total} block(s)"
        )
        self.key = key
        self.blocks_done = blocks_done
        self.blocks_total = blocks_total


def sample_distinct_rows(
    family: RestrictedFamily, rng: ReproducibleRNG, count: int
) -> list[Block]:
    """``count`` distinct C blocks (raises if the family is too small)."""
    if count > family.count_c_instances():
        raise ValueError(
            f"family has only {family.count_c_instances()} C instances"
        )
    rows: list[Block] = []
    seen: set[Block] = set()
    attempts = 0
    while len(rows) < count:
        c = family.random_c(rng)
        attempts += 1
        if c not in seen:
            seen.add(c)
            rows.append(c)
        if attempts > 100 * count + 1000:
            raise RuntimeError("sampling stalled — family too small for count")
    return rows


def _completion_task(task: tuple[RestrictedFamily, Block, int, int, int]) -> BColumn:
    """One completion, with randomness derived from the task's position.

    Module-level so :func:`parmap` can ship it to worker processes.
    """
    family, c, root_seed, row_index, completion_index = task
    with trace.span(
        "truth_builder.completion_shard",
        row=row_index,
        completion=completion_index,
    ):
        rng = ReproducibleRNG(
            derive_seed(
                root_seed, "completed_columns", row_index, completion_index
            )
        )
        e = family.random_e(rng)
        completion = complete(family, c, e)
        return (completion.d, e, completion.y)


def completed_columns(
    family: RestrictedFamily,
    rows: list[Block],
    rng: ReproducibleRNG,
    per_row: int = 1,
    workers: int | None = None,
) -> list[BColumn]:
    """Columns guaranteed singular against their source row: for each of the
    first rows, ``per_row`` completions with fresh E blocks.

    Each completion draws from its own seed stream — derived from
    ``rng.root_seed`` and the (row, completion) position, never from shared
    RNG state — so the result is bit-identical for every ``workers`` value
    (and the order is always row-major).
    """
    tasks = [
        (family, c, rng.root_seed, i, j)
        for i, c in enumerate(rows)
        for j in range(per_row)
    ]
    return parmap(_completion_task, tasks, workers=workers)


def random_columns(
    family: RestrictedFamily, rng: ReproducibleRNG, count: int
) -> list[BColumn]:
    """Uniform (D, E, y) triples — the background population."""
    return [
        (family.random_d(rng), family.random_e(rng), family.random_y(rng))
        for _ in range(count)
    ]


def _bu_int_vector(family: RestrictedFamily, column: BColumn) -> list[int]:
    """``B·u`` for one column, as plain Python ints (entries are integral)."""
    return [int(x) for x in family.b_times_u_from_blocks(*column)]


def _fraction_predicate_matrix(
    family: RestrictedFamily,
    rows: list[Block],
    columns: list[BColumn],
) -> TruthMatrix:
    """The original exact path: spans precomputed per row, one Fraction
    membership test per entry."""
    spans = {c: family.span_a(c) for c in rows}

    def predicate(c: Block, column: BColumn) -> bool:
        obs.counter("truth_builder.span_cache_hits").inc()
        return family.b_times_u_from_blocks(*column) in spans[c]

    return truth_matrix_from_family(predicate, rows, columns)


def _modnp_matrix(
    family: RestrictedFamily,
    rows: list[Block],
    columns: list[BColumn],
    prime: int,
) -> TruthMatrix:
    """The batched fast path: filter all columns per row with one GF(p)
    kernel call, confirm the surviving candidates exactly."""
    import numpy as np

    if not rows or not columns:
        return truth_matrix_from_family(lambda c, col: False, rows, columns)
    bu_vectors = [_bu_int_vector(family, column) for column in columns]
    data = np.zeros((len(rows), len(columns)), dtype=np.uint8)
    expected_rank = family.n - 1  # Lemma 3.2's premise: A has full column rank
    span_cache: dict[Block, object] = {}

    def exact_member(c: Block, j: int) -> bool:
        span = span_cache.get(c)
        if span is None:
            span_cache[c] = span = family.span_a(c)
            obs.counter("truth_builder.span_cache_misses").inc()
        else:
            obs.counter("truth_builder.span_cache_hits").inc()
        return family.b_times_u_from_blocks(*columns[j]) in span

    for i, c in enumerate(rows):
        a_cols = family.build_a(c).transpose().to_int_rows()
        echelon, pivot_cols = modnp.echelon_mod(a_cols, prime)
        if len(pivot_cols) < expected_rank:
            # A collapsed mod p (needs p | some maximal minor — essentially
            # never for a 2³¹-scale prime, but soundness demands the check):
            # the filter direction is no longer certified, do the row exactly.
            obs.counter("truth_builder.modnp_fallback_rows").inc()
            for j in range(len(columns)):
                data[i, j] = 1 if exact_member(c, j) else 0
            continue
        candidates = modnp.span_membership_batch(echelon, bu_vectors, prime)
        obs.counter("truth_builder.modnp_filtered").inc(
            int((~candidates).sum())
        )
        for j in np.nonzero(candidates)[0]:
            obs.counter("truth_builder.exact_confirms").inc()
            data[i, int(j)] = 1 if exact_member(c, int(j)) else 0
    return TruthMatrix(data, tuple(rows), tuple(columns))


def restricted_truth_matrix(
    family: RestrictedFamily,
    rows: list[Block],
    columns: list[BColumn],
    engine: str = "modnp",
    prime: int = modnp.DEFAULT_PRIME,
    workers: int | None = None,
    block_size: int | None = None,
) -> TruthMatrix:
    """The Section 3 truth matrix on explicit row/column instances.

    Entry (C, B) = 1 iff M(A(C), B) is singular, decided via Lemma 3.2's
    span-membership surrogate (valid because Span(A) always has full
    dimension under Fig. 3; the equivalence itself is test-certified).

    ``engine`` selects the predicate implementation (see the module
    docstring); both produce the same matrix, byte for byte.  Asking for
    more than one worker or an explicit ``block_size`` routes through the
    streamed sharded builder (:func:`sharded_truth_matrix`), which is
    byte-identical again.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; have {ENGINES}")
    if block_size is not None or resolve_workers(workers) > 1:
        return sharded_truth_matrix(
            family,
            rows,
            columns,
            engine=engine,
            prime=prime,
            block_size=block_size,
            workers=workers,
        )
    with trace.span(
        "truth_builder.build",
        engine=engine,
        rows=len(rows),
        cols=len(columns),
    ):
        with obs.time_block(f"truth_builder.{engine}"):
            if engine == "fraction":
                return _fraction_predicate_matrix(family, rows, columns)
            return _modnp_matrix(family, rows, columns, prime)


def _block_task(task) -> tuple[int, bytes]:
    """One column block's predicate pass; module-level for :func:`parmap`.

    The block runs the same per-row machinery as the single-pass engines
    (``modnp``'s batched filter included) restricted to its columns, so a
    worker's peak footprint is O(rows x block) and — because every entry is
    a pure per-column predicate — the bytes are position-for-position the
    ones the single-pass build would have produced.
    """
    import numpy as np

    family, rows, block_columns, engine, prime, start = task
    with trace.span(
        "truth_builder.block_shard", start=start, cols=len(block_columns)
    ):
        columns = list(block_columns)
        if engine == "fraction":
            tm = _fraction_predicate_matrix(family, rows, columns)
        else:
            tm = _modnp_matrix(family, rows, columns, prime)
        return start, np.ascontiguousarray(tm.data).tobytes()


def _shard_build_key(
    family: RestrictedFamily, rows, columns, engine: str, prime: int,
    block_size: int,
) -> str:
    """Content address of one sharded build (see :mod:`repro.cache.keys`)."""
    from repro import cache

    return cache.build_key(
        SHARD_VERSIONS[engine],
        {
            "n": family.n,
            "k": family.k,
            "rows": tuple(rows),
            "cols": tuple(columns),
            # The prime only reaches modnp's filter; keying the exact
            # engine on it would orphan shards for no byte difference.
            "prime": int(prime) if engine == "modnp" else 0,
            "block": int(block_size),
        },
    )


def sharded_truth_matrix(
    family: RestrictedFamily,
    rows: list[Block],
    columns: list[BColumn],
    engine: str = "modnp",
    prime: int = modnp.DEFAULT_PRIME,
    block_size: int | None = None,
    workers: int | None = None,
    interrupt_after: int | None = None,
) -> TruthMatrix:
    """Streamed, resumable build of the Section 3 truth matrix.

    Columns are cut into fixed blocks (``block_size``, default
    ``DEFAULT_BLOCK_COLUMNS`` — never derived from the worker count, since
    the block grid is part of every shard's content address).  Each block
    is one :func:`parmap` task; with a persistent store active
    (:mod:`repro.cache`) finished blocks are spilled as shards and a
    partial build resumes from whatever shards already exist, reassembling
    byte-identically to :func:`restricted_truth_matrix`.

    ``interrupt_after`` deliberately kills the build after that many
    freshly computed blocks have been spilled (raising
    :class:`TruthBuildInterrupted`) — the hook the resume tests and
    recovery rehearsals use.
    """
    import numpy as np

    from repro import cache
    from repro.cache.store import block_ranges
    from repro.comm.truth_matrix import truth_matrix_from_column_blocks

    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; have {ENGINES}")
    rows = list(rows)
    columns = list(columns)
    if block_size is None:
        block_size = DEFAULT_BLOCK_COLUMNS
    block_size = int(block_size)
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    if not rows or not columns:
        # Nothing to shard; the single-pass path handles the empty shapes.
        return restricted_truth_matrix(
            family, rows, columns, engine=engine, prime=prime
        )
    n_rows = len(rows)
    n_workers = resolve_workers(workers)
    ranges = block_ranges(len(columns), block_size)
    with trace.span(
        "truth_builder.sharded_build",
        engine=engine,
        rows=n_rows,
        cols=len(columns),
        block=block_size,
        blocks=len(ranges),
        workers=n_workers,
    ):
        with obs.time_block(f"truth_builder.sharded_{engine}"):
            store = cache.active_store()
            key = None
            if store is not None:
                key = _shard_build_key(
                    family, rows, columns, engine, prime, block_size
                )
                store.put_shard_manifest(
                    key,
                    cache.shard_manifest_record(
                        n_rows, len(columns), block_size,
                        SHARD_VERSIONS[engine],
                    ),
                )
            blocks: dict[tuple[int, int], bytes] = {}
            remaining: list[tuple[int, int]] = []
            for start, stop in ranges:
                data = (
                    store.get_shard(key, start, stop)
                    if store is not None
                    else None
                )
                if data is not None:
                    obs.counter("truth_builder.shards_resumed").inc()
                    blocks[(start, stop)] = data
                else:
                    remaining.append((start, stop))
            # Waves keep resumability real: a kill between waves loses at
            # most one wave of work, everything before it is already on
            # disk.  The wave width amortizes pool spin-up without
            # affecting the bytes (block boundaries are fixed above).
            wave = max(1, n_workers) * 4
            built = 0
            while remaining:
                take = wave
                if interrupt_after is not None:
                    take = min(take, interrupt_after - built)
                    if take <= 0:
                        raise TruthBuildInterrupted(
                            key, built, len(ranges)
                        )
                current = remaining[:take]
                remaining = remaining[take:]
                tasks = [
                    (
                        family, rows, tuple(columns[start:stop]), engine,
                        prime, start,
                    )
                    for start, stop in current
                ]
                results = parmap(
                    _block_task, tasks, workers=n_workers, chunksize=1
                )
                for (start, stop), (result_start, data) in zip(
                    current, results
                ):
                    assert result_start == start, "parmap order broke"
                    blocks[(start, stop)] = data
                    obs.counter("truth_builder.shards_built").inc()
                    if store is not None:
                        store.put_shard(key, start, stop, data)
                    built += 1
            arrays = [
                np.frombuffer(blocks[(start, stop)], dtype=np.uint8).reshape(
                    n_rows, stop - start
                )
                for start, stop in ranges
            ]
            return truth_matrix_from_column_blocks(arrays, rows, columns)


@dataclass(frozen=True)
class RestrictedMatrixReport:
    """Summary measurements of one sampled restricted truth matrix."""

    shape: tuple[int, int]
    ones: int
    max_rectangle_area: int
    #: ``area / ones`` as an exact ratio — the degeneracy check compares it
    #: to 1, and a float here could round a barely-proper matrix past it.
    max_rectangle_fraction: Fraction
    ones_per_row_max: int

    @property
    def is_degenerate(self) -> bool:
        """A single rectangle covering everything — the e_width = 0 disease."""
        return self.ones > 0 and self.max_rectangle_fraction >= 1


def build_and_measure(
    family: RestrictedFamily,
    seed: int,
    n_rows: int = 20,
    completions_per_row: int = 1,
    n_random_columns: int = 20,
    completion_rows: int | None = None,
    engine: str = "modnp",
    workers: int | None = None,
) -> RestrictedMatrixReport:
    """One-call pipeline: sample, build, measure (used by E1/E6 and tests)."""
    from repro.comm.rectangles import max_one_rectangle

    rng = ReproducibleRNG(seed)
    rows = sample_distinct_rows(family, rng, n_rows)
    source_rows = rows[: completion_rows if completion_rows is not None else n_rows // 2]
    columns = completed_columns(
        family, source_rows, rng, completions_per_row, workers=workers
    )
    columns += random_columns(family, rng, n_random_columns)
    tm = restricted_truth_matrix(family, rows, columns, engine=engine, workers=workers)
    area, _, _ = max_one_rectangle(tm)
    ones = tm.ones_count()
    per_row_max = int(tm.data.sum(axis=1).max()) if ones else 0
    return RestrictedMatrixReport(
        tm.shape,
        ones,
        area,
        Fraction(area, ones) if ones else Fraction(0),
        per_row_max,
    )
