"""Builders for the *restricted* truth matrix of Section 3.

The paper's argument lives on the truth matrix whose rows are instances of
the first agent's free block (C) and whose columns are instances of the
second agent's free blocks (D, E, y).  Experiments E1/E6 and the integration
tests all need the same construction; this module owns it:

* rows and columns sampled reproducibly (with completions mixed in so the
  matrix actually contains ones — random columns alone are almost never
  singular against any row);
* the predicate evaluated through Lemma 3.2's cheap surrogate
  (``B·u ∈ Span(A)``), with spans cached per row;
* helper measurements (ones per row, max 1-rectangle fraction) in one call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.truth_matrix import TruthMatrix, truth_matrix_from_family
from repro.singularity.family import Block, RestrictedFamily
from repro.singularity.lemma35 import complete
from repro.util.rng import ReproducibleRNG

BColumn = tuple[Block, Block, tuple[int, ...]]


def sample_distinct_rows(
    family: RestrictedFamily, rng: ReproducibleRNG, count: int
) -> list[Block]:
    """``count`` distinct C blocks (raises if the family is too small)."""
    if count > family.count_c_instances():
        raise ValueError(
            f"family has only {family.count_c_instances()} C instances"
        )
    rows: list[Block] = []
    seen: set[Block] = set()
    attempts = 0
    while len(rows) < count:
        c = family.random_c(rng)
        attempts += 1
        if c not in seen:
            seen.add(c)
            rows.append(c)
        if attempts > 100 * count + 1000:
            raise RuntimeError("sampling stalled — family too small for count")
    return rows


def completed_columns(
    family: RestrictedFamily,
    rows: list[Block],
    rng: ReproducibleRNG,
    per_row: int = 1,
) -> list[BColumn]:
    """Columns guaranteed singular against their source row: for each of the
    first rows, ``per_row`` completions with fresh E blocks."""
    columns: list[BColumn] = []
    for c in rows:
        for _ in range(per_row):
            e = family.random_e(rng)
            completion = complete(family, c, e)
            columns.append((completion.d, e, completion.y))
    return columns


def random_columns(
    family: RestrictedFamily, rng: ReproducibleRNG, count: int
) -> list[BColumn]:
    """Uniform (D, E, y) triples — the background population."""
    return [
        (family.random_d(rng), family.random_e(rng), family.random_y(rng))
        for _ in range(count)
    ]


def restricted_truth_matrix(
    family: RestrictedFamily,
    rows: list[Block],
    columns: list[BColumn],
) -> TruthMatrix:
    """The Section 3 truth matrix on explicit row/column instances.

    Entry (C, B) = 1 iff M(A(C), B) is singular, decided via Lemma 3.2's
    span-membership surrogate (valid because Span(A) always has full
    dimension under Fig. 3; the equivalence itself is test-certified).
    """
    spans = {c: family.span_a(c) for c in rows}

    def predicate(c: Block, column: BColumn) -> bool:
        return family.b_times_u_from_blocks(*column) in spans[c]

    return truth_matrix_from_family(predicate, rows, columns)


@dataclass(frozen=True)
class RestrictedMatrixReport:
    """Summary measurements of one sampled restricted truth matrix."""

    shape: tuple[int, int]
    ones: int
    max_rectangle_area: int
    max_rectangle_fraction: float
    ones_per_row_max: int

    @property
    def is_degenerate(self) -> bool:
        """A single rectangle covering everything — the e_width = 0 disease."""
        return self.ones > 0 and self.max_rectangle_fraction >= 1.0


def build_and_measure(
    family: RestrictedFamily,
    seed: int,
    n_rows: int = 20,
    completions_per_row: int = 1,
    n_random_columns: int = 20,
    completion_rows: int | None = None,
) -> RestrictedMatrixReport:
    """One-call pipeline: sample, build, measure (used by E1/E6 and tests)."""
    from repro.comm.rectangles import max_one_rectangle

    rng = ReproducibleRNG(seed)
    rows = sample_distinct_rows(family, rng, n_rows)
    source_rows = rows[: completion_rows if completion_rows is not None else n_rows // 2]
    columns = completed_columns(family, source_rows, rng, completions_per_row)
    columns += random_columns(family, rng, n_random_columns)
    tm = restricted_truth_matrix(family, rows, columns)
    area, _, _ = max_one_rectangle(tm)
    ones = tm.ones_count()
    per_row_max = int(tm.data.sum(axis=1).max()) if ones else 0
    return RestrictedMatrixReport(
        tm.shape,
        ones,
        area,
        (area / ones) if ones else 0.0,
        per_row_max,
    )
