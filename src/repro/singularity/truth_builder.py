"""Builders for the *restricted* truth matrix of Section 3.

The paper's argument lives on the truth matrix whose rows are instances of
the first agent's free block (C) and whose columns are instances of the
second agent's free blocks (D, E, y).  Experiments E1/E6 and the integration
tests all need the same construction; this module owns it:

* rows and columns sampled reproducibly (with completions mixed in so the
  matrix actually contains ones — random columns alone are almost never
  singular against any row);
* the predicate evaluated through Lemma 3.2's cheap surrogate
  (``B·u ∈ Span(A)``), with spans cached per row;
* helper measurements (ones per row, max 1-rectangle fraction) in one call.

Two predicate engines build the same matrix:

* ``engine="fraction"`` — the original exact path: one
  :class:`~repro.exact.span.Subspace` membership test per entry, all
  :class:`~fractions.Fraction` arithmetic;
* ``engine="modnp"`` (default) — the vectorized fast path: per row, **one**
  batched GF(p) call (:func:`repro.exact.modnp.span_membership_batch`)
  filters every column at once, and only the mod-p *members* (rare — ones
  are sparse by claim 2b) are confirmed with the exact Fraction test.  The
  filter direction is sound (see :mod:`repro.exact.modnp`): when
  ``rank_p(A) = rank_ℚ(A) = n − 1``, mod-p non-membership certifies exact
  non-membership, so the two engines produce **byte-identical** matrices;
  rows whose A drops rank mod p (never observed, but checked) fall back to
  the exact path entirely.

Parallelism: :func:`completed_columns` fans its completions out through
:func:`repro.util.parallel.parmap` with per-task seeds derived from the
root seed and the task's (row, completion) position — bit-identical output
at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro import obs
from repro.comm.truth_matrix import TruthMatrix, truth_matrix_from_family
from repro.exact import modnp
from repro.singularity.family import Block, RestrictedFamily
from repro.singularity.lemma35 import complete
from repro.trace import core as trace
from repro.util.parallel import parmap
from repro.util.rng import ReproducibleRNG, derive_seed

BColumn = tuple[Block, Block, tuple[int, ...]]

#: Predicate engines accepted by :func:`restricted_truth_matrix`.
ENGINES = ("modnp", "fraction")


def sample_distinct_rows(
    family: RestrictedFamily, rng: ReproducibleRNG, count: int
) -> list[Block]:
    """``count`` distinct C blocks (raises if the family is too small)."""
    if count > family.count_c_instances():
        raise ValueError(
            f"family has only {family.count_c_instances()} C instances"
        )
    rows: list[Block] = []
    seen: set[Block] = set()
    attempts = 0
    while len(rows) < count:
        c = family.random_c(rng)
        attempts += 1
        if c not in seen:
            seen.add(c)
            rows.append(c)
        if attempts > 100 * count + 1000:
            raise RuntimeError("sampling stalled — family too small for count")
    return rows


def _completion_task(task: tuple[RestrictedFamily, Block, int, int, int]) -> BColumn:
    """One completion, with randomness derived from the task's position.

    Module-level so :func:`parmap` can ship it to worker processes.
    """
    family, c, root_seed, row_index, completion_index = task
    with trace.span(
        "truth_builder.completion_shard",
        row=row_index,
        completion=completion_index,
    ):
        rng = ReproducibleRNG(
            derive_seed(
                root_seed, "completed_columns", row_index, completion_index
            )
        )
        e = family.random_e(rng)
        completion = complete(family, c, e)
        return (completion.d, e, completion.y)


def completed_columns(
    family: RestrictedFamily,
    rows: list[Block],
    rng: ReproducibleRNG,
    per_row: int = 1,
    workers: int | None = None,
) -> list[BColumn]:
    """Columns guaranteed singular against their source row: for each of the
    first rows, ``per_row`` completions with fresh E blocks.

    Each completion draws from its own seed stream — derived from
    ``rng.root_seed`` and the (row, completion) position, never from shared
    RNG state — so the result is bit-identical for every ``workers`` value
    (and the order is always row-major).
    """
    tasks = [
        (family, c, rng.root_seed, i, j)
        for i, c in enumerate(rows)
        for j in range(per_row)
    ]
    return parmap(_completion_task, tasks, workers=workers)


def random_columns(
    family: RestrictedFamily, rng: ReproducibleRNG, count: int
) -> list[BColumn]:
    """Uniform (D, E, y) triples — the background population."""
    return [
        (family.random_d(rng), family.random_e(rng), family.random_y(rng))
        for _ in range(count)
    ]


def _bu_int_vector(family: RestrictedFamily, column: BColumn) -> list[int]:
    """``B·u`` for one column, as plain Python ints (entries are integral)."""
    return [int(x) for x in family.b_times_u_from_blocks(*column)]


def _fraction_predicate_matrix(
    family: RestrictedFamily,
    rows: list[Block],
    columns: list[BColumn],
) -> TruthMatrix:
    """The original exact path: spans precomputed per row, one Fraction
    membership test per entry."""
    spans = {c: family.span_a(c) for c in rows}

    def predicate(c: Block, column: BColumn) -> bool:
        obs.counter("truth_builder.span_cache_hits").inc()
        return family.b_times_u_from_blocks(*column) in spans[c]

    return truth_matrix_from_family(predicate, rows, columns)


def _modnp_matrix(
    family: RestrictedFamily,
    rows: list[Block],
    columns: list[BColumn],
    prime: int,
) -> TruthMatrix:
    """The batched fast path: filter all columns per row with one GF(p)
    kernel call, confirm the surviving candidates exactly."""
    import numpy as np

    if not rows or not columns:
        return truth_matrix_from_family(lambda c, col: False, rows, columns)
    bu_vectors = [_bu_int_vector(family, column) for column in columns]
    data = np.zeros((len(rows), len(columns)), dtype=np.uint8)
    expected_rank = family.n - 1  # Lemma 3.2's premise: A has full column rank
    span_cache: dict[Block, object] = {}

    def exact_member(c: Block, j: int) -> bool:
        span = span_cache.get(c)
        if span is None:
            span_cache[c] = span = family.span_a(c)
            obs.counter("truth_builder.span_cache_misses").inc()
        else:
            obs.counter("truth_builder.span_cache_hits").inc()
        return family.b_times_u_from_blocks(*columns[j]) in span

    for i, c in enumerate(rows):
        a_cols = family.build_a(c).transpose().to_int_rows()
        echelon, pivot_cols = modnp.echelon_mod(a_cols, prime)
        if len(pivot_cols) < expected_rank:
            # A collapsed mod p (needs p | some maximal minor — essentially
            # never for a 2³¹-scale prime, but soundness demands the check):
            # the filter direction is no longer certified, do the row exactly.
            obs.counter("truth_builder.modnp_fallback_rows").inc()
            for j in range(len(columns)):
                data[i, j] = 1 if exact_member(c, j) else 0
            continue
        candidates = modnp.span_membership_batch(echelon, bu_vectors, prime)
        obs.counter("truth_builder.modnp_filtered").inc(
            int((~candidates).sum())
        )
        for j in np.nonzero(candidates)[0]:
            obs.counter("truth_builder.exact_confirms").inc()
            data[i, int(j)] = 1 if exact_member(c, int(j)) else 0
    return TruthMatrix(data, tuple(rows), tuple(columns))


def restricted_truth_matrix(
    family: RestrictedFamily,
    rows: list[Block],
    columns: list[BColumn],
    engine: str = "modnp",
    prime: int = modnp.DEFAULT_PRIME,
) -> TruthMatrix:
    """The Section 3 truth matrix on explicit row/column instances.

    Entry (C, B) = 1 iff M(A(C), B) is singular, decided via Lemma 3.2's
    span-membership surrogate (valid because Span(A) always has full
    dimension under Fig. 3; the equivalence itself is test-certified).

    ``engine`` selects the predicate implementation (see the module
    docstring); both produce the same matrix, byte for byte.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; have {ENGINES}")
    with trace.span(
        "truth_builder.build",
        engine=engine,
        rows=len(rows),
        cols=len(columns),
    ):
        with obs.time_block(f"truth_builder.{engine}"):
            if engine == "fraction":
                return _fraction_predicate_matrix(family, rows, columns)
            return _modnp_matrix(family, rows, columns, prime)


@dataclass(frozen=True)
class RestrictedMatrixReport:
    """Summary measurements of one sampled restricted truth matrix."""

    shape: tuple[int, int]
    ones: int
    max_rectangle_area: int
    #: ``area / ones`` as an exact ratio — the degeneracy check compares it
    #: to 1, and a float here could round a barely-proper matrix past it.
    max_rectangle_fraction: Fraction
    ones_per_row_max: int

    @property
    def is_degenerate(self) -> bool:
        """A single rectangle covering everything — the e_width = 0 disease."""
        return self.ones > 0 and self.max_rectangle_fraction >= 1


def build_and_measure(
    family: RestrictedFamily,
    seed: int,
    n_rows: int = 20,
    completions_per_row: int = 1,
    n_random_columns: int = 20,
    completion_rows: int | None = None,
    engine: str = "modnp",
    workers: int | None = None,
) -> RestrictedMatrixReport:
    """One-call pipeline: sample, build, measure (used by E1/E6 and tests)."""
    from repro.comm.rectangles import max_one_rectangle

    rng = ReproducibleRNG(seed)
    rows = sample_distinct_rows(family, rng, n_rows)
    source_rows = rows[: completion_rows if completion_rows is not None else n_rows // 2]
    columns = completed_columns(
        family, source_rows, rng, completions_per_row, workers=workers
    )
    columns += random_columns(family, rng, n_random_columns)
    tm = restricted_truth_matrix(family, rows, columns, engine=engine)
    area, _, _ = max_one_rectangle(tm)
    ones = tm.ones_count()
    per_row_max = int(tm.data.sum(axis=1).max()) if ones else 0
    return RestrictedMatrixReport(
        tm.shape,
        ones,
        area,
        Fraction(area, ones) if ones else Fraction(0),
        per_row_max,
    )
