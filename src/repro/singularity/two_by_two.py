"""The 2×2 singularity problem, at full numpy speed.

``M = [[a, b], [c, d]]`` is singular iff ``a·d == b·c`` — so the π₀ truth
matrix (rows = (a, c) pairs read by agent 0 holding the first column;
columns = (b, d) pairs) is a pure broadcasting computation, and we can
build it for k up to ~6 (a 4096×4096 matrix) in milliseconds where the
generic enumerator would take hours.  Combined with the GF(2) rank engine
this powers measured log-rank lower bounds across a genuine k-sweep (E1).

Also provides the exact count of singular 2×2 matrices over [0, 2^k)
via divisor counting — a closed-form check on every built matrix.
"""

from __future__ import annotations

import numpy as np

from repro.comm.truth_matrix import TruthMatrix


def singularity_2x2_truth_matrix(k: int) -> TruthMatrix:
    """π₀ truth matrix of 2×2 k-bit singularity, built by broadcasting.

    Agent 0 reads the first column (a, c); agent 1 the second (b, d).
    Row label = a·2^k + c, column label = b·2^k + d (plain ints).
    """
    if not 1 <= k <= 6:
        raise ValueError("k in [1, 6]: the matrix has 4^k x 4^k entries")
    q = 1 << k
    values = np.arange(q, dtype=np.int64)
    a = values[:, None, None, None]
    c = values[None, :, None, None]
    b = values[None, None, :, None]
    d = values[None, None, None, :]
    singular = (a * d) == (b * c)
    data = singular.reshape(q * q, q * q).astype(np.uint8)
    labels_rows = tuple(int(x) for x in range(q * q))
    return TruthMatrix(data, labels_rows, labels_rows)


def count_divisor_pairs(value: int, q: int) -> int:
    """#{(x, y) in [0, q)²: x·y == value}."""
    if value == 0:
        return 2 * q - 1  # x = 0 (q choices of y) + y = 0 (q of x) − (0,0)
    count = 0
    d = 1
    while d * d <= value:
        if value % d == 0:
            e = value // d
            if d < q and e < q:
                count += 1 if d == e else 2
        d += 1
    return count


def exact_singular_count_2x2(k: int) -> int:
    """#singular 2×2 matrices over [0, 2^k)⁴, exactly: Σ_v p(v)² where
    p(v) = #product pairs hitting v (ad and bc must agree)."""
    q = 1 << k
    total = 0
    # products range over [0, (q-1)^2]; count multiplicities.
    multiplicity: dict[int, int] = {}
    for x in range(q):
        for y in range(q):
            value = x * y
            multiplicity[value] = multiplicity.get(value, 0) + 1
    for count in multiplicity.values():
        total += count * count
    return total


def measured_rank_bound_sweep(k_values) -> list[dict]:
    """For each k: build the 2×2 truth matrix, measure ones and the GF(2)
    log-rank lower bound, report against k·n² (n = 1 block → k·4)."""
    from repro.exact.gf2 import gf2_rank_of_truth_matrix
    from repro.util.fmt import log2_or_zero

    rows = []
    for k in k_values:
        tm = singularity_2x2_truth_matrix(k)
        ones = tm.ones_count()
        assert ones == exact_singular_count_2x2(k)
        rank2 = gf2_rank_of_truth_matrix(tm)
        rows.append(
            {
                "k": k,
                "side": tm.shape[0],
                "ones": ones,
                "gf2_rank": rank2,
                "log2_rank": log2_or_zero(rank2),
                "kn2": 4 * k,
            }
        )
    return rows
