"""Structured tracing: spans, replayable wire transcripts, summaries.

The observability layer of the reproduction.  :mod:`repro.obs` counts;
this package *attributes*: a :class:`Tracer` records a span tree with
monotonic durations and per-span obs-counter deltas, the comm runtime
emits a replayable wire transcript (every send with agent, round, bit
cost and payload), and the search/parallel layers emit progress spans.
:mod:`repro.trace.replay` rebuilds a run's transcript from the trace
alone and cross-checks it bit-for-bit against the live ``RunReport``;
:mod:`repro.trace.summary` folds a trace into per-span wall-time and
counter attribution.

Tracing is disabled by default and free when off.  Activate it with
:func:`configure`, the ``REPRO_TRACE_DIR`` environment variable, or the
scoped :func:`capture`/:func:`directory` context managers — the same
opt-in shape as :mod:`repro.cache`.  See ``docs/observability.md``.
"""

from repro.trace.core import (
    DEFAULT_CAPACITY,
    ENV_VAR,
    EVENT_KINDS,
    SCHEMA_VERSION,
    Span,
    TraceEvent,
    Tracer,
    active_tracer,
    capture,
    configure,
    decode_event,
    directory,
    disabled,
    encode_event,
    event,
    load_jsonl,
    span,
    unconfigure,
)
from repro.trace.replay import ReplayResult, render_replay, replay_all
from repro.trace.summary import render_summary, summarize

__all__ = [
    "DEFAULT_CAPACITY",
    "ENV_VAR",
    "EVENT_KINDS",
    "SCHEMA_VERSION",
    "ReplayResult",
    "Span",
    "TraceEvent",
    "Tracer",
    "active_tracer",
    "capture",
    "configure",
    "decode_event",
    "directory",
    "disabled",
    "encode_event",
    "event",
    "load_jsonl",
    "render_replay",
    "render_summary",
    "replay_all",
    "span",
    "summarize",
    "unconfigure",
]
