"""Hierarchical spans and typed events on top of :mod:`repro.obs`.

``repro.obs`` answers *how many* — flat counters and timers.  This module
answers *where*: a :class:`Tracer` records a tree of **spans** (named,
nested intervals measured on a monotonic nanosecond clock) and point
**events** (a Send on the wire, an ARQ retransmission, an
iterative-deepening step), each attributed to the span that was open when
it happened.  A Yao protocol's transcript *is* its trace — the ``wire.send``
events recorded under one ``protocol.run`` span carry every payload bit,
so :mod:`repro.trace.replay` can rebuild the transcript and re-derive the
leaf the protocol reached, cross-checking the live ``RunReport``.

Design constraints, in priority order:

* **free when off** — every instrumentation site calls
  :func:`active_tracer` first, which is one lock-free global read when no
  tracer is installed; tier-1 timings must not move;
* **bounded** — events live in a ring buffer (``collections.deque`` with
  ``maxlen``); overflow drops the *oldest* events and counts them in
  :attr:`Tracer.dropped` rather than growing without bound;
* **deterministic bytes** — exported JSONL is canonical (sorted keys,
  compact separators) and written with the same pid+tid-unique temporary
  file + ``os.replace`` discipline as :mod:`repro.cache.store`, so two
  processes never interleave torn lines;
* **DET-clean** — the one wall-clock read lives in :func:`_now_ns` behind
  a documented pragma; ticks are observability payload only and never
  feed a Send, an encoder, or a seed.

Activation mirrors the cache API: explicit :func:`configure` beats the
``REPRO_TRACE_DIR`` environment variable; :func:`capture` scopes an
in-memory tracer for tests and the replay tour.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from threading import Lock

from repro import obs

#: JSONL export schema version; bump on any incompatible field change.
SCHEMA_VERSION = 1

#: Environment variable that ambiently activates a JSONL sink directory.
ENV_VAR = "REPRO_TRACE_DIR"

#: Default ring-buffer capacity (events retained per tracer).
DEFAULT_CAPACITY = 65536

#: The three event kinds a tracer records.
EVENT_KINDS = ("span_start", "span_end", "event")


def _now_ns() -> int:
    """Monotonic nanosecond tick for span durations.

    This is the *only* clock read in the trace layer.  Ticks are
    observability payload: they decorate spans and events but never feed a
    Send, a codec, or a seed, so determinism of protocol behaviour is
    untouched (the DET203 rule bans ambient clock reads in this scope
    precisely so that this one documented exception stays the only one).
    """
    return time.perf_counter_ns()  # repro-lint: disable=DET203


class TraceEvent:
    """One recorded fact: a span boundary or a point event.

    Attributes mirror the JSONL schema v1 exactly:

    ``seq``
        Process-unique monotone sequence number (also the span id for
        ``span_start`` events).
    ``tick_ns``
        Monotonic nanosecond tick from :func:`_now_ns`.
    ``kind``
        One of :data:`EVENT_KINDS`.
    ``name``
        Dotted event name (``protocol.run``, ``wire.send``, ...).
    ``span``
        For span boundaries: the span's own id.  For point events: the id
        of the innermost open span, or None at top level.
    ``parent``
        For span boundaries: the enclosing span id or None.  Always None
        for point events (their ``span`` field is the attribution).
    ``fields``
        JSON-ready payload dict (bit strings, counts, counter deltas).
    """

    __slots__ = ("seq", "tick_ns", "kind", "name", "span", "parent", "fields")

    def __init__(self, seq, tick_ns, kind, name, span, parent, fields):
        self.seq = seq
        self.tick_ns = tick_ns
        self.kind = kind
        self.name = name
        self.span = span
        self.parent = parent
        self.fields = fields

    def as_dict(self) -> dict:
        """JSON-ready dict with every schema-v1 field present."""
        return {
            "seq": self.seq,
            "tick_ns": self.tick_ns,
            "kind": self.kind,
            "name": self.name,
            "span": self.span,
            "parent": self.parent,
            "fields": self.fields,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "TraceEvent":
        """Inverse of :meth:`as_dict` (used by the JSONL loader)."""
        return cls(
            raw["seq"],
            raw["tick_ns"],
            raw["kind"],
            raw["name"],
            raw.get("span"),
            raw.get("parent"),
            raw.get("fields", {}),
        )

    def __repr__(self) -> str:
        return f"TraceEvent({self.seq}, {self.kind}, {self.name!r})"


def encode_event(event: TraceEvent) -> str:
    """Canonical JSONL line for one event (sorted keys, compact, newline).

    Iterating sorted keys — never raw dict order — keeps exported bytes
    identical across processes, the same contract as
    :func:`repro.cache.store.encode_record`.
    """
    return (
        json.dumps(event.as_dict(), sort_keys=True, separators=(",", ":"))
        + "\n"
    )


def decode_event(line: str) -> TraceEvent | None:
    """Parse one JSONL line; None for malformed content."""
    try:
        raw = json.loads(line)
    except (ValueError, TypeError):
        return None
    if not isinstance(raw, dict) or raw.get("kind") not in EVENT_KINDS:
        return None
    try:
        return TraceEvent.from_dict(raw)
    except KeyError:
        return None


class Span:
    """A named interval, used as a context manager.

    On entry it records a ``span_start`` event and snapshots the obs
    counter registry; on exit it records ``span_end`` carrying
    ``duration_ns`` plus the per-span **counter deltas** (only counters
    whose value changed inside the span, sorted by name).
    """

    __slots__ = ("tracer", "name", "fields", "span_id", "_start_ns",
                 "_counters0", "_extra")

    def __init__(self, tracer: "Tracer", name: str, fields: dict):
        self.tracer = tracer
        self.name = name
        self.fields = fields
        self.span_id = None
        self._start_ns = 0
        self._counters0 = {}
        self._extra: dict = {}

    def __enter__(self) -> "Span":
        self._counters0 = obs.snapshot()["counters"]
        self.span_id = self.tracer._open_span(self.name, self.fields)
        self._start_ns = _now_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = _now_ns() - self._start_ns
        counters1 = obs.snapshot()["counters"]
        deltas = {}
        for cname in sorted(counters1):
            diff = counters1[cname] - self._counters0.get(cname, 0)
            if diff:
                deltas[cname] = diff
        fields = dict(self._extra)
        fields["duration_ns"] = duration
        if deltas:
            fields["counters"] = deltas
        if exc_type is not None:
            fields["error"] = exc_type.__name__
        self.tracer._close_span(self.name, self.span_id, fields)

    def annotate(self, **fields) -> None:
        """Attach extra fields to this span's eventual ``span_end`` event."""
        self._extra.update(fields)


class Tracer:
    """A bounded in-memory event ring with an optional JSONL sink.

    Thread-safe: a single lock guards the sequence counter, the ring and
    the span stack.  The span stack is per-tracer (protocol execution is
    single-threaded; parallel sweeps get a tracer per worker process).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, sink_dir=None,
                 label: str = "trace"):
        self.capacity = int(capacity)
        self.sink_dir = Path(sink_dir) if sink_dir is not None else None
        self.label = str(label)
        self.dropped = 0
        self._events: deque[TraceEvent] = deque(maxlen=self.capacity)
        self._seq = 0
        self._stack: list[int] = []
        self._lock = Lock()

    # -- recording ------------------------------------------------------
    def _record(self, kind, name, span, parent, fields,
                span_is_seq: bool = False) -> int:
        tick = _now_ns()
        with self._lock:
            seq = self._seq
            self._seq += 1
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(
                TraceEvent(
                    seq, tick, kind, name,
                    seq if span_is_seq else span, parent, fields,
                )
            )
            return seq

    def _open_span(self, name, fields) -> int:
        with self._lock:
            parent = self._stack[-1] if self._stack else None
        # span id IS the start event's seq.
        seq = self._record("span_start", name, None, parent, fields,
                           span_is_seq=True)
        with self._lock:
            self._stack.append(seq)
        return seq

    def _close_span(self, name, span_id, fields) -> None:
        with self._lock:
            parent = None
            if self._stack and self._stack[-1] == span_id:
                self._stack.pop()
                parent = self._stack[-1] if self._stack else None
        self._record("span_end", name, span_id, parent, fields)

    def span(self, name: str, **fields) -> Span:
        """A context manager recording ``name`` as a child of the current
        span, with ``fields`` attached to its ``span_start`` event."""
        return Span(self, name, fields)

    def event(self, name: str, **fields) -> None:
        """Record a point event under the innermost open span."""
        with self._lock:
            span = self._stack[-1] if self._stack else None
        self._record("event", name, span, None, fields)

    # -- inspection -----------------------------------------------------
    def events(self) -> list[TraceEvent]:
        """A snapshot copy of the ring, oldest first."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- persistence ----------------------------------------------------
    def default_sink_path(self) -> Path | None:
        """Where :meth:`flush` writes when not given a path, or None."""
        if self.sink_dir is None:
            return None
        return self.sink_dir / f"{self.label}-{os.getpid()}.jsonl"

    def flush(self, path=None) -> Path | None:
        """Write the ring as canonical JSONL, atomically; returns the path.

        With no ``path`` and no sink directory this is a no-op returning
        None.  The write goes through a pid+tid-unique temporary file and
        ``os.replace`` — the :mod:`repro.cache.store` discipline — so a
        reader never sees a torn file.
        """
        if path is None:
            path = self.default_sink_path()
            if path is None:
                return None
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [encode_event(ev) for ev in self.events()]
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        tmp.write_text("".join(lines))
        os.replace(tmp, path)
        obs.counter("trace.flushes").inc()
        return path


def load_jsonl(path) -> list[TraceEvent]:
    """Read a flushed trace file back into events (malformed lines skipped)."""
    events = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        event = decode_event(line)
        if event is not None:
            events.append(event)
    return events


# ---------------------------------------------------------------------------
# Active-tracer resolution: explicit configure() beats the environment.
# ---------------------------------------------------------------------------

_LOCK = Lock()
_CONFIGURED: Tracer | None = None
_CONFIGURED_SET = False
_ENV_TRACERS: dict[str, Tracer] = {}
_ATEXIT_REGISTERED = False


def _register_atexit(tracer: Tracer) -> None:
    """Flush env-activated tracers at interpreter exit (idempotent)."""
    global _ATEXIT_REGISTERED
    if _ATEXIT_REGISTERED:
        return
    _ATEXIT_REGISTERED = True
    atexit.register(_flush_env_tracers)


def _flush_env_tracers() -> None:
    with _LOCK:
        tracers = list(_ENV_TRACERS.values())
    for tracer in tracers:
        if len(tracer):
            tracer.flush()


def configure(path, capacity: int = DEFAULT_CAPACITY,
              label: str = "trace") -> Tracer | None:
    """Pin the process-wide tracer to a JSONL sink under ``path`` (None
    disables tracing even when ``REPRO_TRACE_DIR`` is set).  Returns the
    active tracer."""
    global _CONFIGURED, _CONFIGURED_SET
    tracer = (
        Tracer(capacity=capacity, sink_dir=path, label=label)
        if path is not None
        else None
    )
    with _LOCK:
        _CONFIGURED = tracer
        _CONFIGURED_SET = True
    return tracer


def unconfigure() -> None:
    """Drop any explicit configuration; the environment rules again."""
    global _CONFIGURED, _CONFIGURED_SET
    with _LOCK:
        _CONFIGURED = None
        _CONFIGURED_SET = False


def active_tracer() -> Tracer | None:
    """The tracer every instrumentation site consults, or None.

    This is the no-op fast path: with no explicit configuration and no
    ``REPRO_TRACE_DIR``, the common case is two global reads and an
    environment lookup — no allocation and no lock (the unlocked reads are
    benign: at worst one event lands on the just-replaced tracer during a
    concurrent reconfigure).
    """
    if _CONFIGURED_SET:
        return _CONFIGURED
    env = os.environ.get(ENV_VAR)
    if env is None or not env.strip():
        return None
    path = env.strip()
    with _LOCK:
        tracer = _ENV_TRACERS.get(path)
    if tracer is None:
        tracer = Tracer(sink_dir=path)
        with _LOCK:
            tracer = _ENV_TRACERS.setdefault(path, tracer)
        _register_atexit(tracer)
    return tracer


@contextmanager
def capture(capacity: int = DEFAULT_CAPACITY):
    """Scoped in-memory tracer: activate, yield it, restore the previous
    resolution state.  The workhorse of the trace tests and examples."""
    global _CONFIGURED, _CONFIGURED_SET
    with _LOCK:
        saved = (_CONFIGURED, _CONFIGURED_SET)
    tracer = Tracer(capacity=capacity)
    with _LOCK:
        _CONFIGURED = tracer
        _CONFIGURED_SET = True
    try:
        yield tracer
    finally:
        _restore(saved)


@contextmanager
def directory(path, capacity: int = DEFAULT_CAPACITY, label: str = "trace"):
    """Scoped :func:`configure`: trace into a JSONL sink under ``path``,
    flush on exit, restore the previous resolution state afterwards."""
    with _LOCK:
        saved = (_CONFIGURED, _CONFIGURED_SET)
    tracer = configure(path, capacity=capacity, label=label)
    try:
        yield tracer
    finally:
        if tracer is not None and len(tracer):
            tracer.flush()
        _restore(saved)


@contextmanager
def disabled():
    """Scoped off-switch: no tracing inside the block (used by the bench
    harness so instrumented timings never pay trace overhead)."""
    with _LOCK:
        saved = (_CONFIGURED, _CONFIGURED_SET)
    configure(None)
    try:
        yield
    finally:
        _restore(saved)


def _restore(saved) -> None:
    global _CONFIGURED, _CONFIGURED_SET
    with _LOCK:
        _CONFIGURED, _CONFIGURED_SET = saved


# ---------------------------------------------------------------------------
# Module-level instrumentation helpers (the only API hot paths call).
# ---------------------------------------------------------------------------

@contextmanager
def span(name: str, **fields):
    """Open ``name`` as a span on the active tracer; no-op when tracing is
    off.  Yields the :class:`Span` (or None when disabled)."""
    tracer = active_tracer()
    if tracer is None:
        yield None
        return
    with tracer.span(name, **fields) as s:
        yield s


def event(name: str, **fields) -> None:
    """Record a point event on the active tracer; no-op when tracing is off."""
    tracer = active_tracer()
    if tracer is not None:
        tracer.event(name, **fields)
