"""Transcript replay: rebuild a protocol run from its trace, then check it.

A traced run records two independent views of the same execution:

* the **wire view** — one ``wire.send`` event per channel send, carrying
  the sender, the round number, the bit cost and the payload bits
  themselves;
* the **runtime view** — one ``run.report`` event emitted by
  :func:`repro.comm.agents.run_protocol` / ``run_supervised`` with the
  outcome, total bits, round count and the transcript leaf
  (:meth:`Transcript.as_bit_string`).

Replay reconstructs a :class:`~repro.comm.channel.Transcript` from the
wire view alone and cross-checks it against the runtime view: the leaf
must match bit-for-bit, the bit and round totals must agree.  For a
protocol-tree execution the concatenated transcript bits *are* the leaf
of the tree the run reached (Yao's model — the conversation determines
the rectangle), so agreement here means the recorded trace is a faithful,
replayable artifact of the run, not a lossy log.

Events are attributed to runs by walking span parents up to the nearest
``protocol.run`` span, so traces containing many runs (a chaos sweep, a
bench suite) replay cleanly run by run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.trace.core import TraceEvent

if TYPE_CHECKING:  # pragma: no cover — type-only; see the runtime import
    from repro.comm.channel import Transcript

# NOTE: repro.comm.channel imports repro.trace.core (to emit wire events),
# and this package's __init__ imports this module — so the comm import here
# must be deferred to call time to break the cycle.  By the time anyone
# replays a trace, repro.comm is importable.

#: Span name marking one protocol execution.
RUN_SPAN = "protocol.run"


@dataclass(frozen=True)
class ReplayResult:
    """One run, rebuilt from its ``wire.send`` events.

    Attributes:
        run_id: the span id of the ``protocol.run`` span.
        runner: which entry point ran it (``run_protocol``/``run_supervised``).
        transcript: the reconstructed transcript.
        report: the ``run.report`` fields recorded live (empty dict when
            the report event is missing, e.g. truncated by the ring).
        problems: cross-check mismatches (empty = replay verified).
    """

    run_id: int
    runner: str
    transcript: Transcript
    report: dict = field(default_factory=dict)
    problems: tuple[str, ...] = ()

    @property
    def leaf(self) -> str:
        """The reconstructed transcript leaf (concatenated bit string)."""
        return self.transcript.as_bit_string()

    @property
    def verified(self) -> bool:
        """True iff a live report exists and every cross-check passed."""
        return bool(self.report) and not self.problems


def _span_index(events: list[TraceEvent]) -> tuple[dict, dict]:
    """Maps span id -> (name, parent) and span id -> nearest run span id."""
    meta: dict[int, tuple[str, int | None]] = {}
    for ev in events:
        if ev.kind == "span_start":
            meta[ev.span] = (ev.name, ev.parent)

    run_of: dict[int, int | None] = {}

    def resolve(span_id: int | None) -> int | None:
        if span_id is None:
            return None
        if span_id in run_of:
            return run_of[span_id]
        name, parent = meta.get(span_id, ("", None))
        run_of[span_id] = span_id if name == RUN_SPAN else resolve(parent)
        return run_of[span_id]

    for span_id in meta:
        resolve(span_id)
    return meta, run_of


def replay_all(events: list[TraceEvent]) -> list[ReplayResult]:
    """Rebuild and cross-check every ``protocol.run`` in a trace, in order."""
    _meta, run_of = _span_index(events)
    run_ids = [
        ev.span
        for ev in events
        if ev.kind == "span_start" and ev.name == RUN_SPAN
    ]
    wires: dict[int, list[TraceEvent]] = {rid: [] for rid in run_ids}
    reports: dict[int, dict] = {}
    runners: dict[int, str] = {}
    for ev in events:
        if ev.kind == "span_start" and ev.name == RUN_SPAN:
            runners[ev.span] = ev.fields.get("runner", "")
            continue
        if ev.kind != "event":
            continue
        rid = run_of.get(ev.span) if ev.span is not None else None
        if rid is None or rid not in wires:
            continue
        if ev.name == "wire.send":
            wires[rid].append(ev)
        elif ev.name == "run.report":
            reports[rid] = dict(ev.fields)
    return [
        _replay_one(rid, runners.get(rid, ""), wires[rid], reports.get(rid))
        for rid in run_ids
    ]


def _replay_one(run_id, runner, wire_events, report) -> ReplayResult:
    """Reconstruct one transcript and diff it against its live report."""
    from repro.comm.channel import Message, Transcript

    transcript = Transcript()
    problems: list[str] = []
    for ev in sorted(wire_events, key=lambda e: e.seq):
        payload = ev.fields.get("payload", "")
        bits = tuple(int(ch) for ch in payload)
        if len(bits) != ev.fields.get("bits", len(bits)):
            problems.append(
                f"wire.send seq={ev.seq}: payload length {len(bits)} "
                f"!= recorded bit cost {ev.fields.get('bits')}"
            )
        transcript.messages.append(Message(ev.fields.get("agent", 0), bits))
    if report is None:
        return ReplayResult(
            run_id, runner, transcript, {}, tuple(problems)
        )
    if transcript.as_bit_string() != report.get("leaf"):
        problems.append(
            f"leaf mismatch: replayed {transcript.as_bit_string()!r} "
            f"vs reported {report.get('leaf')!r}"
        )
    if transcript.total_bits != report.get("bits"):
        problems.append(
            f"bit-count mismatch: replayed {transcript.total_bits} "
            f"vs reported {report.get('bits')}"
        )
    if transcript.rounds != report.get("rounds"):
        problems.append(
            f"round-count mismatch: replayed {transcript.rounds} "
            f"vs reported {report.get('rounds')}"
        )
    return ReplayResult(run_id, runner, transcript, report, tuple(problems))


def render_replay(results: list[ReplayResult]) -> str:
    """Human-readable replay report for ``python -m repro trace replay``."""
    lines = [f"{len(results)} protocol run(s) in trace"]
    for res in results:
        status = "VERIFIED" if res.verified else (
            "UNREPORTED" if not res.report else "MISMATCH"
        )
        outcome = res.report.get("outcome", "?")
        lines.append(
            f"run {res.run_id} [{res.runner or '?'}] outcome={outcome} "
            f"bits={res.transcript.total_bits} "
            f"rounds={res.transcript.rounds} -> {status}"
        )
        for problem in res.problems:
            lines.append(f"  ! {problem}")
    verified = sum(1 for r in results if r.verified)
    lines.append(f"{verified}/{len(results)} runs verified bit-for-bit")
    return "\n".join(lines)
