"""Aggregation over a recorded trace: the ``repro trace summary`` engine.

A trace is a flat event list; this module folds it back into the span
tree and answers the questions the ISSUE's acceptance criteria pin down:

* **per-name span statistics** — calls, total and self (exclusive) time,
  aggregated obs-counter deltas;
* **wall-time coverage** — the fraction of the trace's wall interval
  (first tick to last tick) covered by the union of *top-level* span
  intervals.  A well-instrumented run (e.g. a traced E15 search) must
  attribute >= 95% of its wall time to named spans;
* **event histograms** — how many ``wire.send``, ``arq.retransmit``,
  ``exhaustive.deepen``... events fired;
* **chaos fault attribution** — per-fault-kind injected/retry totals,
  folded from ``chaos.point`` events (the per-kind histograms that
  :class:`repro.comm.chaos.RunSummary` now preserves across parmap
  workers).

Everything here consumes plain :class:`repro.trace.core.TraceEvent`
objects — live from :meth:`Tracer.events` or loaded from a JSONL file —
and produces JSON-ready dicts with sorted keys.
"""

from __future__ import annotations

from repro.trace.core import SCHEMA_VERSION, TraceEvent


def _span_records(events: list[TraceEvent]) -> dict[int, dict]:
    """Collate span_start/span_end pairs into one record per span id."""
    spans: dict[int, dict] = {}
    for ev in events:
        if ev.kind == "span_start":
            spans[ev.span] = {
                "id": ev.span,
                "name": ev.name,
                "parent": ev.parent,
                "start_ns": ev.tick_ns,
                "end_ns": None,
                "duration_ns": None,
                "fields": dict(ev.fields),
                "counters": {},
            }
        elif ev.kind == "span_end":
            rec = spans.get(ev.span)
            if rec is None:
                # start fell off the ring buffer; synthesize what we can.
                rec = spans[ev.span] = {
                    "id": ev.span,
                    "name": ev.name,
                    "parent": ev.parent,
                    "start_ns": None,
                    "end_ns": None,
                    "duration_ns": None,
                    "fields": {},
                    "counters": {},
                }
            rec["end_ns"] = ev.tick_ns
            rec["duration_ns"] = ev.fields.get("duration_ns")
            rec["counters"] = dict(ev.fields.get("counters", {}))
            for key, value in ev.fields.items():
                if key not in ("duration_ns", "counters"):
                    rec["fields"][key] = value
    return spans


def _union_length(intervals: list[tuple[int, int]]) -> int:
    """Total length of the union of [start, end] intervals."""
    covered = 0
    last_end = None
    for start, end in sorted(intervals):
        if last_end is None or start > last_end:
            covered += end - start
            last_end = end
        elif end > last_end:
            covered += end - last_end
            last_end = end
    return covered


def summarize(events: list[TraceEvent], dropped: int = 0) -> dict:
    """Fold a trace into the JSON-ready summary dict (schema-stable).

    Keys: ``schema``, ``events``, ``dropped``, ``wall_ns``,
    ``coverage`` (0..1 float, union of top-level spans over the wall
    interval), ``spans`` (per-name calls/total_ns/self_ns/counters),
    ``event_counts`` (per-name point-event histogram), ``counters``
    (deltas aggregated over top-level spans), and ``faults_by_kind``
    (chaos per-kind injected/retry totals, present when chaos events
    appear in the trace).
    """
    spans = _span_records(events)

    # Self time: duration minus the sum of direct children's durations.
    child_time: dict[int, int] = {}
    for rec in spans.values():
        parent = rec["parent"]
        if parent is not None and rec["duration_ns"] is not None:
            child_time[parent] = child_time.get(parent, 0) + rec["duration_ns"]

    by_name: dict[str, dict] = {}
    for rec in spans.values():
        agg = by_name.setdefault(
            rec["name"],
            {"calls": 0, "total_ns": 0, "self_ns": 0, "counters": {}},
        )
        agg["calls"] += 1
        if rec["duration_ns"] is not None:
            agg["total_ns"] += rec["duration_ns"]
            agg["self_ns"] += max(
                0, rec["duration_ns"] - child_time.get(rec["id"], 0)
            )
        for cname in sorted(rec["counters"]):
            agg["counters"][cname] = (
                agg["counters"].get(cname, 0) + rec["counters"][cname]
            )

    # Wall interval and top-level coverage.
    ticks = [ev.tick_ns for ev in events]
    wall_ns = (max(ticks) - min(ticks)) if len(ticks) > 1 else 0
    top_intervals = [
        (rec["start_ns"], rec["end_ns"])
        for rec in spans.values()
        if rec["parent"] is None
        and rec["start_ns"] is not None
        and rec["end_ns"] is not None
    ]
    coverage = (_union_length(top_intervals) / wall_ns) if wall_ns else 0.0

    # Counter deltas aggregated over top-level spans only (children's
    # deltas are already included in their ancestors').
    counters: dict[str, int] = {}
    for rec in spans.values():
        if rec["parent"] is None:
            for cname in sorted(rec["counters"]):
                counters[cname] = (
                    counters.get(cname, 0) + rec["counters"][cname]
                )

    event_counts: dict[str, int] = {}
    faults_by_kind: dict[str, dict] = {}
    for ev in events:
        if ev.kind != "event":
            continue
        event_counts[ev.name] = event_counts.get(ev.name, 0) + 1
        if ev.name == "chaos.point":
            for kind in sorted(ev.fields.get("faults_by_kind", {})):
                bucket = faults_by_kind.setdefault(
                    kind, {"injected": 0, "retries": 0}
                )
                bucket["injected"] += ev.fields["faults_by_kind"][kind]
            for kind in sorted(ev.fields.get("retries_by_kind", {})):
                bucket = faults_by_kind.setdefault(
                    kind, {"injected": 0, "retries": 0}
                )
                bucket["retries"] += ev.fields["retries_by_kind"][kind]

    summary = {
        "schema": SCHEMA_VERSION,
        "events": len(events),
        "dropped": dropped,
        "wall_ns": wall_ns,
        "coverage": coverage,
        "spans": {name: by_name[name] for name in sorted(by_name)},
        "event_counts": {
            name: event_counts[name] for name in sorted(event_counts)
        },
        "counters": {name: counters[name] for name in sorted(counters)},
    }
    if faults_by_kind:
        summary["faults_by_kind"] = {
            kind: faults_by_kind[kind] for kind in sorted(faults_by_kind)
        }
    return summary


def render_summary(summary: dict) -> str:
    """Human-readable table for ``python -m repro trace summary``."""
    lines = []
    lines.append(
        f"trace summary (schema v{summary['schema']}): "
        f"{summary['events']} events, {summary['dropped']} dropped"
    )
    wall_ms = summary["wall_ns"] / 1e6
    lines.append(
        f"wall time {wall_ms:.3f} ms, "
        f"{summary['coverage'] * 100:.1f}% attributed to top-level spans"
    )
    if summary["spans"]:
        lines.append("")
        lines.append(f"{'span':<40} {'calls':>7} {'total ms':>12} {'self ms':>12}")
        for name in sorted(summary["spans"]):
            agg = summary["spans"][name]
            lines.append(
                f"{name:<40} {agg['calls']:>7} "
                f"{agg['total_ns'] / 1e6:>12.3f} {agg['self_ns'] / 1e6:>12.3f}"
            )
    if summary["event_counts"]:
        lines.append("")
        lines.append(f"{'event':<40} {'count':>7}")
        for name in sorted(summary["event_counts"]):
            lines.append(f"{name:<40} {summary['event_counts'][name]:>7}")
    if summary.get("faults_by_kind"):
        lines.append("")
        lines.append(f"{'fault kind':<16} {'injected':>9} {'retries':>9}")
        for kind in sorted(summary["faults_by_kind"]):
            bucket = summary["faults_by_kind"][kind]
            lines.append(
                f"{kind:<16} {bucket['injected']:>9} {bucket['retries']:>9}"
            )
    return "\n".join(lines)
