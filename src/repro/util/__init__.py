"""Small shared utilities: enumeration, reproducible RNG, table formatting.

These helpers are deliberately dependency-light; every other subpackage of
:mod:`repro` may import from here, but :mod:`repro.util` imports nothing from
the rest of the library.
"""

from repro.util.itertools2 import (
    mixed_radix_counter,
    product_grid,
    sample_distinct,
    take,
)
from repro.util.parallel import parmap, resolve_workers
from repro.util.rng import ReproducibleRNG, derive_seed
from repro.util.fmt import Table, format_si, format_pow

__all__ = [
    "mixed_radix_counter",
    "product_grid",
    "sample_distinct",
    "take",
    "parmap",
    "resolve_workers",
    "ReproducibleRNG",
    "derive_seed",
    "Table",
    "format_si",
    "format_pow",
]
