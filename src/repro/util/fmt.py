"""Plain-text table rendering for experiment and benchmark output.

The benchmark harness prints the same rows EXPERIMENTS.md records; this module
owns the formatting so every experiment's output looks the same and the bench
files stay focused on the science.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def format_si(value: float, digits: int = 3) -> str:
    """Format ``value`` with an SI suffix: 1234 -> '1.23k'.

    >>> format_si(1234)
    '1.23k'
    >>> format_si(0.5)
    '0.500'
    """
    if value == 0:
        return "0"
    suffixes = ["", "k", "M", "G", "T", "P", "E"]
    magnitude = 0
    v = abs(value)
    while v >= 1000 and magnitude < len(suffixes) - 1:
        v /= 1000.0
        magnitude += 1
    sign = "-" if value < 0 else ""
    return f"{sign}{v:.{digits}g}{suffixes[magnitude]}"


def format_pow(value: int, base: int = 2) -> str:
    """Render a huge positive integer as ``base^exponent`` (approximately).

    Exact-count experiments produce numbers like q^(n^2/2); printing them in
    positional notation is useless, so we print the exponent instead.

    >>> format_pow(1024)
    '2^10.0'
    """
    if value <= 0:
        return str(value)
    exponent = _log(value, base)
    return f"{base}^{exponent:.1f}"


def _log(value: int, base: int) -> float:
    """log_base(value) that survives ints larger than float range."""
    if value < (1 << 53):
        return math.log(value, base)
    bits = value.bit_length()
    # value = mantissa * 2^(bits-53) with mantissa in [2^52, 2^53)
    mantissa = value >> (bits - 53)
    return (math.log(mantissa, 2) + (bits - 53)) / math.log(base, 2)


def log2_big(value: int) -> float:
    """Accurate ``log2`` of an arbitrarily large positive integer."""
    if value <= 0:
        raise ValueError("value must be positive")
    return _log(value, 2)


def log2_or_zero(value: int) -> float:
    """``log2_big`` extended with ``log2_or_zero(0) == 0.0``.

    The display-layer convention for log-rank columns: a rank-0 matrix
    contributes a 0.0 bound row instead of a domain error.  Exact
    integer quantities (the rank itself) stay in the row next to this
    float — it exists for human-readable tables, never for arithmetic.
    """
    return log2_big(value) if value else 0.0


class Table:
    """Accumulate rows, render aligned plain text.

    >>> t = Table(["n", "bits"], title="demo")
    >>> t.add_row([3, 18])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    demo
    n | bits
    --+-----
    3 | 18
    """

    def __init__(self, columns: Sequence[str], title: str | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        """Append a row (one value per column; floats get 4 sig figs)."""
        row = [self._cell(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    def render(self) -> str:
        """The aligned plain-text table."""
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows), 1)
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)).rstrip()
        rule = "-+-".join("-" * w for w in widths)
        lines = [header, rule]
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        body = "\n".join(lines)
        return f"{self.title}\n{body}" if self.title else body

    def print(self) -> None:
        """Print the rendered table to stdout."""
        print(self.render())

    def as_dicts(self) -> list[dict[str, str]]:
        """Rows as column-name keyed dicts (for programmatic assertions)."""
        return [dict(zip(self.columns, row)) for row in self.rows]
