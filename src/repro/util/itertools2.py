"""Enumeration helpers used by the exhaustive truth-matrix builders.

The communication-complexity experiments enumerate every assignment of the
*free* entries of a matrix family.  Those assignments are naturally
mixed-radix numbers (each free entry ranges over ``[0, radix)`` for its own
radix), so the helpers here are phrased in terms of mixed-radix counting.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Sequence
from typing import TypeVar

T = TypeVar("T")


def mixed_radix_counter(radices: Sequence[int]) -> Iterator[tuple[int, ...]]:
    """Yield every tuple ``t`` with ``0 <= t[i] < radices[i]``.

    The *last* coordinate varies fastest (odometer order), matching the
    row-major enumeration order used by :mod:`repro.comm.truth_matrix`.

    >>> list(mixed_radix_counter([2, 3]))
    [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    An empty radix list yields the single empty tuple (the unique assignment
    of zero variables), and any radix of zero yields nothing.
    """
    for r in radices:
        if r < 0:
            raise ValueError(f"radices must be non-negative, got {r}")
    yield from itertools.product(*(range(r) for r in radices))


def mixed_radix_decode(index: int, radices: Sequence[int]) -> tuple[int, ...]:
    """Decode ``index`` into the ``index``-th tuple of :func:`mixed_radix_counter`.

    This lets samplers address a random cell of an astronomically large
    enumeration without materializing it.
    """
    if index < 0:
        raise ValueError("index must be non-negative")
    digits = [0] * len(radices)
    for pos in range(len(radices) - 1, -1, -1):
        r = radices[pos]
        if r <= 0:
            raise ValueError("all radices must be positive to decode")
        index, digits[pos] = divmod(index, r)
    if index:
        raise ValueError("index out of range for the given radices")
    return tuple(digits)


def mixed_radix_encode(digits: Sequence[int], radices: Sequence[int]) -> int:
    """Inverse of :func:`mixed_radix_decode`."""
    if len(digits) != len(radices):
        raise ValueError("digits and radices must have equal length")
    value = 0
    for d, r in zip(digits, radices):
        if not 0 <= d < r:
            raise ValueError(f"digit {d} out of range for radix {r}")
        value = value * r + d
    return value


def mixed_radix_size(radices: Sequence[int]) -> int:
    """Number of tuples :func:`mixed_radix_counter` yields (exact big int)."""
    size = 1
    for r in radices:
        size *= r
    return size


def product_grid(**axes: Sequence[object]) -> Iterator[dict[str, object]]:
    """Cartesian product of named parameter axes, as dicts.

    Used by benchmark sweeps:

    >>> rows = list(product_grid(n=[3, 5], k=[1, 2]))
    >>> rows[0] == {"n": 3, "k": 1}
    True
    >>> len(rows)
    4
    """
    names = list(axes)
    for combo in itertools.product(*(axes[name] for name in names)):
        yield dict(zip(names, combo))


def take(iterable: Iterable[T], n: int) -> list[T]:
    """First ``n`` items of ``iterable`` as a list (fewer if it is shorter)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return list(itertools.islice(iterable, n))


def sample_distinct(
    rng,
    universe_size: int,
    count: int,
) -> list[int]:
    """``count`` distinct integers drawn uniformly from ``range(universe_size)``.

    Works for universes far too large for :func:`random.sample`'s population
    materialization because it only ever stores the chosen set.  ``rng`` must
    expose ``randrange`` (e.g. :class:`random.Random` or
    :class:`repro.util.rng.ReproducibleRNG`).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count > universe_size:
        raise ValueError(
            f"cannot sample {count} distinct values from a universe of {universe_size}"
        )
    # Dense case: a partial Fisher-Yates over an explicit list is cheaper.
    if universe_size <= 4 * count and universe_size <= 10_000_000:
        pool = list(range(universe_size))
        for i in range(count):
            j = rng.randrange(i, universe_size)
            pool[i], pool[j] = pool[j], pool[i]
        return pool[:count]
    chosen: set[int] = set()
    while len(chosen) < count:
        chosen.add(rng.randrange(universe_size))
    return sorted(chosen)


def chunked(iterable: Iterable[T], size: int) -> Iterator[list[T]]:
    """Yield successive lists of at most ``size`` items."""
    if size <= 0:
        raise ValueError("size must be positive")
    it = iter(iterable)
    while chunk := list(itertools.islice(it, size)):
        yield chunk


def pairs(items: Sequence[T]) -> Iterator[tuple[T, T]]:
    """All unordered pairs ``(items[i], items[j])`` with ``i < j``."""
    yield from itertools.combinations(items, 2)
