"""Deterministic process-pool fan-out for the experiment sweeps.

The rule that makes parallelism safe in this codebase is **seed-per-task**:
a task never draws randomness from shared RNG state, it derives its own
stream from ``derive_seed(root, *path)`` where the path names the task's
position in the sweep (row index, run index, ...).  Then the result of a
sweep is a pure function of the root seed and the task list — bit-identical
at any worker count, on any machine, under any scheduling, because the pool
only changes *where* tasks run, never *what* they compute.

:func:`parmap` is the one entry point: order-preserving, chunked, and
serial (no pool, no pickling) when one worker is resolved — so the default
behavior of every caller is exactly the old sequential code path.

Worker-count resolution (:func:`resolve_workers`): an explicit argument
wins, then the ``REPRO_WORKERS`` environment variable, then 1.  The CLI
``--workers`` flags feed the explicit argument.

Caveats worth knowing:

* task functions must be module-level (picklable) and tasks/results must
  pickle; keep them plain tuples and dataclasses;
* :mod:`repro.obs` counters are process-local — a worker's counts die with
  it unless the task folds them into its return value.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Callable, Iterable, Sequence
from pathlib import Path
from typing import TypeVar

from repro.trace import core as trace

T = TypeVar("T")
R = TypeVar("R")

_ENV_VAR = "REPRO_WORKERS"


class _TracedShard:
    """Picklable wrapper adding a ``parmap.shard`` span around one task.

    Used only when tracing is active: workers inherit ``REPRO_TRACE_DIR``
    through the environment, so a pool worker's shard spans land in its own
    per-process trace file, flushed after every task because worker
    processes never run atexit hooks (obs counters stay process-local, and
    so do trace rings — the same contract).
    """

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, indexed):
        index, task = indexed
        with trace.span("parmap.shard", index=index):
            result = self.fn(task)
        # Pool workers exit through os._exit, which skips atexit hooks —
        # flush after every task so an env-activated worker tracer actually
        # reaches its per-process file (atomic full rewrite, so repeating
        # it per task just keeps the file current).
        tracer = trace.active_tracer()
        if tracer is not None and tracer.sink_dir is not None:
            tracer.flush()
        return result


def resolve_workers(workers: int | None = None) -> int:
    """The effective worker count: explicit arg > ``REPRO_WORKERS`` env > 1.

    Values below 1 are clamped to 1; a malformed environment value raises
    (better loud than silently serial).
    """
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get(_ENV_VAR)
    if env is None or not env.strip():
        return 1
    try:
        return max(1, int(env))
    except ValueError:
        raise ValueError(
            f"{_ENV_VAR} must be an integer, got {env!r}"
        ) from None


class SharedBound:
    """A cross-process monotone-min integer, carried by a small file.

    The parallel branch-and-bound drivers (see
    :mod:`repro.comm.exhaustive`) hand every pool worker the same path;
    whenever a worker *witnesses* a cost it calls :meth:`publish`, and
    other workers fold :meth:`get` into their pruning incumbent.  The
    protocol is deliberately loose: reads may be stale and concurrent
    publishes may briefly regress toward the larger value — a stale or
    missing bound only weakens pruning, it can never change a computed
    result, because callers are required to publish *witnessed* values
    only (costs they actually achieved and will themselves return).

    Writes are atomic (pid+tid-named temp file + ``os.replace``) and
    re-checked a few rounds so the file converges to the minimum;
    every filesystem error degrades to "no bound", never to a raise.
    """

    _ROUNDS = 8

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    def get(self) -> int | None:
        """The smallest published value, or None (missing/corrupt file)."""
        try:
            text = self.path.read_text(encoding="ascii")
            return int(text)
        except (OSError, ValueError):
            return None

    def publish(self, value: int) -> int:
        """Merge ``value`` in; returns the best value known afterwards."""
        value = int(value)
        tmp = self.path.with_name(
            f"{self.path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        for _ in range(self._ROUNDS):
            current = self.get()
            if current is not None and current <= value:
                return current
            try:
                tmp.write_text(str(value), encoding="ascii")
                os.replace(tmp, self.path)
            except OSError:
                return value if current is None else min(value, current)
            # A concurrent replace can land after ours with a larger
            # value; re-read and re-assert until the file agrees.
            seen = self.get()
            if seen is not None and seen <= value:
                return seen
        return value


def parmap(
    fn: Callable[[T], R],
    tasks: Iterable[T],
    workers: int | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """``[fn(t) for t in tasks]``, fanned out over a process pool.

    Order-preserving: result ``i`` always corresponds to task ``i``.  With
    one resolved worker (the default) this *is* the list comprehension — no
    pool, no pickling, no subprocess, so tests and small runs pay nothing.

    Determinism contract: ``fn`` must derive any randomness it needs from
    the task value itself (see the module docstring); under that contract
    the output is bit-identical for every ``workers`` setting.

    ``chunksize`` tunes pickling overhead against tail latency: the
    default (~4 chunks per worker) suits many cheap uniform tasks, but
    heavy uneven tasks — exact D(f) searches, truth-matrix blocks —
    should pass ``chunksize=1`` so one slow task never strands a queue of
    finished work behind it.
    """
    task_list: Sequence[T] = list(tasks)
    n_workers = resolve_workers(workers)
    tracing = trace.active_tracer() is not None
    if n_workers == 1 or len(task_list) <= 1:
        if not tracing:
            return [fn(t) for t in task_list]
        with trace.span("parmap", tasks=len(task_list), workers=1):
            out: list[R] = []
            for index, task in enumerate(task_list):
                with trace.span("parmap.shard", index=index):
                    out.append(fn(task))
            return out
    # Import here so serial users never pay for the machinery.
    from concurrent.futures import ProcessPoolExecutor

    n_workers = min(n_workers, len(task_list))
    if chunksize is None:
        # Aim for ~4 chunks per worker: amortizes pickling without leaving
        # stragglers at the tail of uneven task costs.
        chunksize = max(1, len(task_list) // (4 * n_workers))
    with trace.span("parmap", tasks=len(task_list), workers=n_workers):
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            if tracing:
                # Shard spans record in each worker's own tracer (activated
                # by the inherited REPRO_TRACE_DIR, if any); the wrapper
                # changes nothing about what fn computes.
                shard = _TracedShard(fn)
                return list(
                    pool.map(
                        shard, list(enumerate(task_list)), chunksize=chunksize
                    )
                )
            return list(pool.map(fn, task_list, chunksize=chunksize))
