"""Reproducible random number generation.

Every randomized experiment in the benchmark harness must be replayable from
a single integer seed, so instead of module-level :mod:`random` state we pass
:class:`ReproducibleRNG` instances explicitly.  The class is a thin subclass
of :class:`random.Random` adding domain-specific draws (k-bit matrix entries,
random primes are in :mod:`repro.exact.modular`) and deterministic seed
derivation for spawning independent sub-streams.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Sequence


def derive_seed(root_seed: int, *path: object) -> int:
    """Derive a child seed from ``root_seed`` and a path of labels.

    Uses SHA-256 over the textual path, so children are independent of each
    other and stable across Python versions (unlike ``hash()``).

    >>> derive_seed(1, "agents", 0) != derive_seed(1, "agents", 1)
    True
    """
    text = repr((root_seed, *path)).encode()
    return int.from_bytes(hashlib.sha256(text).digest()[:8], "big")


class ReproducibleRNG(random.Random):
    """A seeded RNG with helpers for the matrix experiments.

    >>> rng = ReproducibleRNG(42)
    >>> e = rng.kbit_entry(3)
    >>> 0 <= e <= 7
    True
    """

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._root_seed = seed

    @property
    def root_seed(self) -> int:
        """The seed this stream was created with."""
        return self._root_seed

    def spawn(self, *path: object) -> "ReproducibleRNG":
        """An independent child stream labelled by ``path``."""
        return ReproducibleRNG(derive_seed(self._root_seed, *path))

    # ------------------------------------------------------------------
    # Domain draws
    # ------------------------------------------------------------------
    def kbit_entry(self, k: int) -> int:
        """A uniform integer in ``[0, 2**k - 1]`` (the paper's entry range)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return self.randrange(1 << k)

    def kbit_matrix(self, rows: int, cols: int, k: int) -> list[list[int]]:
        """A ``rows x cols`` matrix of independent k-bit entries."""
        return [[self.kbit_entry(k) for _ in range(cols)] for _ in range(rows)]

    def entry_below(self, q: int) -> int:
        """A uniform integer in ``[0, q - 1]`` (Fig. 3 restricts C, D, E, y so)."""
        if q < 1:
            raise ValueError("q must be >= 1")
        return self.randrange(q)

    def matrix_below(self, rows: int, cols: int, q: int) -> list[list[int]]:
        """A ``rows x cols`` matrix of independent entries in ``[0, q - 1]``."""
        return [[self.entry_below(q) for _ in range(cols)] for _ in range(rows)]

    def permutation(self, n: int) -> list[int]:
        """A uniform permutation of ``range(n)`` as an image list."""
        perm = list(range(n))
        self.shuffle(perm)
        return perm

    def bit_vector(self, n: int) -> list[int]:
        """A uniform vector of ``n`` bits."""
        return [self.randrange(2) for _ in range(n)]

    def choice_seq(self, seq: Sequence, count: int) -> list:
        """``count`` independent uniform choices from ``seq`` (with replacement)."""
        return [self.choice(seq) for _ in range(count)]
