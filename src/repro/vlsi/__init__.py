"""VLSI area–time substrate: simulated chips, Thompson cuts, tradeoffs.

The paper's motivation ("In the design of VLSI systems … this complexity
dictates an area × time² lower bound") made executable:

* :mod:`repro.vlsi.layout` — grid chips with input ports (row-major,
  boundary-only, scattered, column-block placements);
* :mod:`repro.vlsi.cuts` — Thompson's even bisection found constructively;
  a cut induces an input :class:`~repro.comm.partition.Partition`, turning
  any chip into a two-agent protocol;
* :mod:`repro.vlsi.tradeoffs` — AT² = Ω(k²n⁴), A·T = Ω(k^{3/2}n³),
  T = Ω(k^{1/2}n) calculators with shape-exponent verification;
* :mod:`repro.vlsi.chazelle_monier` — the 1985 baseline model and the
  paper's improvement table.
"""

from repro.vlsi.layout import (
    ChipLayout,
    boundary_layout,
    column_blocks_layout,
    row_major_layout,
    scattered_layout,
)
from repro.vlsi.cuts import (
    Cut,
    best_time_bound_over_area,
    cut_bound_on_time,
    thompson_cut,
)
from repro.vlsi.chip_sim import (
    FunnelRun,
    measured_vs_bound,
    simulate_funnel,
    sweep_heights,
)
from repro.vlsi.tradeoffs import VLSIBounds, empirical_exponent, shape_exponents
from repro.vlsi.chazelle_monier import (
    ChazelleMonierBounds,
    Comparison,
    boundary_area_penalty,
    model_assumptions,
)

__all__ = [
    "ChipLayout",
    "boundary_layout",
    "column_blocks_layout",
    "row_major_layout",
    "scattered_layout",
    "Cut",
    "best_time_bound_over_area",
    "cut_bound_on_time",
    "thompson_cut",
    "FunnelRun",
    "measured_vs_bound",
    "simulate_funnel",
    "sweep_heights",
    "VLSIBounds",
    "empirical_exponent",
    "shape_exponents",
    "ChazelleMonierBounds",
    "Comparison",
    "boundary_area_penalty",
    "model_assumptions",
]
