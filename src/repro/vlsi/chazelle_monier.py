"""The Chazelle–Monier baseline and the paper's comparison against it.

Chazelle & Monier (1985) bound the VLSI complexity of the determinant in a
*different* model: wire delay proportional to wire length, and all input
ports on the chip boundary.  Their results for n×n determinant:

* T = Ω(n);
* A·T = Ω(n²)  (and T = Ω(I^{1/2}) in their model).

The paper's Theorem 1.1 sharpens both, *without* any layout assumptions:

* T = Ω(k^{1/2} n)          (vs Ω(n) — better by √k);
* A·T = Ω(k^{3/2} n³)       (vs Ω(n²) — better by k^{3/2}·n).

This module packages both bound sets so the benchmark prints the comparison
table, and implements the boundary-port consequence (perimeter ≥ I, hence
A = Ω(I²) for boundary chips) that their model implies on our simulated
layouts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vlsi.layout import ChipLayout, boundary_layout
from repro.vlsi.tradeoffs import VLSIBounds


@dataclass(frozen=True)
class ChazelleMonierBounds:
    """Their published bounds for the n×n determinant (k-independent)."""

    n: int
    k: int

    def time(self) -> float:
        """T = Ω(n)."""
        return float(self.n)

    def at(self) -> float:
        """A·T = Ω(n²)."""
        return float(self.n**2)

    def time_sqrt_input(self) -> float:
        """Their T = Ω(I^{1/2}) form, I = k(2n)²: gives Ω(k^{1/2} n) too —
        but only under their boundary/wire-delay model assumptions."""
        return (self.k * (2 * self.n) ** 2) ** 0.5


@dataclass(frozen=True)
class Comparison:
    """One row of the paper's comparison: this work vs Chazelle–Monier."""

    n: int
    k: int

    def rows(self) -> list[tuple[str, float, float, float]]:
        """(bound, ours, theirs, improvement factor)."""
        ours = VLSIBounds(self.n, self.k)
        theirs = ChazelleMonierBounds(self.n, self.k)
        time_ours = ours.min_time()
        time_theirs = theirs.time()
        at_ours = ours.at()
        at_theirs = theirs.at()
        return [
            ("T", time_ours, time_theirs, time_ours / time_theirs),
            ("A*T", at_ours, at_theirs, at_ours / at_theirs),
        ]


def boundary_area_penalty(total_bits: int) -> tuple[int, float]:
    """Under the boundary-ports assumption the perimeter must hold all I
    ports, so the side is Ω(I) and the area Ω(I²).

    Returns (area of the simulated boundary chip, area / I²) — the constant
    should sit near 1/16 (perimeter ≈ 4·side)."""
    chip: ChipLayout = boundary_layout(total_bits)
    return chip.area, chip.area / total_bits**2


def model_assumptions() -> dict[str, list[str]]:
    """The assumption sets, side by side (printed by the benchmark)."""
    return {
        "chazelle_monier": [
            "wire delay proportional to wire length",
            "all input ports on the chip boundary",
        ],
        "chu_schnitger": [
            "unit wire delay (standard Thompson model)",
            "no port placement assumptions",
            "no layout assumptions at all (communication bound)",
        ],
    }
