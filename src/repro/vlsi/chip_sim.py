"""A cycle-accurate toy chip: measure an actual (A, T) point.

The tradeoff calculators in :mod:`repro.vlsi.tradeoffs` are lower bounds;
this module builds a matching *upper-bound artifact* — a concrete simulated
design whose measured area and cycle count realize a point near the bound,
so the benchmark can print measured-vs-bound on the same axes.

Design (deliberately simple): a **funnel chip**.  Input bits sit in
registers on a W×H grid; every cycle, each register shifts its queued bits
one cell toward the right edge along its row (W-wide bus of 1-bit lanes,
i.e. ``H`` wires cross every vertical line); a decision column on the right
edge absorbs arriving bits.  When all bits have crossed, the decision logic
(assumed combinational, as in Thompson's model where only communication is
charged) outputs the answer.

Measured time = the exact number of shift cycles until the last bit lands.
For a W×H funnel holding I bits this is ``W - 1 + max-queue-drain`` — the
simulation computes it by actually moving the bits, and the A·T product can
then be swept against the theory: widening the chip (more area) shortens
the drain (less time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vlsi.layout import ChipLayout, row_major_layout


@dataclass(frozen=True)
class FunnelRun:
    """One simulated execution of the funnel chip."""

    width: int
    height: int
    input_bits: int
    cycles: int

    @property
    def area(self) -> int:
        """width x height."""
        return self.width * self.height

    @property
    def at_product(self) -> int:
        """A x T."""
        return self.area * self.cycles

    @property
    def at2_product(self) -> int:
        """A x T^2."""
        return self.area * self.cycles * self.cycles


def simulate_funnel(total_bits: int, height: int) -> FunnelRun:
    """Run the funnel chip cycle by cycle and count until drained.

    ``height`` is the number of parallel lanes (wires crossing any vertical
    cut); the width is whatever is needed to seat all bits.  The simulation
    literally moves bit tokens; the cycle count is observed, not derived.
    """
    if total_bits < 1 or height < 1:
        raise ValueError("need at least one bit and one lane")
    width = max(2, -(-total_bits // height))  # ceil division, min 2 columns
    # queue[y][x] = number of bit tokens currently at cell (x, y).
    queue = [[0] * width for _ in range(height)]
    seated = 0
    for index in range(total_bits):
        x = index % width
        y = (index // width) % height
        queue[y][x] += 1
        seated += 1
    assert seated == total_bits
    arrived = 0
    cycles = 0
    # Each cycle: the rightmost column's tokens are absorbed (one per lane
    # per cycle — a 1-bit-per-wire channel), every other token moves right.
    while arrived < total_bits:
        cycles += 1
        for y in range(height):
            if queue[y][width - 1] > 0:
                queue[y][width - 1] -= 1
                arrived += 1
        for y in range(height):
            # Shift one token per cell toward the right (bus discipline:
            # a cell forwards at most one token per cycle).
            for x in range(width - 2, -1, -1):
                if queue[y][x] > 0 and cycles >= 1:
                    queue[y][x] -= 1
                    queue[y][x + 1] += 1
        if cycles > 10 * (total_bits + width):
            raise AssertionError("funnel failed to drain — simulation bug")
    return FunnelRun(width, height, total_bits, cycles)


def sweep_heights(total_bits: int, heights) -> list[FunnelRun]:
    """The area–time sweep: taller chips (more wires) drain faster."""
    return [simulate_funnel(total_bits, h) for h in heights]


def measured_vs_bound(total_bits: int, comm_lower_bound: float, heights) -> list[dict]:
    """For each design point: measured A, T, A·T² alongside the
    Thompson-style floor ``T ≥ comm / (wires at the cut)`` (wires = height)."""
    rows = []
    for run in sweep_heights(total_bits, heights):
        floor = comm_lower_bound / run.height
        rows.append(
            {
                "height": run.height,
                "area": run.area,
                "cycles": run.cycles,
                "time_floor": floor,
                "at2": run.at2_product,
                "respects_floor": run.cycles >= floor - 1e-9,
            }
        )
    return rows


def layout_of(run: FunnelRun) -> ChipLayout:
    """The funnel's port layout (for feeding the cut machinery)."""
    return row_major_layout(run.input_bits, width=run.width)
