"""Thompson's bisection, constructively, on simulated layouts.

The claim behind every AT² bound: *some* near-vertical cut splits the input
ports evenly while severing only O(√area) wires.  :func:`thompson_cut` finds
it by the classic sweep: scan cut positions left to right; the left-side
port count goes from 0 to I, so some column boundary crosses I/2 — and if it
overshoots within a single column, jog the cut once inside that column
(severing ≤ height + 1 edges instead of height).

The produced :class:`Cut` converts directly into an input
:class:`~repro.comm.partition.Partition`, which is exactly how a chip
becomes a two-agent protocol: T ≥ Comm(f, π_cut) / wires_cut.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.partition import Partition
from repro.vlsi.layout import ChipLayout


@dataclass(frozen=True)
class Cut:
    """A once-jogged vertical cut of a chip.

    Attributes:
        column: the cut runs along the left boundary of this column…
        jog_row: …except below ``jog_row`` (exclusive), where it shifts one
            column right.  ``jog_row = 0`` means a straight cut.
        left_ports: bit positions whose port lies left of the cut.
        wires_cut: grid edges severed = height (straight) or height + 1.
    """

    layout: ChipLayout
    column: int
    jog_row: int
    left_ports: frozenset[int]
    wires_cut: int

    def partition(self) -> Partition:
        """The induced input partition: agent 0 = left side of the cut."""
        return Partition(self.layout.num_inputs, self.left_ports)

    def imbalance(self) -> int:
        """| #left − #right | — 0 or 1 for a legal Thompson cut."""
        left = len(self.left_ports)
        return abs(2 * left - self.layout.num_inputs)


def _is_left(x: int, y: int, column: int, jog_row: int) -> bool:
    """Is cell (x, y) on the left side of the jogged cut?"""
    boundary = column + (1 if y < jog_row else 0)
    return x < boundary


def thompson_cut(layout: ChipLayout) -> Cut:
    """An exactly-even (±1 port) cut severing ≤ min-dimension + 1 wires."""
    chip = layout.oriented_tall()
    total = chip.num_inputs
    target = total // 2
    # Count ports per column, and per (column, row) for the jog.
    per_column = [0] * chip.width
    for x, _ in chip.ports:
        per_column[x] += 1
    running = 0
    for column in range(chip.width + 1):
        next_running = running + (per_column[column] if column < chip.width else 0)
        if running == target:
            left = frozenset(
                i for i, (x, y) in enumerate(chip.ports) if _is_left(x, y, column, 0)
            )
            return Cut(chip, column, 0, left, chip.height)
        if running < target < next_running:
            # Jog inside this column: sweep rows until the count hits target.
            need = target - running
            count = 0
            for jog_row in range(chip.height + 1):
                if count == need:
                    left = frozenset(
                        i
                        for i, (x, y) in enumerate(chip.ports)
                        if _is_left(x, y, column, jog_row)
                    )
                    return Cut(chip, column, jog_row, left, chip.height + 1)
                if jog_row < chip.height:
                    count += sum(
                        1
                        for (x, y) in chip.ports
                        if x == column and y == jog_row
                    )
            # Falls through only when several ports share one cell straddling
            # the target; accept the closest achievable split there.
            left = frozenset(
                i
                for i, (x, y) in enumerate(chip.ports)
                if _is_left(x, y, column + 1, 0)
            )
            return Cut(chip, column + 1, 0, left, chip.height)
        running = next_running
    raise AssertionError("sweep must find a crossing — unreachable")


def cut_bound_on_time(comm_lower_bound_bits: float, cut: Cut) -> float:
    """T ≥ Comm(f, π_cut) / wires_cut — Thompson's inequality, one cut."""
    if comm_lower_bound_bits < 0:
        raise ValueError("communication bound cannot be negative")
    return comm_lower_bound_bits / cut.wires_cut


def best_time_bound_over_area(comm_lower_bound_bits: float, area: int) -> float:
    """The layout-free form: any area-A chip has a cut with ≤ √A + 1 wires,
    so T ≥ Comm / (√A + 1)."""
    if area < 1:
        raise ValueError("area must be positive")
    return comm_lower_bound_bits / (area**0.5 + 1)
