"""Simulated VLSI chip layouts (Thompson's grid model).

The paper's area–time corollaries rest on Thompson (1979): a chip computing
f in a two-dimensional layout of area A can be cut into two parts receiving
about half the input bits each, with only O(√A) wires crossing the cut —
hence T ≥ Comm(f)/O(√A).  We *simulate* the hardware side (the substitution
for real chips): a chip is a W×H grid of unit cells; input bits are assigned
to port cells; wires run along grid edges.  Cutting along a (possibly once-
jogged) vertical line severs at most ``height + 1`` edges, and a jog
position always exists that splits the ports exactly evenly — which the cut
search below finds constructively rather than by citation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.comm.partition import Partition


@dataclass(frozen=True)
class ChipLayout:
    """A rectangular grid chip with input ports.

    Attributes:
        width, height: grid dimensions; area = width · height.
        ports: ports[bit position] = (x, y) cell holding that input bit.
            Multiple bits may share a cell (a cell can hold a register of
            several bits); the cut argument only needs positions.
    """

    width: int
    height: int
    ports: tuple[tuple[int, int], ...]

    def __post_init__(self):
        if self.width < 1 or self.height < 1:
            raise ValueError("chip dimensions must be positive")
        for x, y in self.ports:
            if not (0 <= x < self.width and 0 <= y < self.height):
                raise ValueError(f"port cell ({x}, {y}) outside the chip")

    @property
    def area(self) -> int:
        """width x height."""
        return self.width * self.height

    @property
    def num_inputs(self) -> int:
        """Number of input bits placed on the chip."""
        return len(self.ports)

    def oriented_tall(self) -> "ChipLayout":
        """Rotate so height ≤ width (cut across the shorter dimension)."""
        if self.height <= self.width:
            return self
        return ChipLayout(
            self.height, self.width, tuple((y, x) for x, y in self.ports)
        )


# ----------------------------------------------------------------------
# Placement strategies
# ----------------------------------------------------------------------
def row_major_layout(total_bits: int, width: int | None = None) -> ChipLayout:
    """Bits packed row-major into a near-square grid (the generic chip)."""
    if total_bits < 1:
        raise ValueError("need at least one input bit")
    if width is None:
        width = max(1, int(total_bits**0.5))
    height = (total_bits + width - 1) // width
    ports = tuple((i % width, i // width) for i in range(total_bits))
    return ChipLayout(width, height, ports)


def boundary_layout(total_bits: int) -> ChipLayout:
    """All ports on the chip boundary — Chazelle–Monier's assumption.

    The perimeter must hold every port, so the side length grows linearly in
    the bit count (area Θ(I²) unless the interior is used for logic only).
    """
    if total_bits < 1:
        raise ValueError("need at least one input bit")
    side = max(2, (total_bits + 3) // 4 + 1)
    cells: list[tuple[int, int]] = []
    for x in range(side):
        cells.append((x, 0))
    for y in range(1, side):
        cells.append((side - 1, y))
    for x in range(side - 2, -1, -1):
        cells.append((x, side - 1))
    for y in range(side - 2, 0, -1):
        cells.append((0, y))
    if total_bits > len(cells):
        raise ValueError("perimeter too short — widen the chip")
    return ChipLayout(side, side, tuple(cells[:total_bits]))


def scattered_layout(rng, total_bits: int, width: int, height: int) -> ChipLayout:
    """Adversarially scattered ports on a fixed-size chip."""
    if width * height < 1:
        raise ValueError("chip too small")
    ports = tuple(
        (rng.randrange(width), rng.randrange(height)) for _ in range(total_bits)
    )
    return ChipLayout(width, height, ports)


def column_blocks_layout(total_bits: int, columns: int) -> ChipLayout:
    """Bits grouped into vertical blocks (models column-of-the-matrix
    locality — the layout a π₀-style design would choose)."""
    if columns < 1:
        raise ValueError("need at least one column block")
    per_column = (total_bits + columns - 1) // columns
    ports = tuple(
        (i // per_column, i % per_column) for i in range(total_bits)
    )
    return ChipLayout(columns, per_column, ports)
