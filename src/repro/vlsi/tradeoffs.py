"""The paper's VLSI corollaries: AT², A·T and T bounds for singularity.

From Comm(singularity) = Ω(k n²) (Theorem 1.1) plus the standard chip
inequalities:

* Thompson (1979):  A·T² = Ω(Comm²) = Ω(k² n⁴);
* Brent–Kung / Vuillemin / Yao:  A = Ω(I) = Ω(k n²)  (the chip must touch
  every input bit);
* combining ("AT^{2a} = Ω(I^{1+a})" with a interpolating):  minimizing A·T
  under both constraints gives  A·T = Ω(k^{3/2} n³);
* and at minimal area,  T = Ω(√(Comm²/A)) = Ω(k^{1/2} n).

Everything is a plain calculator over (n, k) with the Ω-constants carried
explicitly (default 1), so benchmark tables can print the paper's
comparison against Chazelle–Monier verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VLSIBounds:
    """All derived chip bounds for one (n, k) and one Ω-constant."""

    n: int
    k: int
    comm_constant: float = 1.0  # Comm >= comm_constant * k * n^2

    @property
    def comm_bits(self) -> float:
        """The Theorem 1.1 information bound the chip must move."""
        return self.comm_constant * self.k * self.n**2

    @property
    def input_bits(self) -> int:
        """I = k · (2n)² — every input bit must be read."""
        return self.k * (2 * self.n) ** 2

    def at2(self) -> float:
        """A·T² ≥ Comm² = Ω(k² n⁴)."""
        return self.comm_bits**2

    def area(self) -> float:
        """A ≥ I = Ω(k n²)."""
        return float(self.input_bits)

    def at(self) -> float:
        """A·T ≥ Comm · √I = Ω(k^{3/2} n³).

        Derivation: T ≥ Comm/√A (Thompson), so A·T ≥ Comm·√A ≥ Comm·√I.
        """
        return self.comm_bits * self.input_bits**0.5

    def time_at_area(self, area: float) -> float:
        """T ≥ Comm/√A for a chip of the given area."""
        if area < self.input_bits:
            raise ValueError("area below the Ω(I) floor is impossible")
        return self.comm_bits / area**0.5

    def min_time(self) -> float:
        """T at the minimum legal area: Ω(k^{1/2} n)."""
        return self.time_at_area(self.area())

    def at_general_alpha(self, alpha: float) -> float:
        """The interpolated family A·T^{2α} = Ω(I^{1+α}), 0 ≤ α ≤ 1.

        α = 0 recovers A = Ω(I); α = 1 gives A·T² = Ω(I²) (with I in place
        of Comm — the weaker generic form the introduction quotes).
        """
        if not 0 <= alpha <= 1:
            raise ValueError("alpha must lie in [0, 1]")
        return float(self.input_bits) ** (1 + alpha)


def shape_exponents() -> dict[str, tuple[float, float]]:
    """The (k-exponent, n-exponent) of each bound — the 'shape' the
    reproduction must match (asserted by tests via finite differencing)."""
    return {
        "comm": (1.0, 2.0),
        "at2": (2.0, 4.0),
        "area": (1.0, 2.0),
        "at": (1.5, 3.0),
        "min_time": (0.5, 1.0),
    }


def empirical_exponent(values: list[float], params: list[float]) -> float:
    """Least-squares slope of log(value) vs log(param) — how benchmarks
    verify the exponents in :func:`shape_exponents` from computed tables."""
    import math

    if len(values) != len(params) or len(values) < 2:
        raise ValueError("need at least two matched samples")
    xs = [math.log(p) for p in params]
    ys = [math.log(v) for v in values]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den
