"""Tests for the prior-work baseline calculators."""

import pytest

from repro.baselines.jaja_kumar import (
    decision_from_solver,
    decision_matches_ground_truth,
    output_bits_of_solving,
    solving_bound_bits,
)
from repro.baselines.lin_wu import (
    matmul_cc_bound_bits,
    rank_deficit,
    rank_half_instance,
    why_it_stops_at_half,
)
from repro.baselines.lovasz_saks import (
    find_meet_closure_failure,
    fixed_partition_bound_bits,
    join_closed,
    lattice_size,
    meet_closure_failure_example,
    unrestricted_bound_bits,
)
from repro.baselines.savage import (
    lin_wu_bound_bits,
    output_counting_argument,
    savage_bound_bits,
    sharpening_factor,
)
from repro.baselines.vuillemin import (
    best_known_identity_embedding_bits,
    embedding_is_correct,
    embedding_matrix,
    gap_to_theorem,
    transitivity_bound,
)
from repro.exact.matrix import Matrix
from repro.exact.rank import is_singular, rank
from repro.exact.vector import Vector
from repro.util.rng import ReproducibleRNG


class TestVuillemin:
    def test_transitivity_bound(self):
        assert transitivity_bound(10) == 100.0
        with pytest.raises(ValueError):
            transitivity_bound(-1)

    def test_embedding_size(self):
        assert best_known_identity_embedding_bits(7, 2) == 14

    def test_embedding_completeness(self):
        # Equal columns force singularity.
        x = [1, 2, 3, 4]
        assert embedding_is_correct(x, x)
        assert is_singular(embedding_matrix(x, x))

    def test_embedding_one_sidedness(self):
        # The obstruction: unequal yet dependent columns are also singular.
        x = [1, 2, 3, 4]
        y = [2, 4, 6, 8]
        assert x != y
        assert is_singular(embedding_matrix(x, y))

    def test_gap_is_quadratic_in_n(self):
        assert gap_to_theorem(100, 4) == pytest.approx(100.0**2)

    def test_embedding_validation(self):
        with pytest.raises(ValueError):
            embedding_matrix([1, 2], [1, 2])


class TestLinWuSavage:
    def test_bound_values(self):
        assert matmul_cc_bound_bits(10, 3) == 300.0
        assert savage_bound_bits(10) == 100.0
        assert lin_wu_bound_bits(10, 3) == 300.0
        assert sharpening_factor(10, 3) == 3.0
        assert output_counting_argument(10) == 100

    def test_rank_deficit_zero_iff_product(self):
        rng = ReproducibleRNG(0)
        a = Matrix.random_kbit(rng, 3, 3, 2)
        b = Matrix.random_kbit(rng, 3, 3, 2)
        assert rank_deficit(a, b, a @ b) == 0
        wrong = (a @ b).with_entry(0, 0, (a @ b)[0, 0] + 1)
        assert rank_deficit(a, b, wrong) >= 1

    def test_rank_half_instance_range(self):
        rng = ReproducibleRNG(1)
        a = Matrix.random_kbit(rng, 3, 3, 2)
        b = Matrix.random_kbit(rng, 3, 3, 2)
        c = Matrix.random_kbit(rng, 3, 3, 2)
        assert 3 <= rank(rank_half_instance(a, b, c)) <= 6

    def test_explanation_mentions_the_gap(self):
        text = why_it_stops_at_half(5)
        assert "rank" in text and "Theorem 1.1" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            savage_bound_bits(0)
        with pytest.raises(ValueError):
            lin_wu_bound_bits(1, 0)


class TestJaJaKumar:
    def test_bound_values(self):
        assert solving_bound_bits(10, 2) == 200.0
        assert output_bits_of_solving(10, 2) == 20

    def test_solver_gives_decision(self):
        rng = ReproducibleRNG(2)
        for _ in range(10):
            a = Matrix.random_kbit(rng, 3, 3, 2)
            b = Vector([rng.kbit_entry(2) for _ in range(3)])
            assert decision_matches_ground_truth(a, b)

    def test_unsolvable_case(self):
        a = Matrix([[1, 1], [1, 1]])
        assert decision_from_solver(a, Vector([0, 1])) is False


class TestLovaszSaks:
    def test_lattice_size_and_bound(self):
        xs = [Vector([1, 0]), Vector([0, 1])]
        assert lattice_size(xs) == 4
        assert fixed_partition_bound_bits(xs) == pytest.approx(2.0)

    def test_join_closed_always(self):
        xs = [Vector([1, 0, 0]), Vector([0, 1, 0]), Vector([1, 1, 1])]
        assert join_closed(xs)

    def test_meet_closure_failure(self):
        vectors, v1, v2 = meet_closure_failure_example()
        failure = find_meet_closure_failure(vectors)
        assert failure is not None

    def test_meet_closed_small_example(self):
        xs = [Vector([1, 0]), Vector([0, 1])]
        assert find_meet_closure_failure(xs) is None

    def test_unrestricted_bound(self):
        assert unrestricted_bound_bits(10, 3) == 300.0
