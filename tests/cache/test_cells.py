"""The scenario-matrix cells tier and the shard-tmp orphan race.

Two contracts pinned here:

* ``cells/``: canonical, versioned cell documents round-trip through
  :meth:`CacheStore.put_cell`/:meth:`get_cell`, show up in stats and
  verify, and vanish on clear;
* the in-flight-vs-orphan rule for ``.tmp`` scratch files: a shard tmp
  at least as new as its build's committed manifest is an in-flight
  write and must survive ``sweep-tmp``; a tmp older than the manifest —
  or any tmp in ``objects/``/``cells/`` — is an orphan.
"""

import os

import pytest

from repro import cache, obs

CELL = {
    "bounds": {},
    "family": "equality",
    "measured": {"clean": {"total_bits": 17}, "faulted": None},
    "mismatches": [],
    "model": "deterministic",
    "params": {"n_bits": 16},
    "predicted": {"total_bits": 17},
    "regime": {"kind": None, "name": "clean", "rate_permille": 0, "runs": 1},
    "seed": 7,
    "verdict": "MATCH",
}

KEY = cache.cell_key(
    "repro.matrix/1", {"builder": "_det_equality", "seed": 0}
)


@pytest.fixture
def store(tmp_path):
    return cache.CacheStore(tmp_path / "c")


class TestCellKeys:
    def test_key_ignores_dict_insertion_order(self):
        a = cache.cell_key("e/1", {"x": 1, "params": {"a": 1, "b": 2}})
        b = cache.cell_key("e/1", {"params": {"b": 2, "a": 1}, "x": 1})
        assert a == b

    def test_key_separates_engines_and_coords(self):
        base = cache.cell_key("e/1", {"x": 1})
        assert base != cache.cell_key("e/2", {"x": 1})
        assert base != cache.cell_key("e/1", {"x": 2})

    def test_key_domain_separated_from_other_tiers(self):
        # Same folding inputs must never collide across prefixes.
        assert cache.cell_key("e", {"a": 1}) != cache.build_key("e", {"a": 1})

    def test_rejects_bad_engine_tags(self):
        with pytest.raises(ValueError):
            cache.cell_key("", {"a": 1})
        with pytest.raises(ValueError):
            cache.cell_key("e\0vil", {"a": 1})


class TestCellTier:
    def test_round_trip_and_counters(self, store):
        with obs.scoped():
            assert store.get_cell(KEY) is None
            store.put_cell(KEY, CELL)
            assert store.get_cell(KEY) == CELL
            counters = obs.snapshot()["counters"]
        assert counters["cache.cell.misses"] == 1
        assert counters["cache.cell.stores"] == 1
        assert counters["cache.cell.hits"] == 1

    def test_documents_are_canonical_bytes(self, store):
        store.put_cell(KEY, CELL)
        text = (store.cells / f"{KEY}.json").read_text()
        record = {"v": cache.CELL_RECORD_VERSION, "cell": CELL}
        assert text == cache.encode_record(record)

    def test_foreign_version_is_a_miss(self, store):
        store.put_cell(KEY, CELL)
        path = store.cells / f"{KEY}.json"
        path.write_text(path.read_text().replace('"v":1', '"v":999'))
        assert store.get_cell(KEY) is None

    def test_stats_verify_and_clear(self, store):
        store.put_cell(KEY, CELL)
        stats = store.stats()
        assert stats["cells"]["entries"] == 1
        assert stats["cells"]["verdicts"] == {"MATCH": 1}
        assert store.verify() == []
        (store.cells / "bad.json").write_text("not json")
        assert any("unparseable" in p for p in store.verify())
        store.clear()
        assert store.cell_stats()["entries"] == 0
        assert store.verify() == []


class TestTmpOrphanRace:
    def _committed_build(self, store):
        key = cache.build_key("modnp-1", {"family": "eq", "cols": 4})
        store.put_shard_manifest(
            key, cache.shard_manifest_record(2, 4, 2, "modnp-1")
        )
        return key

    def _shard_tmp(self, store, key, age_ns=None):
        name = f"{cache.shard_name(key, 0, 2)}.bin.123.456.tmp"
        path = store.shards / name
        path.write_bytes(b"\x00\x01\x00\x01")
        if age_ns is not None:
            os.utime(path, ns=(age_ns, age_ns))
        return path

    def test_fresh_shard_tmp_is_in_flight_not_orphan(self, store):
        key = self._committed_build(store)
        tmp = self._shard_tmp(store, key)  # mtime >= manifest's
        assert store.orphaned_tmp() == []
        assert store.sweep_tmp() == 0
        assert tmp.exists(), "sweep-tmp must not kill an in-flight write"
        assert store.stats()["tmp"] == {"files": 1, "orphaned": 0}

    def test_shard_tmp_older_than_manifest_is_an_orphan(self, store):
        key = self._committed_build(store)
        manifest_mtime = store._manifest_path(key).stat().st_mtime_ns
        tmp = self._shard_tmp(store, key, age_ns=manifest_mtime - 10**9)
        assert store.orphaned_tmp() == [tmp]
        assert store.sweep_tmp() == 1
        assert not tmp.exists()

    def test_shard_tmp_without_manifest_is_an_orphan(self, store):
        key = cache.build_key("modnp-1", {"family": "eq", "cols": 4})
        tmp = self._shard_tmp(store, key)  # no manifest ever committed
        assert store.orphaned_tmp() == [tmp]

    def test_objects_and_cells_tmp_are_always_orphans(self, store):
        a = store.objects / "rec.json.1.2.tmp"
        b = store.cells / "cell.json.1.2.tmp"
        a.write_text("{}")
        b.write_text("{}")
        assert store.orphaned_tmp() == sorted([b, a])
        assert store.sweep_tmp() == 2

    def test_clear_removes_even_in_flight_tmp(self, store):
        key = self._committed_build(store)
        tmp = self._shard_tmp(store, key)
        store.clear()
        assert not tmp.exists()
