"""The search entry points round-tripping through a real store on disk."""

import numpy as np
import pytest

from repro import cache, obs
from repro.comm.exhaustive import (
    ENGINES,
    clear_search_cache,
    communication_complexity,
    optimal_protocol_tree,
    partition_number,
)
from repro.comm.truth_matrix import TruthMatrix


def tm_from(array) -> TruthMatrix:
    a = np.array(array, dtype=np.uint8)
    return TruthMatrix(a, tuple(range(a.shape[0])), tuple(range(a.shape[1])))


def gt(n):
    return tm_from([[1 if i > j else 0 for j in range(n)] for i in range(n)])


@pytest.fixture(autouse=True)
def hermetic(monkeypatch):
    """No ambient store leaks in; the LRU starts empty."""
    monkeypatch.delenv(cache.ENV_VAR, raising=False)
    clear_search_cache()
    yield
    clear_search_cache()


@pytest.mark.parametrize("engine", ENGINES)
class TestRoundTrip:
    def test_d_survives_the_process_boundary_simulation(self, tmp_path, engine):
        tm = gt(6)
        with cache.directory(tmp_path):
            cold = communication_complexity(tm, engine=engine)
            clear_search_cache()  # simulate a fresh process
            with obs.scoped():
                warm = communication_complexity(tm, engine=engine)
                counters = obs.snapshot()["counters"]
        assert warm == cold
        assert counters["cache.hits"] == 1
        # A disk hit answers without rebuilding the search at all.
        assert counters.get("exhaustive.subproblems", 0) == 0

    def test_partition_number_survives(self, tmp_path, engine):
        tm = gt(5)
        with cache.directory(tmp_path):
            cold = partition_number(tm, engine=engine)
            clear_search_cache()
            with obs.scoped():
                warm = partition_number(tm, engine=engine)
                counters = obs.snapshot()["counters"]
        assert warm == cold
        assert counters.get("exhaustive.subproblems", 0) == 0

    def test_tree_rebuilt_from_cached_serial_computes_the_function(
        self, tmp_path, engine
    ):
        tm = tm_from([[1, 0, 1, 0], [1, 1, 0, 0], [0, 1, 1, 0], [0, 0, 0, 1]])
        with cache.directory(tmp_path):
            cost_cold, _ = optimal_protocol_tree(tm, engine=engine)
            clear_search_cache()
            with obs.scoped():
                cost_warm, tree = optimal_protocol_tree(tm, engine=engine)
                counters = obs.snapshot()["counters"]
        assert cost_warm == cost_cold
        assert counters.get("exhaustive.subproblems", 0) == 0
        assert tree.depth() == cost_warm
        for i, rl in enumerate(tm.row_labels):
            for j, cl in enumerate(tm.col_labels):
                assert tree.evaluate(rl, cl)[0] == tm.data[i, j]

    def test_queries_accumulate_in_one_record(self, tmp_path, engine):
        tm = gt(4)
        with cache.directory(tmp_path) as store:
            communication_complexity(tm, engine=engine)
            optimal_protocol_tree(tm, engine=engine)
            partition_number(tm, engine=engine)
            stats = store.stats()
            assert store.verify() == []
        assert stats["entries"] == 1
        assert stats["fields"] == {"d": 1, "leaves": 1, "tree": 1}

    def test_disabled_store_never_touches_disk(self, tmp_path, engine):
        tm = gt(4)
        cache.configure(tmp_path)
        try:
            with cache.disabled(), obs.scoped():
                communication_complexity(tm, engine=engine)
                counters = obs.snapshot()["counters"]
            assert counters.get("cache.lookups", 0) == 0
            assert cache.active_store().stats()["entries"] == 0
        finally:
            cache.unconfigure()


class TestCrossEngineIsolation:
    def test_engines_write_distinct_records(self, tmp_path):
        tm = gt(4)
        with cache.directory(tmp_path) as store:
            d_bitset = communication_complexity(tm, engine="bitset")
            clear_search_cache()
            d_legacy = communication_complexity(tm, engine="legacy")
            stats = store.stats()
        assert d_bitset == d_legacy
        assert stats["entries"] == 2
        assert stats["engines"] == {"bitset-1": 1, "tuple-1": 1}

    def test_corrupt_record_falls_back_to_search(self, tmp_path):
        tm = gt(5)
        with cache.directory(tmp_path) as store:
            cold = communication_complexity(tm)
            for path in store._record_paths():
                path.write_text("garbage")
            clear_search_cache()
            assert communication_complexity(tm) == cold
