"""Key determinism: same content, same address; any change, a new one."""

import numpy as np
import pytest

from repro.cache import KEY_PREFIX, canonical_matrix_bytes, matrix_key


class TestCanonicalBytes:
    def test_contiguity_does_not_matter(self):
        a = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        assert canonical_matrix_bytes(a.T.copy().T) == canonical_matrix_bytes(a)
        assert canonical_matrix_bytes(a[:, ::1]) == canonical_matrix_bytes(a)

    def test_dtype_is_normalized(self):
        a = [[1, 0], [0, 1]]
        assert canonical_matrix_bytes(a) == canonical_matrix_bytes(
            np.array(a, dtype=np.int64)
        )

    def test_bytes_are_row_major(self):
        assert canonical_matrix_bytes([[1, 0], [0, 1]]) == b"\x01\x00\x00\x01"


class TestMatrixKey:
    def test_deterministic(self):
        k1 = matrix_key("bitset-1", (2, 2), b"\x01\x00\x00\x01")
        k2 = matrix_key("bitset-1", (2, 2), b"\x01\x00\x00\x01")
        assert k1 == k2
        assert len(k1) == 40  # blake2b digest_size=20, hex

    def test_engine_version_separates(self):
        data = b"\x01\x00\x00\x01"
        assert matrix_key("bitset-1", (2, 2), data) != matrix_key(
            "tuple-1", (2, 2), data
        )

    def test_shape_separates_equal_bytes(self):
        data = b"\x01\x00\x00\x01"
        assert matrix_key("bitset-1", (2, 2), data) != matrix_key(
            "bitset-1", (1, 4), data
        )

    def test_content_separates(self):
        assert matrix_key("bitset-1", (2, 2), b"\x01\x00\x00\x01") != matrix_key(
            "bitset-1", (2, 2), b"\x01\x00\x01\x01"
        )

    def test_bad_engine_tags_are_rejected(self):
        with pytest.raises(ValueError):
            matrix_key("", (2, 2), b"")
        with pytest.raises(ValueError):
            matrix_key("bit\0set", (2, 2), b"")

    def test_prefix_is_version_pinned(self):
        # Bumping the prefix orphans every existing record by design; this
        # pin makes that a deliberate, reviewed change.
        assert KEY_PREFIX == b"repro-cache-v1"
