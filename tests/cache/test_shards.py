"""The truth-matrix shard side of the persistent cache store.

A sharded build is a manifest (the block grid) plus one raw ``.bin`` per
column block, all content-addressed under ``shards/``.  These tests pin
the invariants the streamed builder leans on: manifests round-trip
canonically, shards refuse lengths that cannot tile the grid, stats and
verify see partial builds and orphans, and clear really empties the lot.
"""

import pytest

from repro import cache
from repro.cache.keys import build_key, shard_name
from repro.cache.store import block_ranges, shard_manifest_problems


def make_key(tag="demo"):
    return build_key("test-shard-1", {"tag": tag})


class TestKeys:
    def test_build_key_is_stable_and_param_sensitive(self):
        a = build_key("v1", {"n": 5, "k": 3})
        assert a == build_key("v1", {"k": 3, "n": 5})  # order-insensitive
        assert a != build_key("v1", {"n": 5, "k": 4})
        assert a != build_key("v2", {"n": 5, "k": 3})
        assert len(a) == 40 and int(a, 16) >= 0

    def test_build_key_rejects_bad_versions(self):
        with pytest.raises(ValueError):
            build_key("", {})
        with pytest.raises(ValueError):
            build_key("v\x001", {})

    def test_shard_name_encodes_range(self):
        name = shard_name("ab" * 20, 0, 32)
        assert name.endswith(".00000000-00000032")
        with pytest.raises(ValueError):
            shard_name("ab" * 20, 5, 5)
        with pytest.raises(ValueError):
            shard_name("ab" * 20, -1, 5)


class TestBlockRanges:
    def test_tiles_exactly(self):
        assert block_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert block_ranges(8, 4) == [(0, 4), (4, 8)]
        assert block_ranges(0, 4) == []
        assert block_ranges(3, 100) == [(0, 3)]

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            block_ranges(10, 0)
        with pytest.raises(ValueError):
            block_ranges(-1, 4)


class TestManifest:
    def test_round_trip(self, tmp_path):
        with cache.directory(tmp_path) as store:
            key = make_key()
            manifest = cache.shard_manifest_record(4, 10, 4, "modnp-shard-1")
            assert shard_manifest_problems(manifest) == []
            store.put_shard_manifest(key, manifest)
            assert store.get_shard_manifest(key) == manifest
            # Re-committing the identical manifest is idempotent.
            store.put_shard_manifest(key, manifest)
            assert store.get_shard_manifest(key) == manifest

    def test_schema_problems(self):
        assert shard_manifest_problems(None)
        bad = cache.shard_manifest_record(4, 10, 4, "e")
        bad["rows"] = 0
        assert any("rows" in p for p in shard_manifest_problems(bad))
        bad = cache.shard_manifest_record(4, 10, 4, "e")
        bad["extra"] = 1
        assert any("unknown" in p for p in shard_manifest_problems(bad))


class TestShardIO:
    def test_put_get_and_stats(self, tmp_path):
        with cache.directory(tmp_path) as store:
            key = make_key()
            store.put_shard_manifest(
                key, cache.shard_manifest_record(2, 10, 4, "e")
            )
            for start, stop in block_ranges(10, 4):
                store.put_shard(key, start, stop, b"\x01" * (2 * (stop - start)))
            stats = store.shard_stats()
            assert stats["builds"] == 1
            assert stats["complete_builds"] == 1
            assert stats["partial_builds"] == 0
            assert stats["shards"] == 3
            assert stats["bytes"] == 20
            assert stats["orphaned_shards"] == 0
            assert store.get_shard(key, 0, 4) == b"\x01" * 8
            assert store.verify_shards() == []

    def test_partial_build_is_visible(self, tmp_path):
        with cache.directory(tmp_path) as store:
            key = make_key()
            store.put_shard_manifest(
                key, cache.shard_manifest_record(2, 10, 4, "e")
            )
            store.put_shard(key, 0, 4, b"\x00" * 8)
            stats = store.shard_stats()
            assert stats["partial_builds"] == 1
            assert stats["complete_builds"] == 0
            builds = store.shard_builds()
            assert builds[key]["missing"] == 2

    def test_put_refuses_untiled_lengths(self, tmp_path):
        with cache.directory(tmp_path) as store:
            key = make_key()
            with pytest.raises(ValueError):
                store.put_shard(key, 0, 4, b"\x00" * 8)  # no manifest yet
            store.put_shard_manifest(
                key, cache.shard_manifest_record(2, 10, 4, "e")
            )
            with pytest.raises(ValueError):
                store.put_shard(key, 0, 4, b"\x00" * 7)  # wrong length

    def test_get_missing_is_none(self, tmp_path):
        with cache.directory(tmp_path) as store:
            assert store.get_shard(make_key(), 0, 4) is None


class TestVerifyAndClear:
    def test_orphan_shard_detected(self, tmp_path):
        with cache.directory(tmp_path) as store:
            key = make_key()
            store.put_shard_manifest(
                key, cache.shard_manifest_record(2, 10, 4, "e")
            )
            orphan = make_key("other")
            (store.shards / f"{shard_name(orphan, 0, 4)}.bin").write_bytes(
                b"\x00" * 8
            )
            assert store.shard_stats()["orphaned_shards"] == 1
            assert any("orphan" in p for p in store.verify_shards())

    def test_verify_flags_corrupt_bytes_and_grid(self, tmp_path):
        with cache.directory(tmp_path) as store:
            key = make_key()
            store.put_shard_manifest(
                key, cache.shard_manifest_record(2, 10, 4, "e")
            )
            # Off-grid range and non-0/1 payload, planted by hand.
            (store.shards / f"{shard_name(key, 1, 3)}.bin").write_bytes(
                b"\x00" * 4
            )
            (store.shards / f"{shard_name(key, 0, 4)}.bin").write_bytes(
                b"\x07" * 8
            )
            problems = store.verify_shards()
            assert problems
            assert store.verify() != []  # top-level verify folds shards in

    def test_clear_removes_everything(self, tmp_path):
        with cache.directory(tmp_path) as store:
            key = make_key()
            store.put_shard_manifest(
                key, cache.shard_manifest_record(2, 10, 4, "e")
            )
            store.put_shard(key, 0, 4, b"\x00" * 8)
            # clear() counts records only; shard files report separately.
            assert store.clear() == 0
            stats = store.shard_stats()
            assert stats["builds"] == 0 and stats["shards"] == 0

    def test_clear_shards_counts_files(self, tmp_path):
        with cache.directory(tmp_path) as store:
            key = make_key()
            store.put_shard_manifest(
                key, cache.shard_manifest_record(2, 10, 4, "e")
            )
            store.put_shard(key, 0, 4, b"\x00" * 8)
            assert store.clear_shards() == 2  # manifest + one shard

    def test_top_level_stats_include_shards(self, tmp_path):
        with cache.directory(tmp_path) as store:
            assert "shards" in store.stats()
