"""The on-disk store: canonical records, atomic merges, verify/clear."""

import json
import os
import threading

import pytest

from repro import cache, obs


@pytest.fixture
def store(tmp_path):
    return cache.CacheStore(tmp_path / "c")


KEY = cache.matrix_key("bitset-1", (2, 2), b"\x01\x00\x00\x01")


class TestEncodeDecode:
    def test_round_trip(self):
        record = {"v": 1, "engine": "bitset-1", "shape": [2, 2], "d": 2}
        assert cache.decode_record(cache.encode_record(record)) == record

    def test_canonical_form_is_key_sorted_and_newline_terminated(self):
        text = cache.encode_record({"shape": [1, 1], "engine": "e", "v": 1})
        assert text == '{"engine":"e","shape":[1,1],"v":1}\n'

    def test_insertion_order_does_not_matter(self):
        a = cache.encode_record({"v": 1, "engine": "e", "d": 3})
        b = cache.encode_record({"d": 3, "engine": "e", "v": 1})
        assert a == b

    def test_decode_rejects_garbage_and_foreign_versions(self):
        assert cache.decode_record("not json") is None
        assert cache.decode_record('["a", "list"]') is None
        assert cache.decode_record('{"v": 999, "engine": "e"}') is None


class TestMerge:
    def test_get_on_empty_store_misses(self, store):
        with obs.scoped():
            assert store.get(KEY) is None
            counters = obs.snapshot()["counters"]
        assert counters["cache.lookups"] == 1
        assert counters["cache.misses"] == 1

    def test_merge_then_get(self, store):
        with obs.scoped():
            store.merge(KEY, {"d": 2}, "bitset-1", (2, 2))
            record = store.get(KEY)
            counters = obs.snapshot()["counters"]
        assert record == {
            "v": 1, "engine": "bitset-1", "shape": [2, 2], "d": 2,
        }
        assert counters["cache.stores"] == 1
        assert counters["cache.hits"] == 1

    def test_fields_accumulate_across_merges(self, store):
        store.merge(KEY, {"d": 2}, "bitset-1", (2, 2))
        store.merge(KEY, {"leaves": 4}, "bitset-1", (2, 2))
        record = store.get(KEY)
        assert record["d"] == 2 and record["leaves"] == 4

    def test_merge_from_a_different_engine_restarts_the_record(self, store):
        store.merge(KEY, {"d": 2}, "bitset-1", (2, 2))
        record = store.merge(KEY, {"leaves": 4}, "tuple-1", (2, 2))
        assert "d" not in record and record["engine"] == "tuple-1"

    def test_unknown_fields_are_rejected(self, store):
        with pytest.raises(ValueError):
            store.merge(KEY, {"wat": 1}, "bitset-1", (2, 2))

    def test_no_temporary_files_survive(self, store):
        store.merge(KEY, {"d": 2}, "bitset-1", (2, 2))
        leftovers = [p for p in store.objects.iterdir() if p.suffix != ".json"]
        assert leftovers == []

    def test_concurrent_merges_leave_a_whole_record(self, store):
        def write(field, value):
            for _ in range(20):
                store.merge(KEY, {field: value}, "bitset-1", (2, 2))

        threads = [
            threading.Thread(target=write, args=("d", 2)),
            threading.Thread(target=write, args=("leaves", 4)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Atomic replace: the final record parses and is schema-clean
        # (last-writer-wins per field is acceptable; torn bytes are not).
        text = store._path(KEY).read_text()
        record = cache.decode_record(text)
        assert record is not None
        assert cache.record_problems(record, text) == []


class TestVerifyStatsClear:
    def _seed(self, store):
        store.merge(KEY, {"d": 2}, "bitset-1", (2, 2))
        other = cache.matrix_key("tuple-1", (1, 2), b"\x01\x00")
        store.merge(other, {"leaves": 2, "d": 1}, "tuple-1", (1, 2))
        return other

    def test_stats(self, store):
        self._seed(store)
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["fields"] == {"d": 2, "leaves": 1, "tree": 0}
        assert stats["engines"] == {"bitset-1": 1, "tuple-1": 1}
        assert stats["bytes"] > 0
        json.dumps(stats)  # the CLI serializes this verbatim

    def test_verify_clean(self, store):
        self._seed(store)
        assert store.verify() == []

    def test_verify_flags_corruption(self, store):
        self._seed(store)
        victim = store._path(KEY)
        victim.write_text("{corrupted")
        problems = store.verify()
        assert len(problems) == 1 and "unparseable" in problems[0]

    def test_verify_flags_noncanonical_bytes(self, store):
        self._seed(store)
        victim = store._path(KEY)
        record = cache.decode_record(victim.read_text())
        victim.write_text(json.dumps(record, indent=2))  # valid, wrong form
        assert any("canonical" in p for p in store.verify())

    def test_verify_flags_bad_tree_shape(self, store):
        store.merge(KEY, {"tree": ["L", 1]}, "bitset-1", (2, 2))
        assert store.verify() == []
        text = cache.encode_record({
            "v": 1, "engine": "bitset-1", "shape": [2, 2],
            "tree": ["N", 7, [0], ["L", 0], ["L", 1]],
        })
        store._path(KEY).write_text(text)
        assert any("tree" in p for p in store.verify())

    def test_clear(self, store):
        self._seed(store)
        assert store.clear() == 2
        assert store.stats()["entries"] == 0


class TestOrphanedTmp:
    def _crash_mid_merge(self, store, monkeypatch):
        """Simulate a writer killed between tmp write and os.replace."""
        import repro.cache.store as store_module

        def killed(src, dst):
            raise KeyboardInterrupt("writer killed mid-commit")

        monkeypatch.setattr(store_module.os, "replace", killed)
        with pytest.raises(KeyboardInterrupt):
            store.merge(KEY, {"d": 2}, "bitset-1", (2, 2))
        monkeypatch.undo()

    def test_crash_leaves_an_orphan_verify_reports_it(self, store, monkeypatch):
        self._crash_mid_merge(store, monkeypatch)
        orphans = store.orphaned_tmp()
        assert len(orphans) == 1
        assert orphans[0].name.endswith(".tmp")
        problems = store.verify()
        assert any("orphaned tmp" in p for p in problems)
        # The half-written scratch never became a record.
        assert store.stats()["entries"] == 0

    def test_sweep_tmp_removes_orphans_only(self, store, monkeypatch):
        store.merge(KEY, {"d": 2}, "bitset-1", (2, 2))
        self._crash_mid_merge(store, monkeypatch)
        assert store.sweep_tmp() == 1
        assert store.orphaned_tmp() == []
        assert store.verify() == []
        assert store.stats()["entries"] == 1  # real records untouched

    def test_clear_also_sweeps_orphans(self, store, monkeypatch):
        store.merge(KEY, {"d": 2}, "bitset-1", (2, 2))
        self._crash_mid_merge(store, monkeypatch)
        assert store.clear() == 1
        assert store.orphaned_tmp() == []
        assert list(store.objects.iterdir()) == []


class TestActivation:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(cache.ENV_VAR, raising=False)
        cache.unconfigure()
        assert cache.active_store() is None

    def test_configure_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache.ENV_VAR, str(tmp_path / "env"))
        try:
            cache.configure(tmp_path / "explicit")
            assert cache.active_store().root == tmp_path / "explicit"
            cache.configure(None)  # explicit disable beats the env too
            assert cache.active_store() is None
        finally:
            cache.unconfigure()

    def test_env_activation(self, tmp_path, monkeypatch):
        cache.unconfigure()
        monkeypatch.setenv(cache.ENV_VAR, str(tmp_path / "env"))
        store = cache.active_store()
        assert store is not None and store.root == tmp_path / "env"
        monkeypatch.setenv(cache.ENV_VAR, "   ")
        assert cache.active_store() is None

    def test_directory_context_restores(self, tmp_path, monkeypatch):
        monkeypatch.delenv(cache.ENV_VAR, raising=False)
        cache.unconfigure()
        with cache.directory(tmp_path / "scoped") as store:
            assert cache.active_store() is store
        assert cache.active_store() is None

    def test_disabled_context(self, tmp_path):
        cache.configure(tmp_path / "outer")
        try:
            with cache.disabled():
                assert cache.active_store() is None
            assert cache.active_store().root == tmp_path / "outer"
        finally:
            cache.unconfigure()
