"""Tests for the two-agent generator runtime."""

import pytest

from repro.comm.agents import (
    ProtocolDeadlock,
    ProtocolError,
    Recv,
    Send,
    run_protocol,
)


def test_simple_exchange():
    def alice(x):
        yield Send([x])
        (reply,) = yield Recv(1)
        return reply

    def bob(y):
        (received,) = yield Recv(1)
        yield Send([received ^ y])
        return received ^ y

    result = run_protocol(alice, bob, 1, 1)
    assert result.outputs == (0, 0)
    assert result.bits_exchanged == 2
    assert result.rounds == 2


def test_agreed_output():
    def alice(_):
        yield Send([1])
        return "answer"

    def bob(_):
        _ = yield Recv(1)
        return None

    assert run_protocol(alice, bob, 0, 0).agreed_output() == "answer"


def test_disagreement_detected():
    def alice(_):
        yield Send([1])
        return "a"

    def bob(_):
        _ = yield Recv(1)
        return "b"

    result = run_protocol(alice, bob, 0, 0)
    with pytest.raises(ProtocolError):
        result.agreed_output()


def test_multi_round_ping_pong():
    def alice(_):
        total = 0
        for _ in range(5):
            yield Send([1])
            (bit,) = yield Recv(1)
            total += bit
        return total

    def bob(_):
        total = 0
        for _ in range(5):
            (bit,) = yield Recv(1)
            total += bit
            yield Send([bit])
        return total

    result = run_protocol(alice, bob, None, None)
    assert result.outputs == (5, 5)
    assert result.bits_exchanged == 10
    assert result.rounds == 10


def test_deadlock_detection():
    def both(_):
        _ = yield Recv(1)
        return None

    with pytest.raises(ProtocolDeadlock):
        run_protocol(both, both, 0, 0)


def test_unread_bits_detected():
    def alice(_):
        yield Send([1, 1, 1])
        return 0

    def bob(_):
        _ = yield Recv(1)
        return 0

    with pytest.raises(ProtocolError):
        run_protocol(alice, bob, 0, 0)


def test_bad_yield_rejected():
    def alice(_):
        yield "not-an-effect"
        return 0

    def bob(_):
        return 0
        yield  # pragma: no cover

    with pytest.raises(ProtocolError):
        run_protocol(alice, bob, 0, 0)


def test_silent_protocol():
    def silent(x):
        return x
        yield  # pragma: no cover

    result = run_protocol(silent, silent, "a", "b")
    assert result.outputs == ("a", "b")
    assert result.bits_exchanged == 0


def test_public_randomness_passed_to_both():
    seen = []

    def agent(_, coins):
        seen.append(coins)
        return None
        yield  # pragma: no cover

    run_protocol(agent, agent, 0, 0, public_randomness="COINS")
    assert seen == ["COINS", "COINS"]


def test_bulk_message_split_receive():
    def alice(_):
        yield Send([1, 0, 1, 0])
        return None

    def bob(_):
        first = yield Recv(2)
        second = yield Recv(2)
        return (first, second)

    result = run_protocol(alice, bob, 0, 0)
    assert result.outputs[1] == ((1, 0), (1, 0))


def test_interleaved_sends_before_recv():
    # Agent 0 sends twice before agent 1 reads once — queuing must hold.
    def alice(_):
        yield Send([1])
        yield Send([0])
        (done,) = yield Recv(1)
        return done

    def bob(_):
        bits = yield Recv(2)
        yield Send([1])
        return bits

    result = run_protocol(alice, bob, 0, 0)
    assert result.outputs == (1, (1, 0))
