"""Tests for the matrix bit codec."""

import pytest

from repro.comm.bits import MatrixBitCodec, bits_to_int, int_to_bits
from repro.exact.matrix import Matrix
from repro.util.rng import ReproducibleRNG


class TestIntBits:
    def test_roundtrip(self):
        for value in (0, 1, 5, 255):
            assert bits_to_int(int_to_bits(value, 8)) == value

    def test_lsb_first(self):
        assert int_to_bits(1, 3) == (1, 0, 0)
        assert int_to_bits(4, 3) == (0, 0, 1)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 3)


class TestCodec:
    def test_total_bits(self):
        assert MatrixBitCodec(3, 4, 2).total_bits == 24

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            MatrixBitCodec(0, 1, 1)
        with pytest.raises(ValueError):
            MatrixBitCodec(1, 1, 0)

    def test_encode_decode_roundtrip(self):
        rng = ReproducibleRNG(0)
        codec = MatrixBitCodec(3, 3, 3)
        for _ in range(10):
            m = Matrix.random_kbit(rng, 3, 3, 3)
            assert codec.decode(codec.encode(m)) == m

    def test_encode_shape_check(self):
        codec = MatrixBitCodec(2, 2, 1)
        with pytest.raises(ValueError):
            codec.encode(Matrix.identity(3))

    def test_encode_range_check(self):
        codec = MatrixBitCodec(1, 1, 2)
        with pytest.raises(ValueError):
            codec.encode(Matrix([[4]]))

    def test_decode_length_check(self):
        with pytest.raises(ValueError):
            MatrixBitCodec(2, 2, 1).decode([0, 1])

    def test_bit_index_inverse(self):
        codec = MatrixBitCodec(3, 4, 2)
        for p in range(codec.total_bits):
            i, j, b = codec.entry_of_bit(p)
            assert codec.bit_index(i, j, b) == p

    def test_bit_index_bounds(self):
        codec = MatrixBitCodec(2, 2, 2)
        with pytest.raises(ValueError):
            codec.bit_index(2, 0, 0)
        with pytest.raises(ValueError):
            codec.bit_index(0, 0, 2)
        with pytest.raises(ValueError):
            codec.entry_of_bit(codec.total_bits)

    def test_entry_positions(self):
        codec = MatrixBitCodec(2, 2, 3)
        assert list(codec.entry_positions(0, 1)) == [3, 4, 5]

    def test_block_positions(self):
        codec = MatrixBitCodec(2, 2, 1)
        assert codec.block_positions([0], [0, 1]) == frozenset({0, 1})

    def test_column_positions_cover_pi0(self):
        codec = MatrixBitCodec(4, 4, 1)
        left = codec.column_positions(range(2))
        assert len(left) == 8
        for p in left:
            _, j, _ = codec.entry_of_bit(p)
            assert j < 2

    def test_row_positions(self):
        codec = MatrixBitCodec(4, 4, 1)
        top = codec.row_positions(range(2))
        assert len(top) == 8

    def test_decode_partial(self):
        codec = MatrixBitCodec(2, 2, 1)
        m = codec.decode_partial({0: 1, 3: 1})
        assert m == Matrix([[1, 0], [0, 1]])
        with pytest.raises(ValueError):
            codec.decode_partial({99: 1})


class TestPositionPermutation:
    def test_identity_permutation(self):
        codec = MatrixBitCodec(3, 3, 2)
        sigma = codec.position_permutation(list(range(3)), list(range(3)))
        assert sigma == list(range(codec.total_bits))

    def test_consistency_with_matrix_permutation(self):
        rng = ReproducibleRNG(1)
        codec = MatrixBitCodec(3, 3, 2)
        m = Matrix.random_kbit(rng, 3, 3, 2)
        row_perm = rng.permutation(3)
        col_perm = rng.permutation(3)
        permuted = m.permute_rows(row_perm).permute_cols(col_perm)
        sigma = codec.position_permutation(row_perm, col_perm)
        original_bits = codec.encode(m)
        permuted_bits = codec.encode(permuted)
        for p in range(codec.total_bits):
            assert permuted_bits[sigma[p]] == original_bits[p]

    def test_rejects_non_permutations(self):
        codec = MatrixBitCodec(2, 2, 1)
        with pytest.raises(ValueError):
            codec.position_permutation([0, 0], [0, 1])
        with pytest.raises(ValueError):
            codec.position_permutation([0, 1], [1, 1])
