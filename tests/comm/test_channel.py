"""Tests for the bit channel and transcripts."""

import pytest

from repro.comm.channel import BitChannel, ChannelClosed, Message, Transcript


class TestMessage:
    def test_validation(self):
        with pytest.raises(ValueError):
            Message(2, (0, 1))
        with pytest.raises(ValueError):
            Message(0, (0, 2))

    def test_len(self):
        assert len(Message(0, (1, 0, 1))) == 3


class TestTranscript:
    def test_total_bits(self):
        t = Transcript([Message(0, (1, 1)), Message(1, (0,))])
        assert t.total_bits == 3

    def test_rounds_counts_sender_runs(self):
        t = Transcript(
            [
                Message(0, (1,)),
                Message(0, (1,)),
                Message(1, (0,)),
                Message(0, (1,)),
            ]
        )
        assert t.rounds == 3

    def test_bits_from(self):
        t = Transcript([Message(0, (1, 1)), Message(1, (0, 0, 0))])
        assert t.bits_from(0) == 2
        assert t.bits_from(1) == 3

    def test_as_bit_string(self):
        t = Transcript([Message(0, (1, 0)), Message(1, (1,))])
        assert t.as_bit_string() == "101"


class TestBitChannel:
    def test_send_recv_order(self):
        ch = BitChannel()
        ch.send(0, [1, 0, 1])
        assert ch.available(1) == 3
        assert ch.recv(1, 2) == (1, 0)
        assert ch.recv(1, 1) == (1,)
        assert ch.drained()

    def test_duplex_independence(self):
        ch = BitChannel()
        ch.send(0, [1])
        ch.send(1, [0, 0])
        assert ch.available(0) == 2
        assert ch.available(1) == 1

    def test_recv_underflow_blocks(self):
        ch = BitChannel()
        ch.send(0, [1])
        with pytest.raises(BlockingIOError):
            ch.recv(1, 2)

    def test_recv_negative_rejected(self):
        with pytest.raises(ValueError):
            BitChannel().recv(0, -1)

    def test_only_bits_allowed(self):
        with pytest.raises(ValueError):
            BitChannel().send(0, [2])

    def test_transcript_records_everything(self):
        ch = BitChannel()
        ch.send(0, [1, 1])
        ch.send(1, [0])
        assert ch.total_bits == 3
        assert ch.transcript.messages[0].sender == 0

    def test_closed_channel_rejects(self):
        ch = BitChannel()
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.send(0, [1])
        with pytest.raises(ChannelClosed):
            ch.recv(0, 0)

    def test_drained_false_with_pending(self):
        ch = BitChannel()
        ch.send(0, [1])
        assert not ch.drained()
