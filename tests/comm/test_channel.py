"""Tests for the bit channel and transcripts."""

import pytest

from repro.comm.channel import BitChannel, ChannelClosed, Message, Transcript


class TestMessage:
    def test_validation(self):
        with pytest.raises(ValueError):
            Message(2, (0, 1))
        with pytest.raises(ValueError):
            Message(0, (0, 2))

    def test_len(self):
        assert len(Message(0, (1, 0, 1))) == 3


class TestTranscript:
    def test_total_bits(self):
        t = Transcript([Message(0, (1, 1)), Message(1, (0,))])
        assert t.total_bits == 3

    def test_rounds_counts_sender_runs(self):
        t = Transcript(
            [
                Message(0, (1,)),
                Message(0, (1,)),
                Message(1, (0,)),
                Message(0, (1,)),
            ]
        )
        assert t.rounds == 3

    def test_bits_from(self):
        t = Transcript([Message(0, (1, 1)), Message(1, (0, 0, 0))])
        assert t.bits_from(0) == 2
        assert t.bits_from(1) == 3

    def test_as_bit_string(self):
        t = Transcript([Message(0, (1, 0)), Message(1, (1,))])
        assert t.as_bit_string() == "101"


class TestBitChannel:
    def test_send_recv_order(self):
        ch = BitChannel()
        ch.send(0, [1, 0, 1])
        assert ch.available(1) == 3
        assert ch.recv(1, 2) == (1, 0)
        assert ch.recv(1, 1) == (1,)
        assert ch.drained()

    def test_duplex_independence(self):
        ch = BitChannel()
        ch.send(0, [1])
        ch.send(1, [0, 0])
        assert ch.available(0) == 2
        assert ch.available(1) == 1

    def test_recv_underflow_blocks(self):
        ch = BitChannel()
        ch.send(0, [1])
        with pytest.raises(BlockingIOError):
            ch.recv(1, 2)

    def test_recv_negative_rejected(self):
        with pytest.raises(ValueError):
            BitChannel().recv(0, -1)

    def test_only_bits_allowed(self):
        with pytest.raises(ValueError):
            BitChannel().send(0, [2])

    def test_transcript_records_everything(self):
        ch = BitChannel()
        ch.send(0, [1, 1])
        ch.send(1, [0])
        assert ch.total_bits == 3
        assert ch.transcript.messages[0].sender == 0

    def test_closed_channel_rejects(self):
        ch = BitChannel()
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.send(0, [1])
        with pytest.raises(ChannelClosed):
            ch.recv(0, 0)

    def test_drained_false_with_pending(self):
        ch = BitChannel()
        ch.send(0, [1])
        assert not ch.drained()


class TestRoundSemantics:
    """Pin the round convention: maximal same-sender runs, with
    zero-length messages fully transparent (they move no information, so
    they neither open nor break a round).  The protocol-tree walk and the
    symbolic cost calculus both build on exactly this convention."""

    def test_empty_messages_neither_open_nor_break_a_round(self):
        t = Transcript(
            [
                Message(1, ()),  # noise before anyone speaks
                Message(0, (1,)),
                Message(1, ()),  # empty interjection...
                Message(0, (1,)),  # ...does not split agent 0's run
                Message(1, (0,)),
            ]
        )
        assert t.rounds == 2

    def test_all_empty_transcript_has_zero_rounds(self):
        t = Transcript([Message(0, ()), Message(1, ())])
        assert t.rounds == 0
        assert t.total_bits == 0

    def test_channel_mirror_agrees_with_transcript(self):
        # BitChannel keeps an O(1) running round counter for the tracer;
        # it must agree with the authoritative recount at every step.
        ch = BitChannel()
        script = [(0, [1]), (1, []), (0, [1]), (1, [0]), (1, []), (0, [1, 1])]
        for sender, bits in script:
            ch.send(sender, bits)
            assert ch._rounds == ch.transcript.rounds
        assert ch.transcript.rounds == 3

    def test_tree_owner_blocks_define_rounds(self):
        # A realized tree path with owners 0, 0, 1 costs 3 bits but only
        # 2 rounds: consecutive same-owner announcements are one block.
        from repro.comm.protocol import Leaf, Node, ProtocolTree

        tree = ProtocolTree(
            Node(
                0,
                lambda x: 1,
                Leaf("dead"),
                Node(
                    0,
                    lambda x: 0,
                    Node(1, lambda y: 1, Leaf("dead"), Leaf("ok")),
                    Leaf("dead"),
                ),
            )
        )
        result = tree.compile().run("in0", "in1")
        assert result.agreed_output() == "ok"
        assert result.transcript.total_bits == 3
        assert result.transcript.rounds == 2

    def test_message_shape_shares_the_convention(self):
        # The cost calculus predicts rounds with the same skip-empty rule,
        # so a shape and a transcript with matching senders always agree.
        from repro.costs import MessageShape

        shape = MessageShape("pin", ((0, 1), (1, 0), (0, 2), (1, 1)))
        t = Transcript(
            [
                Message(0, (1,)),
                Message(1, ()),
                Message(0, (1, 1)),
                Message(1, (0,)),
            ]
        )
        assert shape.rounds == t.rounds == 2
        assert shape.total_bits == t.total_bits == 4
