"""Tests for the chaos harness — including the no-silent-corruption sweep."""

import pytest

from repro.comm.chaos import (
    FAULT_KINDS,
    SCENARIOS,
    ChaosCase,
    make_fault_model,
    run_case,
    sweep,
    sweep_table,
)
from repro.comm.faults import NoFaults
from repro.comm.transport import ArqConfig
from repro.util.rng import derive_seed


class TestScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_clean_channel_recovers_gold_with_bounded_overhead(self, name):
        case = SCENARIOS[name](derive_seed(99, name))
        outcome = run_case(case, NoFaults(), coin_seed=1)
        assert outcome.recovered
        assert not outcome.silent_wrong
        assert outcome.report.outcome == "ok"
        assert outcome.answer == outcome.gold
        assert outcome.stats.retransmissions == 0
        # framing overhead exists but is bounded: a handful of frames, each
        # paying header + crc, plus acks and linger traffic.
        frames = outcome.stats.frames_delivered
        cfg = ArqConfig()
        per_frame = cfg.data_header_bits + 16 + 2 * cfg.control_frame_bits
        assert 0 < outcome.stats.overhead_bits <= frames * per_frame + 200

    def test_instances_vary_with_seed(self):
        a = SCENARIOS["equality"](derive_seed(0, "eq", 0))
        b = SCENARIOS["equality"](derive_seed(0, "eq", 1))
        assert (a.input0, a.input1) != (b.input0, b.input1)

    def test_case_is_plain_data(self):
        case = ChaosCase(protocol=None, input0=1, input1=2)
        assert not case.randomized


class TestFaultModelFactory:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_known_kinds(self, kind):
        model = make_fault_model(kind, 0.1, seed=1)
        assert model.apply(0, 0, (1,) * 8) is not None

    def test_rate_zero_is_clean(self):
        assert isinstance(make_fault_model("flip", 0.0), NoFaults)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            make_fault_model("gremlins", 0.1)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            make_fault_model("flip", -0.1)


class TestSweep:
    def test_aggregation_is_consistent(self):
        points = sweep(
            protocols=["equality"],
            kinds=("flip",),
            rates=(0.0, 0.02),
            runs=5,
            seed=1,
        )
        assert len(points) == 2
        for point in points:
            assert point.runs == 5
            assert (
                point.recovered + point.silent_wrong + sum(point.failures.values())
                == point.runs
            )
        clean, faulty = points
        assert clean.rate == 0.0 and clean.recovered == 5
        assert clean.faults_injected == 0
        assert faulty.faults_injected > 0

    def test_replayable(self):
        kwargs = dict(
            protocols=["trivial"], kinds=("erase",), rates=(0.05,), runs=4, seed=7
        )
        first = sweep(**kwargs)
        second = sweep(**kwargs)
        assert [p.as_dict() for p in first] == [p.as_dict() for p in second]

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocols"):
            sweep(protocols=["nonsense"])

    def test_as_dict_shape(self):
        (point,) = sweep(
            protocols=["equality"], kinds=("flip",), rates=(0.0,), runs=1
        )
        d = point.as_dict()
        for key in (
            "protocol",
            "kind",
            "rate",
            "runs",
            "recovered",
            "silent_wrong",
            "failures",
            "recovery_rate",
            "mean_retries",
            "mean_overhead_bits",
        ):
            assert key in d
        assert d["recovery_rate"] == 1.0

    def test_table_renders(self):
        points = sweep(
            protocols=["equality"], kinds=("flip",), rates=(0.0,), runs=1
        )
        text = sweep_table(points).render()
        assert "equality" in text and "recovered" in text


class TestNoSilentCorruption:
    """The acceptance criterion: ≥ 1000 seeded faulty runs, zero runs that
    finish ``ok`` with an answer different from the fault-free gold standard.
    Failures must be loud (structured non-ok outcomes), never silent."""

    def test_thousand_runs_zero_silent_wrong(self):
        protocols = ["equality", "trivial", "solvability", "matmul_verify"]
        kinds = FAULT_KINDS  # flip, burst, erase, duplicate, delay
        rates = (0.01, 0.05)
        runs = 25  # 4 protocols × 5 kinds × 2 rates × 25 = 1000 runs
        points = sweep(
            protocols=protocols, kinds=kinds, rates=rates, runs=runs, seed=2026
        )
        total = sum(p.runs for p in points)
        assert total >= 1000
        assert sum(p.silent_wrong for p in points) == 0
        for point in points:
            for outcome_name in point.failures:
                assert outcome_name in (
                    "transport_failure",
                    "deadlock",
                    "budget_exceeded",
                    "agent_error",
                )
        # the sweep is not vacuous: faults really were injected and many
        # runs still recovered the gold answer.
        assert sum(p.faults_injected for p in points) > 100
        assert sum(p.recovered for p in points) > total // 2
