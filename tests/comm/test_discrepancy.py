"""Tests for the discrepancy method (randomized lower bounds)."""

import numpy as np
import pytest

from repro.comm.discrepancy import (
    discrepancy_exact,
    discrepancy_report,
    discrepancy_spectral_bound,
    inner_product_matrix,
    randomized_lower_bound_bits,
)
from repro.comm.truth_matrix import TruthMatrix


def tm_from(array) -> TruthMatrix:
    a = np.array(array, dtype=np.uint8)
    return TruthMatrix(a, tuple(range(a.shape[0])), tuple(range(a.shape[1])))


class TestExactDiscrepancy:
    def test_constant_matrix_maximal(self):
        # The full rectangle of a constant function is fully unbalanced.
        assert discrepancy_exact(tm_from([[1, 1], [1, 1]])) == 1.0
        assert discrepancy_exact(tm_from([[0, 0], [0, 0]])) == 1.0

    def test_xor_balanced(self):
        # XOR's 2x2 matrix: any single cell gives |±1|/4 = 0.25; the best
        # rectangle is a single row/column pair... compute: rows {0}: sums
        # (+1, -1) -> best 0.25.  Full matrix balances to 0.
        assert discrepancy_exact(tm_from([[0, 1], [1, 0]])) == 0.25

    def test_ip_discrepancy_shrinks(self):
        d2 = discrepancy_exact(inner_product_matrix(2))
        d3 = discrepancy_exact(inner_product_matrix(3))
        assert d3 < d2

    def test_size_guard(self):
        with pytest.raises(ValueError):
            discrepancy_exact(tm_from(np.zeros((20, 2), dtype=np.uint8)))


class TestSpectralBound:
    def test_upper_bounds_exact(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            data = rng.integers(0, 2, size=(6, 6)).astype(np.uint8)
            tm = tm_from(data)
            assert discrepancy_exact(tm) <= discrepancy_spectral_bound(tm) + 1e-9

    def test_ip_spectral_value(self):
        # IP_b's ±1 matrix has all singular values 2^{b/2}:
        # spectral bound = 2^{b/2}/2^b = 2^{-b/2}.
        for b in (2, 3, 4):
            bound = discrepancy_spectral_bound(inner_product_matrix(b))
            assert bound == pytest.approx(2 ** (-b / 2), rel=1e-9)


class TestRandomizedLowerBound:
    def test_formula(self):
        assert randomized_lower_bound_bits(2**-10, epsilon=0.0) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            randomized_lower_bound_bits(0.1, epsilon=0.5)
        with pytest.raises(ValueError):
            randomized_lower_bound_bits(0.0)

    def test_ip_randomized_bound_grows(self):
        bounds = [
            discrepancy_report(inner_product_matrix(b))["randomized_lower_bound"]
            for b in (2, 3, 4)
        ]
        assert bounds[0] < bounds[1] < bounds[2]

    def test_report_keys(self):
        report = discrepancy_report(inner_product_matrix(2))
        assert set(report) == {
            "discrepancy",
            "spectral_bound",
            "randomized_lower_bound",
        }

    def test_eq_has_high_discrepancy(self):
        # EQ's huge 0-rectangles make its discrepancy large — discrepancy
        # cannot prove good randomized bounds for EQ (and indeed R(EQ) is
        # O(1) public-coin, so the method is rightly powerless).
        eq = tm_from(np.eye(8, dtype=np.uint8))
        report = discrepancy_report(eq)
        assert report["discrepancy"] > 0.5
        assert report["randomized_lower_bound"] < 1.0
