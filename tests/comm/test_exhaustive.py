"""Tests for exact D(f) and partition-number computation.

The canonical values certified here:

* EQ_n: D = n + 1 (deterministic equality needs everything plus the answer);
* GT_n (greater-than): D = n + 1 as well at these sizes;
* constant functions: D = 0;
* one-bit AND: D = 2.
"""

import numpy as np
import pytest

from repro.comm.exhaustive import (
    communication_complexity,
    dedupe,
    deterministic_cc_of_function,
    optimal_protocol_tree,
    partition_number,
)
from repro.comm.measures import truth_matrix_rank, yao_bound
from repro.comm.partition import Partition
from repro.comm.truth_matrix import TruthMatrix, truth_matrix_from_function


def tm_from(array) -> TruthMatrix:
    a = np.array(array, dtype=np.uint8)
    return TruthMatrix(a, tuple(range(a.shape[0])), tuple(range(a.shape[1])))


def eq_matrix(n_values: int) -> TruthMatrix:
    return tm_from(np.eye(n_values, dtype=np.uint8))


def gt_matrix(n_values: int) -> TruthMatrix:
    return tm_from(
        [[1 if i > j else 0 for j in range(n_values)] for i in range(n_values)]
    )


class TestCommunicationComplexity:
    def test_constant(self):
        assert communication_complexity(tm_from([[1, 1], [1, 1]])) == 0
        assert communication_complexity(tm_from([[0]])) == 0

    def test_and_function(self):
        # AND truth matrix [[0,0],[0,1]]: D = 2.
        assert communication_complexity(tm_from([[0, 0], [0, 1]])) == 2

    def test_xor_function(self):
        assert communication_complexity(tm_from([[0, 1], [1, 0]])) == 2

    def test_eq_on_k_values(self):
        # EQ over 2^b values needs b + 1 bits.
        assert communication_complexity(eq_matrix(2)) == 2
        assert communication_complexity(eq_matrix(4)) == 3
        assert communication_complexity(eq_matrix(8)) == 4

    def test_gt(self):
        assert communication_complexity(gt_matrix(4)) == 3

    def test_one_row_matrix(self):
        # Agent 0's input is irrelevant; agent 1 announces the column class.
        assert communication_complexity(tm_from([[0, 1, 1, 0]])) == 1

    def test_from_function_wrapper(self):
        p = Partition(2, frozenset({0}))
        assert deterministic_cc_of_function(
            lambda bits: bits[0] ^ bits[1], p
        ) == 2

    def test_size_guard(self):
        # The pruned bitset engine affords 18 rows/columns by default...
        big = tm_from(np.eye(19, dtype=np.uint8))
        with pytest.raises(ValueError):
            communication_complexity(big)
        # ...while the legacy enumerator keeps its historical limit of 12.
        legacy_big = tm_from(np.eye(13, dtype=np.uint8))
        with pytest.raises(ValueError):
            communication_complexity(legacy_big, engine="legacy")
        # An explicit limit overrides either default.
        with pytest.raises(ValueError):
            communication_complexity(tm_from(np.eye(5, dtype=np.uint8)), limit=4)


class TestDedupe:
    def test_removes_duplicates(self):
        tm = tm_from([[1, 0, 1], [1, 0, 1], [0, 1, 0]])
        reduced = dedupe(tm)
        assert reduced.shape == (2, 2)

    def test_preserves_complexity(self):
        tm = tm_from([[1, 0], [1, 0], [0, 1]])
        assert communication_complexity(tm) == communication_complexity(dedupe(tm))


class TestOptimalTree:
    def test_tree_cost_matches_dp(self):
        for tm in (eq_matrix(4), gt_matrix(4), tm_from([[0, 0], [0, 1]])):
            cost, tree = optimal_protocol_tree(tm)
            assert cost == communication_complexity(tm)
            assert tree.depth() == cost

    def test_tree_computes_the_function(self):
        tm = eq_matrix(4)
        cost, tree = optimal_protocol_tree(tm)
        for i, rl in enumerate(tm.row_labels):
            for j, cl in enumerate(tm.col_labels):
                assert tree.evaluate(rl, cl)[0] == tm.data[i, j]

    def test_compiled_tree_measures_cost(self):
        tm = gt_matrix(4)
        cost, tree = optimal_protocol_tree(tm)
        protocol = tree.compile()
        worst = max(
            protocol.cost(rl, cl)
            for rl in tm.row_labels
            for cl in tm.col_labels
        )
        assert worst == cost

    def test_tree_accepts_duplicate_labels(self):
        tm = tm_from([[1, 0], [1, 0], [0, 1]])
        cost, tree = optimal_protocol_tree(tm)
        for i, rl in enumerate(tm.row_labels):
            for j, cl in enumerate(tm.col_labels):
                assert tree.evaluate(rl, cl)[0] == tm.data[i, j]


class TestSharedSearch:
    def test_tree_after_cc_costs_no_new_subproblems(self):
        """The bugfix this suite pins down: D(f) followed by the tree used
        to run the exponential DP twice; now the tree is a walk over the
        first search's memo.  The obs counter is the proof."""
        from repro import obs
        from repro.comm import exhaustive

        tm = gt_matrix(6)
        exhaustive._SEARCH_CACHE.clear()
        with obs.scoped():
            communication_complexity(tm)
            first = obs.snapshot()["counters"]["exhaustive.subproblems"]
            assert first > 0
            cost, tree = optimal_protocol_tree(tm)
            second = obs.snapshot()["counters"]["exhaustive.subproblems"]
        # The tree query may touch at most a handful of subrectangles the
        # cost query pruned past (children along non-optimal branches are
        # never needed); in practice it re-solves nothing.
        assert second == first
        assert tree.depth() == cost

    def test_repeated_cc_queries_hit_the_cache(self):
        from repro import obs
        from repro.comm import exhaustive

        tm = eq_matrix(6)
        exhaustive._SEARCH_CACHE.clear()
        with obs.scoped():
            communication_complexity(tm)
            first = obs.snapshot()["counters"]["exhaustive.subproblems"]
            communication_complexity(tm)
            assert obs.snapshot()["counters"]["exhaustive.subproblems"] == first

    def test_cache_bounded(self):
        from repro.comm import exhaustive

        exhaustive._SEARCH_CACHE.clear()
        for i in range(exhaustive._SEARCH_CACHE_LIMIT + 8):
            tm = tm_from([[1 if j == i % 3 else 0 for j in range(3)], [0, 1, 1]])
            communication_complexity(tm)
        assert len(exhaustive._SEARCH_CACHE) <= exhaustive._SEARCH_CACHE_LIMIT


class TestPartitionNumber:
    def test_constant(self):
        assert partition_number(tm_from([[1, 1], [1, 1]])) == 1

    def test_xor(self):
        assert partition_number(tm_from([[0, 1], [1, 0]])) == 4

    def test_eq4(self):
        # EQ on 4 values: 4 diagonal 1-rectangles + covering the 0s.
        d = partition_number(eq_matrix(4))
        assert d >= truth_matrix_rank(eq_matrix(4))
        assert communication_complexity(eq_matrix(4)) >= yao_bound(d)

    def test_sandwich_with_cc(self):
        # log2(d) <= D <= d - 1 roughly; check log2 d <= D on samples.
        import math

        for tm in (eq_matrix(4), gt_matrix(4)):
            d = partition_number(tm)
            assert communication_complexity(tm) >= math.log2(d) - 2


class TestYaoOnExactValues:
    def test_yao_bound_is_a_true_lower_bound(self):
        for tm in (eq_matrix(4), gt_matrix(4), tm_from([[0, 0], [0, 1]])):
            d = partition_number(tm)
            assert communication_complexity(tm) >= yao_bound(d)
