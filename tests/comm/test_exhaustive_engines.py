"""Cross-engine suite: the bitset engine must equal the legacy enumerator.

The pruned bitset engine (branch-and-bound, canonicalization, packed row
masks) is three orders of magnitude faster than the legacy tuple engine —
which makes agreement the whole ballgame.  Hypothesis drives random small
matrices through both engines and demands identical D(f) and d^P(f); the
canonical functions (EQ, GT, IP, DISJ, 2x2 singularity) pin the absolute
values; protocol trees from both engines must be depth-optimal and compute
the function everywhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.comm.exhaustive import (
    ENGINES,
    clear_search_cache,
    communication_complexity,
    optimal_protocol_tree,
    partition_number,
    search_cache_stats,
)
from repro.comm.partition import Partition
from repro.comm.truth_matrix import TruthMatrix, truth_matrix_from_function


def tm_from(array) -> TruthMatrix:
    a = np.array(array, dtype=np.uint8)
    return TruthMatrix(a, tuple(range(a.shape[0])), tuple(range(a.shape[1])))


matrices = st.integers(min_value=1, max_value=6).flatmap(
    lambda r: st.integers(min_value=1, max_value=6).flatmap(
        lambda c: st.lists(
            st.lists(st.integers(min_value=0, max_value=1), min_size=c, max_size=c),
            min_size=r,
            max_size=r,
        )
    )
)


class TestEnginesAgree:
    @given(matrices)
    @settings(max_examples=60, deadline=None)
    def test_communication_complexity_identical(self, rows):
        tm = tm_from(rows)
        assert communication_complexity(
            tm, engine="bitset"
        ) == communication_complexity(tm, engine="legacy")

    @given(matrices)
    @settings(max_examples=60, deadline=None)
    def test_partition_number_identical(self, rows):
        tm = tm_from(rows)
        assert partition_number(tm, engine="bitset") == partition_number(
            tm, engine="legacy"
        )

    @given(matrices)
    @settings(max_examples=25, deadline=None)
    def test_trees_are_optimal_and_correct_on_both_engines(self, rows):
        tm = tm_from(rows)
        costs = {}
        for engine in ENGINES:
            cost, tree = optimal_protocol_tree(tm, engine=engine)
            costs[engine] = cost
            assert tree.depth() == cost
            for i, rl in enumerate(tm.row_labels):
                for j, cl in enumerate(tm.col_labels):
                    assert tree.evaluate(rl, cl)[0] == tm.data[i, j], engine
        assert costs["bitset"] == costs["legacy"]


# -- the canonical functions, 2 bits per side --------------------------------

def _eq(bits):
    return bits[0] == bits[2] and bits[1] == bits[3]


def _gt(bits):
    return (bits[0] * 2 + bits[1]) > (bits[2] * 2 + bits[3])


def _ip(bits):
    return bool((bits[0] & bits[2]) ^ (bits[1] & bits[3]))


def _disj(bits):
    return not ((bits[0] & bits[2]) or (bits[1] & bits[3]))


def _sing_2x2_1bit(bits):
    # [[a, b], [c, d]] singular over the rationals <=> ad == bc.
    return bits[0] * bits[3] == bits[1] * bits[2]


CANONICAL = [
    # (predicate, total_bits, pinned D, pinned d^P)
    (_eq, 4, 3, 8),
    (_gt, 4, 3, 7),
    (_ip, 4, 3, 7),
    (_disj, 4, 3, 7),
    (_sing_2x2_1bit, 4, 3, 7),
]


class TestPinnedValues:
    @pytest.mark.parametrize("f,total_bits,d,dp", CANONICAL)
    def test_canonical_functions_on_both_engines(self, f, total_bits, d, dp):
        partition = Partition(total_bits, frozenset(range(total_bits // 2)))
        tm = truth_matrix_from_function(f, partition)
        for engine in ENGINES:
            assert communication_complexity(tm, engine=engine) == d, engine
            assert partition_number(tm, engine=engine) == dp, engine

    def test_eq8_matches_the_textbook_value(self):
        # EQ over 8 values: ceil(log2 8) + 1 = 4, on both engines.
        tm = tm_from(np.eye(8, dtype=np.uint8))
        for engine in ENGINES:
            assert communication_complexity(tm, engine=engine) == 4


class TestSharedMemo:
    """Satellite proof: every query family shares one search per matrix."""

    def test_partition_number_reuses_the_search_memo(self):
        tm = tm_from(np.eye(6, dtype=np.uint8))
        for engine in ENGINES:
            clear_search_cache()
            with obs.scoped():
                partition_number(tm, engine=engine)
                first = obs.snapshot()["counters"]["exhaustive.subproblems"]
                assert first > 0
                partition_number(tm, engine=engine)
                assert (
                    obs.snapshot()["counters"]["exhaustive.subproblems"] == first
                ), engine

    def test_d_tree_and_partition_number_share_one_search(self):
        tm = tm_from([[1 if i > j else 0 for j in range(5)] for i in range(5)])
        for engine in ENGINES:
            clear_search_cache()
            with obs.scoped():
                communication_complexity(tm, engine=engine)
                optimal_protocol_tree(tm, engine=engine)
                partition_number(tm, engine=engine)
                counters = obs.snapshot()["counters"]
                # One miss (the first call), then pure hits.
                assert counters["exhaustive.search_cache.misses"] == 1, engine
                assert counters["exhaustive.search_cache.hits"] == 2, engine
            stats = search_cache_stats()
            assert stats["size"] == 1
            assert stats["entries"][0]["engine"] == engine
            assert stats["entries"][0]["hits"] == 2

    def test_engines_do_not_share_cache_entries(self):
        tm = tm_from(np.eye(4, dtype=np.uint8))
        clear_search_cache()
        communication_complexity(tm, engine="bitset")
        communication_complexity(tm, engine="legacy")
        stats = search_cache_stats()
        assert stats["size"] == 2
        assert {e["engine"] for e in stats["entries"]} == set(ENGINES)
