"""Tests for the fault-injecting channel layer."""

import pytest

from repro.comm.channel import ChannelClosed
from repro.comm.faults import (
    BitFlipFaults,
    BurstFaults,
    ChannelDropFaults,
    CompositeFaults,
    DelayFaults,
    Delivery,
    DuplicateFaults,
    ErasureFaults,
    FaultEvent,
    FaultLog,
    FaultyChannel,
    NoFaults,
)


class TestFaultLog:
    def test_count_and_kinds(self):
        log = FaultLog()
        log.record(FaultEvent(0, 0, "flip", 2))
        log.record(FaultEvent(1, 1, "flip", 1))
        log.record(FaultEvent(2, 0, "erase", 5))
        assert log.count() == 3
        assert log.count("flip") == 2
        assert log.kinds() == {"flip": 2, "erase": 1}
        assert log.bits_affected == 8


class TestModels:
    def test_no_faults_is_identity(self):
        delivery = NoFaults().apply(0, 0, (1, 0, 1))
        assert delivery.bits == (1, 0, 1)
        assert delivery.copies == 1 and delivery.delay == 0
        assert not delivery.drop_channel and not delivery.events

    def test_bit_flip_certain(self):
        delivery = BitFlipFaults(1.0).apply(0, 0, (1, 0, 1))
        assert delivery.bits == (0, 1, 0)
        assert delivery.events[0].kind == "flip"
        assert delivery.events[0].bits_affected == 3

    def test_bit_flip_replay(self):
        a, b = BitFlipFaults(0.5, seed=7), BitFlipFaults(0.5, seed=7)
        payload = tuple(i % 2 for i in range(64))
        for index in range(10):
            assert a.apply(index, 0, payload).bits == b.apply(index, 0, payload).bits

    def test_reset_rewinds_randomness(self):
        model = BitFlipFaults(0.5, seed=3)
        payload = (1,) * 32
        first = model.apply(0, 0, payload).bits
        model.reset()
        assert model.apply(0, 0, payload).bits == first

    def test_burst_is_contiguous(self):
        delivery = BurstFaults(1.0, burst_len=4, seed=1).apply(0, 0, (0,) * 16)
        flipped = [i for i, bit in enumerate(delivery.bits) if bit]
        assert 1 <= len(flipped) <= 4
        assert flipped == list(range(flipped[0], flipped[0] + len(flipped)))

    def test_erasure_truncates(self):
        delivery = ErasureFaults(1.0, seed=0).apply(0, 0, (1,) * 10)
        assert len(delivery.bits) < 10
        assert delivery.bits == (1,) * len(delivery.bits)

    def test_duplicate_doubles(self):
        delivery = DuplicateFaults(1.0).apply(0, 0, (1, 0))
        assert delivery.copies == 2

    def test_delay_holds_back(self):
        delivery = DelayFaults(1.0, max_delay=3, seed=0).apply(0, 0, (1,))
        assert 1 <= delivery.delay <= 3

    def test_drop_after_messages(self):
        model = ChannelDropFaults(after_messages=2)
        assert not model.apply(1, 0, (1,)).drop_channel
        assert model.apply(2, 0, (1,)).drop_channel

    def test_composite_merges(self):
        model = CompositeFaults(
            [DuplicateFaults(1.0), DuplicateFaults(1.0), DelayFaults(1.0, seed=1)]
        )
        delivery = model.apply(0, 0, (1, 1))
        assert delivery.copies == 4
        assert delivery.delay >= 1
        assert len(delivery.events) == 3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BitFlipFaults(1.5)
        with pytest.raises(ValueError):
            BurstFaults(0.5, burst_len=0)
        with pytest.raises(ValueError):
            DelayFaults(0.5, max_delay=0)
        with pytest.raises(ValueError):
            ChannelDropFaults()
        with pytest.raises(ValueError):
            CompositeFaults([])


class TestFaultyChannel:
    def test_transcript_records_sender_cost_not_delivery(self):
        ch = FaultyChannel(BitFlipFaults(1.0))
        ch.send(0, [1, 0, 1])
        assert ch.transcript.messages[0].bits == (1, 0, 1)
        assert ch.recv(1, 3) == (0, 1, 0)
        assert ch.fault_log.count("flip") == 1

    def test_erasure_starves_receiver(self):
        ch = FaultyChannel(ErasureFaults(1.0, seed=0))
        ch.send(0, [1] * 10)
        assert ch.available(1) < 10
        assert ch.transcript.total_bits == 10

    def test_duplicate_delivers_twice(self):
        ch = FaultyChannel(DuplicateFaults(1.0))
        ch.send(0, [1, 0])
        assert ch.available(1) == 4
        assert ch.recv(1, 4) == (1, 0, 1, 0)
        assert ch.transcript.total_bits == 2

    def test_delay_releases_after_later_sends(self):
        ch = FaultyChannel(DelayFaults(1.0, max_delay=1, seed=0))
        ch.send(0, [1, 1])
        assert ch.available(1) == 0
        assert not ch.drained()  # held bits still count as undrained
        ch.fault_model = NoFaults()  # let the releasing send arrive clean
        ch.send(1, [0])
        assert ch.available(1) == 2

    def test_drop_closes_channel(self):
        ch = FaultyChannel(ChannelDropFaults(after_messages=1))
        ch.send(0, [1])
        with pytest.raises(ChannelClosed):
            ch.send(1, [0])
        with pytest.raises(ChannelClosed):
            ch.send(0, [1])

    def test_delivered_bits_accounting(self):
        ch = FaultyChannel(NoFaults())
        ch.send(0, [1, 0, 1])
        ch.send(1, [0])
        assert ch.delivered_bits == 4

    def test_default_model_is_clean(self):
        ch = FaultyChannel()
        ch.send(0, [1, 0])
        assert ch.recv(1, 2) == (1, 0)
        assert ch.fault_log.count() == 0

    def test_delivery_defaults(self):
        d = Delivery((1, 0))
        assert d.copies == 1 and d.delay == 0 and not d.drop_channel
