"""Tests for lower-bound measures (Yao, fooling sets, rank, counting)."""

import math

import numpy as np
import pytest

from repro.comm.measures import (
    counting_bound,
    counting_bound_on_matrix,
    fooling_set_bound,
    greedy_fooling_set,
    is_fooling_set,
    rank_bound,
    rectangle_partition_lower_bound_from_rank,
    summary,
    truth_matrix_rank,
    yao_bound,
)
from repro.comm.truth_matrix import TruthMatrix


def tm_from(array) -> TruthMatrix:
    a = np.array(array, dtype=np.uint8)
    return TruthMatrix(
        a,
        tuple(range(a.shape[0])),
        tuple(range(a.shape[1])),
    )


IDENTITY8 = tm_from(np.eye(8, dtype=np.uint8))


class TestRankBound:
    def test_identity_full_rank(self):
        assert truth_matrix_rank(IDENTITY8) == 8
        assert rank_bound(IDENTITY8) == pytest.approx(3.0)

    def test_rank_deficient(self):
        tm = tm_from([[1, 1], [1, 1]])
        assert truth_matrix_rank(tm) == 1
        assert rank_bound(tm) == 0.0

    def test_zero_matrix(self):
        tm = tm_from([[0, 0], [0, 0]])
        assert truth_matrix_rank(tm) == 0


class TestFoolingSets:
    def test_diagonal_is_fooling_set(self):
        pairs = [(i, i) for i in range(8)]
        assert is_fooling_set(IDENTITY8, pairs)

    def test_non_fooling_rejected(self):
        tm = tm_from([[1, 1], [1, 1]])
        assert not is_fooling_set(tm, [(0, 0), (1, 1)])

    def test_pairs_must_hit_value(self):
        assert not is_fooling_set(IDENTITY8, [(0, 1)])

    def test_greedy_finds_diagonal(self):
        found = greedy_fooling_set(IDENTITY8)
        assert len(found) == 8
        assert is_fooling_set(IDENTITY8, found)

    def test_greedy_zero_chromatic(self):
        tm = tm_from([[0, 1], [1, 0]])
        found = greedy_fooling_set(tm, value=0)
        assert is_fooling_set(tm, found, value=0)

    def test_fooling_bound_eq(self):
        assert fooling_set_bound(IDENTITY8) == pytest.approx(3.0)

    def test_fooling_bound_no_ones(self):
        assert fooling_set_bound(tm_from([[0]])) == 0.0


class TestCountingBound:
    def test_basic_ratio(self):
        assert counting_bound(1024, 2) == pytest.approx(9.0)

    def test_zero_ones(self):
        assert counting_bound(0, 5) == 0.0

    def test_rejects_zero_rectangle(self):
        with pytest.raises(ValueError):
            counting_bound(10, 0)

    def test_big_int_exactness(self):
        # Values beyond float range must not overflow.
        huge = 3 ** (10**4)
        bound = counting_bound(huge, 3)
        assert bound == pytest.approx((10**4 - 1) * math.log2(3), rel=1e-9)

    def test_on_matrix_identity(self):
        # EQ_n: N ones = n, max 1-rect = 1 -> bound = log2 n.
        assert counting_bound_on_matrix(IDENTITY8) == pytest.approx(3.0)

    def test_on_matrix_no_ones(self):
        assert counting_bound_on_matrix(tm_from([[0]])) == 0.0


class TestYao:
    def test_bound_formula(self):
        assert yao_bound(16) == pytest.approx(2.0)
        assert yao_bound(1) == 0.0
        with pytest.raises(ValueError):
            yao_bound(0)

    def test_rank_lower_bounds_partition_number(self):
        assert rectangle_partition_lower_bound_from_rank(IDENTITY8) == 8


class TestSummary:
    def test_keys_present(self):
        s = summary(IDENTITY8)
        assert set(s) == {
            "rows",
            "cols",
            "ones",
            "rank",
            "rank_bound",
            "fooling_bound",
            "counting_bound",
        }
        assert s["ones"] == 8
