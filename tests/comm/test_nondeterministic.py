"""Tests for nondeterministic cover numbers."""

import numpy as np
import pytest

from repro.comm.exhaustive import communication_complexity
from repro.comm.nondeterministic import (
    aho_ullman_yannakakis_gap,
    certificate_asymmetry_on_eq,
    cover_number_exact,
    cover_number_greedy,
    nondeterministic_cc,
)
from repro.comm.truth_matrix import TruthMatrix


def tm_from(array) -> TruthMatrix:
    a = np.array(array, dtype=np.uint8)
    return TruthMatrix(a, tuple(range(a.shape[0])), tuple(range(a.shape[1])))


class TestExactCover:
    def test_constant_one(self):
        assert cover_number_exact(tm_from([[1, 1], [1, 1]])) == 1

    def test_no_ones(self):
        assert cover_number_exact(tm_from([[0, 0], [0, 0]])) == 0

    def test_identity_needs_n(self):
        # The diagonal is a fooling set: every 1 needs its own rectangle.
        for n in (2, 3, 4, 5):
            assert cover_number_exact(tm_from(np.eye(n, dtype=np.uint8))) == n

    def test_overlap_beats_partition(self):
        # A plus-shaped pattern: cover with 2 overlapping rectangles, but a
        # disjoint partition needs 3.
        plus = tm_from([[0, 1, 0], [1, 1, 1], [0, 1, 0]])
        assert cover_number_exact(plus) == 2

    def test_zero_cover(self):
        xor = tm_from([[0, 1], [1, 0]])
        assert cover_number_exact(xor, value=0) == 2

    def test_size_guard(self):
        big = tm_from(np.ones((13, 2), dtype=np.uint8))
        with pytest.raises(ValueError):
            cover_number_exact(big)


class TestGreedyCover:
    def test_greedy_upper_bounds_exact(self):
        import numpy.random as npr

        rng = npr.default_rng(0)
        for _ in range(10):
            data = rng.integers(0, 2, size=(6, 6)).astype(np.uint8)
            tm = tm_from(data)
            if tm.ones_count() == 0:
                continue
            assert cover_number_greedy(tm) >= cover_number_exact(tm)

    def test_greedy_constant(self):
        assert cover_number_greedy(tm_from([[1, 1], [1, 1]])) == 1

    def test_greedy_empty(self):
        assert cover_number_greedy(tm_from([[0]])) == 0


class TestNondeterministicCC:
    def test_eq_values(self):
        eq4 = tm_from(np.eye(4, dtype=np.uint8))
        assert nondeterministic_cc(eq4, 1) == pytest.approx(2.0)

    def test_lower_bounds_deterministic(self):
        # max(N0, N1) <= D on canonical small functions.
        for data in ([[0, 1], [1, 0]], [[0, 0], [0, 1]], np.eye(4).tolist()):
            tm = tm_from(data)
            d = communication_complexity(tm)
            assert nondeterministic_cc(tm, 1) <= d + 1e-9
            assert nondeterministic_cc(tm, 0) <= d + 1e-9

    def test_auy_gap(self):
        n0, n1, d = aho_ullman_yannakakis_gap(tm_from(np.eye(4, dtype=np.uint8)))
        assert max(n0, n1) <= d
        # The AUY upper bound D = O((N0+1)(N1+1)) at toy scale:
        assert d <= (n0 + 1) * (n1 + 1) + 1

    def test_certificate_asymmetry(self):
        c1, c0 = certificate_asymmetry_on_eq(6)
        assert c1 == 6  # equality certificates: one per diagonal point
        assert c0 <= c1  # inequality certificates are never more expensive
