"""Tests for one-way communication complexity."""

import numpy as np
import pytest

from repro.comm.one_way import (
    one_way_cc,
    one_way_gap_example,
    one_way_lower_bounds_two_way,
    one_way_singularity_log2,
)
from repro.comm.truth_matrix import TruthMatrix


def tm_from(array) -> TruthMatrix:
    a = np.array(array, dtype=np.uint8)
    return TruthMatrix(a, tuple(range(a.shape[0])), tuple(range(a.shape[1])))


class TestOneWayCC:
    def test_constant_function_free(self):
        assert one_way_cc(tm_from([[1, 1], [1, 1]])) == 0

    def test_eq_needs_everything(self):
        # EQ over 2^b values: all rows distinct -> exactly b bits one-way.
        for b in (1, 2, 3):
            tm = tm_from(np.eye(1 << b, dtype=np.uint8))
            assert one_way_cc(tm, "0to1") == b
            assert one_way_cc(tm, "1to0") == b

    def test_direction_asymmetry(self):
        # 4 distinct rows but only 2 distinct columns.
        tm = tm_from([[0, 0], [0, 1], [1, 0], [1, 1]])
        assert one_way_cc(tm, "0to1") == 2
        assert one_way_cc(tm, "1to0") == 1

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            one_way_cc(tm_from([[1]]), "sideways")

    def test_duplicate_rows_compress(self):
        tm = tm_from([[1, 0], [1, 0], [0, 1], [0, 1]])
        assert one_way_cc(tm, "0to1") == 1


class TestRelationsToTwoWay:
    def test_sandwich_on_canonical(self):
        for data in (np.eye(4).tolist(), [[0, 1], [1, 0]], [[0, 0], [0, 1]]):
            assert one_way_lower_bounds_two_way(tm_from(data))

    def test_index_function_gap(self):
        one_way, two_way_upper = one_way_gap_example()
        # INDEX with b=3: one-way must carry the whole 8-bit table.
        assert one_way == 8
        assert two_way_upper == 4
        assert one_way >= 2 * two_way_upper

    def test_singularity_one_way_scales_as_kn2(self):
        small = one_way_singularity_log2(7, 2)
        larger_n = one_way_singularity_log2(13, 2)
        larger_k = one_way_singularity_log2(7, 5)
        assert larger_n > 3 * small  # (n-1)^2/4 quadratic growth
        assert larger_k > 2 * small  # log2(q) growth in k
