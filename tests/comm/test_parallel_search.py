"""Parallel shared-bound root fan-out == sequential bitset == legacy oracle.

The parallel mode prunes each root split against an incumbent folded from
the worker's local best and a cross-process bound file; its soundness
claim (docs/performance.md §6) is that a split is only dropped when a
*witnessed* cost proves it cannot win.  The executable form of that claim:
the returned integers are identical at every worker count — Hypothesis
over random ≤6×6 matrices, workers ∈ {1, 2, 4}, both D(f) and d^P(f).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.exhaustive import (
    communication_complexity,
    configure_search_cache,
    partition_number,
    search_cache_stats,
)
from repro.comm.truth_matrix import TruthMatrix

WORKERS = (1, 2, 4)


def tm_from(array) -> TruthMatrix:
    a = np.array(array, dtype=np.uint8)
    return TruthMatrix(a, tuple(range(a.shape[0])), tuple(range(a.shape[1])))


matrices = st.integers(min_value=1, max_value=6).flatmap(
    lambda r: st.integers(min_value=1, max_value=6).flatmap(
        lambda c: st.lists(
            st.lists(st.integers(min_value=0, max_value=1), min_size=c, max_size=c),
            min_size=r,
            max_size=r,
        )
    )
)


class TestParallelEqualsSequential:
    @given(matrices)
    @settings(max_examples=12, deadline=None)
    def test_d_identical_at_every_worker_count(self, rows):
        tm = tm_from(rows)
        sequential = communication_complexity(tm, workers=1)
        oracle = communication_complexity(tm, engine="legacy")
        assert sequential == oracle
        for workers in WORKERS:
            assert communication_complexity(tm, workers=workers) == sequential

    @given(matrices)
    @settings(max_examples=12, deadline=None)
    def test_leaves_identical_at_every_worker_count(self, rows):
        tm = tm_from(rows)
        sequential = partition_number(tm, workers=1)
        oracle = partition_number(tm, engine="legacy")
        assert sequential == oracle
        for workers in WORKERS:
            assert partition_number(tm, workers=workers) == sequential

    def test_pinned_values_parallel(self):
        # EQ_3: identity 8x8 — D = 4 (known), leaves = 2*8 - 1... pinned
        # through the sequential engine rather than by hand, then asserted
        # stable across worker counts.
        eye = np.eye(8, dtype=np.uint8)
        tm = TruthMatrix(eye, tuple(range(8)), tuple(range(8)))
        d = communication_complexity(tm)
        leaves = partition_number(tm)
        for workers in WORKERS:
            assert communication_complexity(tm, workers=workers) == d
            assert partition_number(tm, workers=workers) == leaves

    def test_trivial_matrices_parallel(self):
        for array in ([[0]], [[1]], [[0, 0], [0, 0]], [[0, 1]]):
            tm = tm_from(array)
            d = communication_complexity(tm)
            leaves = partition_number(tm)
            assert communication_complexity(tm, workers=4) == d
            assert partition_number(tm, workers=4) == leaves

    def test_legacy_engine_ignores_workers(self):
        tm = tm_from([[0, 1], [1, 0]])
        assert communication_complexity(tm, engine="legacy", workers=4) == 2

    def test_env_var_drives_parallel_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        tm = tm_from([[0, 1, 1], [1, 0, 1], [1, 1, 0]])
        assert communication_complexity(tm) == communication_complexity(
            tm, workers=1
        )


class TestSearchCacheConfiguration:
    def test_limit_round_trip(self):
        try:
            assert configure_search_cache(5) == 5
            assert search_cache_stats()["limit"] == 5
            assert len(search_cache_stats()["entries"]) <= 5
        finally:
            assert configure_search_cache() == 64

    def test_shrink_evicts_immediately(self):
        try:
            configure_search_cache(64)
            for value in range(8):
                tm = tm_from([[value >> 2 & 1, value >> 1 & 1], [value & 1, 1]])
                communication_complexity(tm)
            configure_search_cache(2)
            assert search_cache_stats()["size"] <= 2
        finally:
            configure_search_cache()

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEARCH_CACHE_LIMIT", "7")
        try:
            assert configure_search_cache() == 7
        finally:
            monkeypatch.delenv("REPRO_SEARCH_CACHE_LIMIT")
            assert configure_search_cache() == 64

    def test_malformed_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEARCH_CACHE_LIMIT", "lots")
        import pytest

        with pytest.raises(ValueError):
            configure_search_cache()
        monkeypatch.delenv("REPRO_SEARCH_CACHE_LIMIT")
        configure_search_cache()
