"""Tests for input partitions (Definition 2.1 and friends)."""

import pytest

from repro.comm.bits import MatrixBitCodec
from repro.comm.partition import (
    Partition,
    checkerboard,
    from_entry_assignment,
    interleaved,
    pi_zero,
    random_even_partition,
    row_split,
)
from repro.util.rng import ReproducibleRNG


class TestPartitionBasics:
    def test_sizes_and_evenness(self):
        p = Partition(10, frozenset(range(5)))
        assert p.sizes() == (5, 5)
        assert p.is_even()

    def test_uneven(self):
        p = Partition(10, frozenset(range(3)))
        assert not p.is_even()
        assert p.is_even(tolerance=4)

    def test_owner(self):
        p = Partition(4, frozenset({0, 2}))
        assert p.owner(0) == 0 and p.owner(1) == 1
        with pytest.raises(ValueError):
            p.owner(4)

    def test_agent1_complement(self):
        p = Partition(6, frozenset({0, 1, 2}))
        assert p.agent1 == frozenset({3, 4, 5})

    def test_out_of_range_positions_rejected(self):
        with pytest.raises(ValueError):
            Partition(4, frozenset({4}))

    def test_split_input(self):
        p = Partition(4, frozenset({0, 3}))
        v0, v1 = p.split_input([1, 0, 1, 1])
        assert v0 == {0: 1, 3: 1}
        assert v1 == {1: 0, 2: 1}
        with pytest.raises(ValueError):
            p.split_input([1, 0])

    def test_swapped(self):
        p = Partition(4, frozenset({0}))
        assert p.swapped().agent0 == frozenset({1, 2, 3})

    def test_relabel(self):
        p = Partition(3, frozenset({0}))
        relabeled = p.relabel([2, 0, 1])  # position 0 -> 2
        assert relabeled.agent0 == frozenset({2})
        with pytest.raises(ValueError):
            p.relabel([0, 0, 1])


class TestDomination:
    def test_count_in(self):
        p = Partition(6, frozenset({0, 1, 2}))
        assert p.count_in([0, 1, 5]) == (2, 1)

    def test_dominates(self):
        p = Partition(6, frozenset({0, 1, 2}))
        assert p.dominates(0, [0, 1, 5])
        assert not p.dominates(1, [0, 1, 5])
        # Exactly half counts as dominating for both (the paper's >= 1/2).
        assert p.dominates(0, [0, 5])
        assert p.dominates(1, [0, 5])

    def test_fraction_read(self):
        p = Partition(6, frozenset({0, 1, 2}))
        assert p.fraction_read(0, [0, 1, 3, 4]) == 0.5
        assert p.fraction_read(1, []) == 1.0


class TestCanonicalPartitions:
    def test_pi_zero_definition(self):
        codec = MatrixBitCodec(6, 6, 2)
        p = pi_zero(codec)
        assert p.is_even()
        for position in p.agent0:
            _, j, _ = codec.entry_of_bit(position)
            assert j < 3

    def test_pi_zero_needs_even_square(self):
        with pytest.raises(ValueError):
            pi_zero(MatrixBitCodec(3, 3, 1))
        with pytest.raises(ValueError):
            pi_zero(MatrixBitCodec(4, 6, 1))

    def test_row_split(self):
        codec = MatrixBitCodec(4, 4, 1)
        p = row_split(codec)
        assert p.is_even()
        for position in p.agent0:
            i, _, _ = codec.entry_of_bit(position)
            assert i < 2

    def test_interleaved_even(self):
        codec = MatrixBitCodec(4, 4, 1)
        assert interleaved(codec).is_even()

    def test_checkerboard_even(self):
        codec = MatrixBitCodec(4, 4, 2)
        assert checkerboard(codec).is_even()

    def test_random_even(self):
        rng = ReproducibleRNG(0)
        codec = MatrixBitCodec(4, 4, 3)
        for _ in range(5):
            assert random_even_partition(rng, codec).is_even()

    def test_random_even_varies(self):
        rng = ReproducibleRNG(1)
        codec = MatrixBitCodec(4, 4, 2)
        partitions = {random_even_partition(rng, codec).agent0 for _ in range(5)}
        assert len(partitions) > 1

    def test_from_entry_assignment(self):
        codec = MatrixBitCodec(2, 2, 2)
        p = from_entry_assignment(codec, [(0, 0), (1, 1)])
        assert p.is_even()
        assert set(codec.entry_positions(0, 0)) <= p.agent0
        assert set(codec.entry_positions(1, 1)) <= p.agent0
        assert not set(codec.entry_positions(0, 1)) & p.agent0
