"""Tests for the min-over-partitions search (Yao's outer minimum)."""

import pytest

from repro.comm.partition_search import (
    best_partition_cc,
    count_even_partitions,
    even_partitions,
    min_partition_singularity,
    partition_sensitivity_example,
)


class TestEnumeration:
    def test_counts(self):
        assert count_even_partitions(4) == 3
        assert count_even_partitions(6) == 10
        assert count_even_partitions(4, dedupe_symmetry=False) == 6

    def test_enumeration_matches_count(self):
        for bits in (2, 4, 6):
            assert sum(1 for _ in even_partitions(bits)) == count_even_partitions(bits)

    def test_all_even(self):
        for p in even_partitions(6):
            assert p.is_even()

    def test_symmetry_dedupe_fixes_position_zero(self):
        for p in even_partitions(6):
            assert 0 in p.agent0

    def test_validation(self):
        with pytest.raises(ValueError):
            list(even_partitions(3))
        with pytest.raises(ValueError):
            list(even_partitions(0))


class TestBestPartition:
    def test_parity_is_partition_insensitive(self):
        result, _ = partition_sensitivity_example()
        assert result.best_cost == result.worst_cost == 2
        assert result.spread == 0

    def test_eq_pairs_is_partition_sensitive(self):
        _, result = partition_sensitivity_example()
        # Natural split: D = 3 (EQ on 2 bits); matched-bit split: D = 2.
        assert result.best_cost == 2
        assert result.worst_cost == 3
        assert result.spread == 1

    def test_constant_function(self):
        result = best_partition_cc(lambda bits: True, 4)
        assert result.best_cost == result.worst_cost == 0

    def test_histogram_sums(self):
        _, result = partition_sensitivity_example()
        assert sum(result.histogram().values()) == len(result.costs)

    def test_partition_cap(self):
        with pytest.raises(ValueError):
            best_partition_cc(lambda bits: True, 20, max_partitions=10)


class TestSingularityUnderAllPartitions:
    def test_2x2_k1_exact_landscape(self):
        result = min_partition_singularity(1)
        # The {a,d}/{b,c} split lets each agent announce its local product:
        # 2 bits suffice; the column split needs 3.
        assert result.best_cost == 2
        assert result.worst_cost == 3
        assert result.histogram() == {2: 1, 3: 2}

    def test_minimum_positive(self):
        # Even minimized over partitions, singularity cannot be free.
        assert min_partition_singularity(1).best_cost >= 2

    def test_sweep_is_worker_count_invariant(self):
        serial = min_partition_singularity(1, workers=1)
        parallel = min_partition_singularity(1, workers=2)
        assert serial.costs == parallel.costs
        assert serial.best_partition == parallel.best_partition
        assert serial.worst_partition == parallel.worst_partition
