"""Property-based tests across the communication layer.

Hypothesis drives random truth matrices through the whole measure stack;
the invariants are the textbook inequalities every method must respect.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.discrepancy import discrepancy_exact, discrepancy_spectral_bound
from repro.comm.exhaustive import communication_complexity, dedupe, partition_number
from repro.comm.measures import truth_matrix_rank, yao_bound
from repro.comm.nondeterministic import cover_number_exact, cover_number_greedy
from repro.comm.one_way import one_way_cc
from repro.comm.rectangles import (
    greedy_monochromatic_partition,
    max_one_rectangle_exact,
    max_one_rectangle_greedy,
    verify_partition,
)
from repro.comm.rounds import round_bounded_cc, round_profile
from repro.comm.truth_matrix import TruthMatrix


def tm_strategy(max_rows: int = 5, max_cols: int = 5):
    return st.tuples(
        st.integers(min_value=1, max_value=max_rows),
        st.integers(min_value=1, max_value=max_cols),
        st.integers(min_value=0, max_value=2**30 - 1),
    ).map(_build)


def _build(spec):
    rows, cols, seed = spec
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, size=(rows, cols)).astype(np.uint8)
    return TruthMatrix(
        data, tuple(range(rows)), tuple(range(cols))
    )


@settings(max_examples=40, deadline=None)
@given(tm_strategy())
def test_greedy_partition_always_tiles(tm):
    pieces = greedy_monochromatic_partition(tm)
    assert verify_partition(tm, pieces)


@settings(max_examples=40, deadline=None)
@given(tm_strategy())
def test_greedy_rectangle_never_beats_exact(tm):
    exact_area, _, _ = max_one_rectangle_exact(tm)
    greedy_area, _, _ = max_one_rectangle_greedy(tm)
    assert greedy_area <= exact_area


@settings(max_examples=30, deadline=None)
@given(tm_strategy())
def test_yao_bound_sound(tm):
    d = communication_complexity(tm)
    assert d >= yao_bound(partition_number(tm)) - 1e-9


@settings(max_examples=30, deadline=None)
@given(tm_strategy())
def test_rank_bound_sound(tm):
    # log2 rank <= D + 1 (rank <= #leaves <= 2^D; +1 covers the 1x... edge).
    import math

    rank = truth_matrix_rank(tm)
    if rank > 0:
        assert math.log2(rank) <= communication_complexity(tm) + 1 + 1e-9


@settings(max_examples=30, deadline=None)
@given(tm_strategy())
def test_one_way_at_least_two_way_sandwich(tm):
    d = communication_complexity(tm)
    best_one_way = min(one_way_cc(tm, "0to1"), one_way_cc(tm, "1to0"))
    # One message then receiver decides; the common-knowledge D needs at
    # most one more bit than any one-way protocol (announce the answer).
    assert d <= best_one_way + 1


@settings(max_examples=25, deadline=None)
@given(tm_strategy())
def test_round_profile_monotone_and_bounded(tm):
    profile = round_profile(tm, max_rounds=3)
    assert all(a >= b for a, b in zip(profile, profile[1:]))
    d = communication_complexity(tm)
    assert profile[-1] <= d  # receiver-decides never exceeds common-knowledge


@settings(max_examples=25, deadline=None)
@given(tm_strategy(4, 4))
def test_cover_numbers_sandwich(tm):
    # C^1 exact <= greedy; C^1 <= number of 1s; 2^D >= C^1 (leaves cover).
    c1 = cover_number_exact(tm, 1)
    assert c1 <= cover_number_greedy(tm, 1)
    assert c1 <= int(tm.ones_count())
    assert 2 ** communication_complexity(tm) >= c1


@settings(max_examples=25, deadline=None)
@given(tm_strategy())
def test_discrepancy_in_unit_interval_and_spectral_dominates(tm):
    d = discrepancy_exact(tm)
    assert 0 <= d <= 1
    assert d <= discrepancy_spectral_bound(tm) + 1e-9


@settings(max_examples=30, deadline=None)
@given(tm_strategy())
def test_dedupe_preserves_all_measures(tm):
    reduced = dedupe(tm)
    assert communication_complexity(tm) == communication_complexity(reduced)
    assert one_way_cc(tm, "0to1") == one_way_cc(reduced, "0to1")
