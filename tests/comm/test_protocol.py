"""Tests for protocol trees and their compilation to executable protocols."""

import pytest

from repro.comm.protocol import Leaf, Node, ProtocolTree, TreeProtocol


def xor_tree() -> ProtocolTree:
    """Two-bit protocol computing x XOR y (each agent holds one bit)."""
    return ProtocolTree(
        Node(
            0,
            lambda x: x,
            Node(1, lambda y: y, Leaf(0), Leaf(1)),
            Node(1, lambda y: y, Leaf(1), Leaf(0)),
        )
    )


class TestProtocolTree:
    def test_evaluate_xor(self):
        tree = xor_tree()
        for x in (0, 1):
            for y in (0, 1):
                value, bits = tree.evaluate(x, y)
                assert value == x ^ y
                assert bits == 2

    def test_depth_and_leaves(self):
        tree = xor_tree()
        assert tree.depth() == 2
        assert tree.leaf_count() == 4

    def test_single_leaf(self):
        tree = ProtocolTree(Leaf("constant"))
        assert tree.evaluate("anything", "else") == ("constant", 0)
        assert tree.depth() == 0
        assert tree.leaf_count() == 1

    def test_bad_owner_rejected(self):
        with pytest.raises(ValueError):
            Node(2, lambda x: 0, Leaf(0), Leaf(1))

    def test_non_bit_predicate_detected(self):
        tree = ProtocolTree(Node(0, lambda x: 5, Leaf(0), Leaf(1)))
        with pytest.raises(ValueError):
            tree.evaluate(0, 0)


class TestLeafRectangles:
    def test_leaves_induce_rectangles(self):
        tree = xor_tree()
        rects = tree.leaf_rectangles([0, 1], [0, 1])
        # Four leaves, each covering exactly one cell here.
        assert len(rects) == 4
        for rows, cols, value in rects:
            for x in rows:
                for y in cols:
                    assert tree.evaluate(x, y)[0] == value

    def test_rectangles_partition_input_space(self):
        tree = xor_tree()
        rects = tree.leaf_rectangles([0, 1], [0, 1])
        covered = [(x, y) for rows, cols, _ in rects for x in rows for y in cols]
        assert sorted(covered) == sorted(
            (x, y) for x in (0, 1) for y in (0, 1)
        )

    def test_constant_function_single_rectangle(self):
        tree = ProtocolTree(Leaf(1))
        rects = tree.leaf_rectangles([0, 1, 2], ["a", "b"])
        assert len(rects) == 1
        rows, cols, value = rects[0]
        assert rows == {0, 1, 2} and cols == {"a", "b"} and value == 1


class TestTreeProtocolCompilation:
    def test_compiled_protocol_matches_tree(self):
        tree = xor_tree()
        protocol = tree.compile()
        assert isinstance(protocol, TreeProtocol)
        for x in (0, 1):
            for y in (0, 1):
                result = protocol.run(x, y)
                assert result.agreed_output() == x ^ y
                assert result.bits_exchanged == tree.evaluate(x, y)[1]

    def test_worst_case_cost(self):
        protocol = xor_tree().compile()
        pairs = [(x, y) for x in (0, 1) for y in (0, 1)]
        assert protocol.worst_case_cost(pairs) == 2

    def test_is_correct_on(self):
        protocol = xor_tree().compile()
        pairs = [(x, y) for x in (0, 1) for y in (0, 1)]
        assert protocol.is_correct_on(pairs, lambda x, y: x ^ y)
        assert not protocol.is_correct_on(pairs, lambda x, y: x & y)
