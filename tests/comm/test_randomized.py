"""Tests for the randomized-protocol evaluation harness."""

import pytest

from repro.comm.agents import AgentProgram, Recv, Send
from repro.comm.randomized import (
    RandomizedProtocol,
    amplify_by_majority,
    estimate_cost,
    estimate_error,
    worst_input_error,
)
from repro.util.rng import ReproducibleRNG


class NoisyEquality(RandomizedProtocol):
    """One-round parity EQ on 2 bits: errs with probability 1/2 on unequal
    inputs — a controlled error source for the estimator tests."""

    def _mask(self, coins: ReproducibleRNG):
        return coins.spawn("mask").bit_vector(2)

    def agent0(self, x, coins) -> AgentProgram:
        mask = self._mask(coins)
        parity = (x[0] & mask[0]) ^ (x[1] & mask[1])
        yield Send([parity])
        (answer,) = yield Recv(1)
        return bool(answer)

    def agent1(self, y, coins) -> AgentProgram:
        mask = self._mask(coins)
        (received,) = yield Recv(1)
        mine = (y[0] & mask[0]) ^ (y[1] & mask[1])
        answer = received == mine
        yield Send([1 if answer else 0])
        return answer


class TestRunSemantics:
    def test_same_seed_same_outcome(self):
        p = NoisyEquality()
        a = p.run((1, 0), (0, 1), seed=7)
        b = p.run((1, 0), (0, 1), seed=7)
        assert a.outputs == b.outputs
        assert a.bits_exchanged == b.bits_exchanged

    def test_equal_inputs_never_err(self):
        p = NoisyEquality()
        for seed in range(20):
            assert p.output((1, 1), (1, 1), seed) is True


class TestErrorEstimation:
    def test_zero_error_on_equal(self):
        est = estimate_error(NoisyEquality(), (1, 0), (1, 0), True, trials=50)
        assert est.error_rate == 0.0
        assert est.max_bits == 2

    def test_half_error_on_unequal(self):
        est = estimate_error(NoisyEquality(), (1, 0), (0, 0), False, trials=400)
        # The parity distinguishes only when mask hits the differing bit: 1/2.
        assert 0.35 < est.error_rate < 0.65

    def test_confidence_radius_shrinks(self):
        small = estimate_error(NoisyEquality(), (1, 0), (0, 0), False, trials=50)
        large = estimate_error(NoisyEquality(), (1, 0), (0, 0), False, trials=500)
        assert large.error_confidence_radius() < small.error_confidence_radius()

    def test_worst_input_error(self):
        pairs = [((1, 1), (1, 1)), ((1, 0), (0, 0))]
        worst, est = worst_input_error(
            NoisyEquality(), pairs, lambda x, y: x == y, trials=100
        )
        assert worst > 0.2
        assert est.trials == 100

    def test_estimate_cost(self):
        mean, worst = estimate_cost(NoisyEquality(), [((1, 1), (1, 1))], 10)
        assert mean == 2.0 and worst == 2


class TestAmplification:
    def test_majority_reduces_error(self):
        assert amplify_by_majority(0.25, 5) < 0.25

    def test_zero_and_one_edge(self):
        assert amplify_by_majority(0.0, 3) == 0.0
        assert amplify_by_majority(1.0, 3) == 1.0

    def test_single_repetition_identity(self):
        assert amplify_by_majority(0.3, 1) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            amplify_by_majority(1.5, 3)
        with pytest.raises(ValueError):
            amplify_by_majority(0.1, 0)

    def test_known_binomial_value(self):
        # 3 reps at error 1/2: majority errs with prob C(3,2)/8 + C(3,3)/8 = 1/2.
        assert amplify_by_majority(0.5, 3) == pytest.approx(0.5)
