"""Tests for monochromatic rectangle machinery."""

import numpy as np
import pytest

from repro.comm.rectangles import (
    greedy_monochromatic_partition,
    is_monochromatic,
    is_one_rectangle,
    max_one_rectangle,
    max_one_rectangle_exact,
    max_one_rectangle_greedy,
    ones_covered_fraction,
    rectangle_value,
    verify_partition,
)
from repro.comm.truth_matrix import TruthMatrix
from repro.util.rng import ReproducibleRNG


def tm_from(array) -> TruthMatrix:
    a = np.array(array, dtype=np.uint8)
    return TruthMatrix(
        a,
        tuple(f"r{i}" for i in range(a.shape[0])),
        tuple(f"c{j}" for j in range(a.shape[1])),
    )


EQ3 = tm_from(np.eye(3, dtype=np.uint8))
MIXED = tm_from([[1, 1, 0], [1, 1, 0], [0, 0, 1]])


class TestChecks:
    def test_monochromatic(self):
        assert is_monochromatic(MIXED, [0, 1], [0, 1])
        assert not is_monochromatic(MIXED, [0, 2], [0])
        assert is_monochromatic(MIXED, [], [0])

    def test_rectangle_value(self):
        assert rectangle_value(MIXED, [0, 1], [0, 1]) == 1
        assert rectangle_value(MIXED, [0], [2]) == 0
        with pytest.raises(ValueError):
            rectangle_value(MIXED, [0, 2], [0, 2])

    def test_is_one_rectangle(self):
        assert is_one_rectangle(MIXED, [0, 1], [0, 1])
        assert not is_one_rectangle(MIXED, [0, 1, 2], [0, 1])


class TestMaxOneRectangle:
    def test_exact_on_identity(self):
        area, rows, cols = max_one_rectangle_exact(EQ3)
        assert area == 1

    def test_exact_on_block(self):
        area, rows, cols = max_one_rectangle_exact(MIXED)
        assert area == 4
        assert set(rows) == {0, 1} and set(cols) == {0, 1}

    def test_exact_all_zero(self):
        area, rows, cols = max_one_rectangle_exact(tm_from([[0, 0], [0, 0]]))
        assert area == 0 and rows == () and cols == ()

    def test_exact_size_guard(self):
        big = tm_from(np.ones((25, 2), dtype=np.uint8))
        with pytest.raises(ValueError):
            max_one_rectangle_exact(big)

    def test_greedy_finds_block(self):
        area, rows, cols = max_one_rectangle_greedy(MIXED)
        assert area == 4

    def test_greedy_on_empty(self):
        assert max_one_rectangle_greedy(tm_from([[0]])) == (0, (), ())

    def test_dispatcher_transposes(self):
        tall = tm_from(np.ones((30, 3), dtype=np.uint8))
        area, rows, cols = max_one_rectangle(tall)
        assert area == 90

    def test_greedy_never_beats_exact(self):
        rng = ReproducibleRNG(0)
        for _ in range(10):
            data = np.array(
                [[rng.randrange(2) for _ in range(6)] for _ in range(6)],
                dtype=np.uint8,
            )
            tm = tm_from(data)
            exact_area, _, _ = max_one_rectangle_exact(tm)
            greedy_area, _, _ = max_one_rectangle_greedy(tm)
            assert greedy_area <= exact_area


class TestPartitioning:
    def test_greedy_partition_tiles(self):
        rng = ReproducibleRNG(1)
        for _ in range(10):
            data = np.array(
                [[rng.randrange(2) for _ in range(5)] for _ in range(5)],
                dtype=np.uint8,
            )
            tm = tm_from(data)
            pieces = greedy_monochromatic_partition(tm)
            assert verify_partition(tm, pieces)

    def test_verify_rejects_overlap(self):
        tm = tm_from([[1, 1], [1, 1]])
        pieces = [((0, 1), (0, 1), 1), ((0,), (0,), 1)]
        assert not verify_partition(tm, pieces)

    def test_verify_rejects_wrong_value(self):
        tm = tm_from([[1, 0], [0, 1]])
        pieces = [((0, 1), (0, 1), 1)]
        assert not verify_partition(tm, pieces)

    def test_verify_rejects_gap(self):
        tm = tm_from([[1, 1], [1, 1]])
        assert not verify_partition(tm, [((0,), (0, 1), 1)])

    def test_constant_matrix_one_piece(self):
        tm = tm_from([[1, 1], [1, 1]])
        assert len(greedy_monochromatic_partition(tm)) == 1

    def test_identity_needs_2n_pieces_at_least(self):
        # EQ on 3 values: d(f) >= 2n - ... greedy gives a valid but possibly
        # non-optimal count; at minimum n pieces for the diagonal.
        pieces = greedy_monochromatic_partition(EQ3)
        assert len(pieces) >= 3
        assert verify_partition(EQ3, pieces)


class TestCoveredFraction:
    def test_full_cover(self):
        tm = tm_from([[1, 1], [1, 1]])
        assert ones_covered_fraction(tm, [0, 1], [0, 1]) == 1.0

    def test_partial(self):
        assert ones_covered_fraction(MIXED, [0, 1], [0, 1]) == pytest.approx(0.8)

    def test_no_ones(self):
        tm = tm_from([[0]])
        assert ones_covered_fraction(tm, [0], [0]) == 0.0
