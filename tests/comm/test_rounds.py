"""Tests for round-bounded communication complexity (receiver-decides)."""

import numpy as np
import pytest

from repro.comm.exhaustive import communication_complexity
from repro.comm.one_way import one_way_cc
from repro.comm.rounds import (
    round_bounded_cc,
    round_profile,
    rounds_needed_for_saturation,
)
from repro.comm.truth_matrix import TruthMatrix


def tm_from(array) -> TruthMatrix:
    a = np.array(array, dtype=np.uint8)
    return TruthMatrix(a, tuple(range(a.shape[0])), tuple(range(a.shape[1])))


EQ4 = tm_from(np.eye(4, dtype=np.uint8))
XOR = tm_from([[0, 1], [1, 0]])
AND = tm_from([[0, 0], [0, 1]])


class TestBasics:
    def test_constant_free(self):
        assert round_bounded_cc(tm_from([[1, 1], [1, 1]]), 1) == 0

    def test_monotone_in_rounds(self):
        for tm in (EQ4, XOR, AND):
            profile = round_profile(tm, max_rounds=4)
            assert all(a >= b for a, b in zip(profile, profile[1:]))

    def test_limit_within_one_of_common_knowledge_d(self):
        for tm in (EQ4, XOR, AND):
            d = communication_complexity(tm)
            limit_value = round_profile(tm, max_rounds=6)[-1]
            # Receiver-decides saves at most the final answer bit.
            assert d - 1 <= limit_value <= d

    def test_validation(self):
        with pytest.raises(ValueError):
            round_bounded_cc(EQ4, 0)
        big = tm_from(np.eye(12, dtype=np.uint8))
        with pytest.raises(ValueError):
            round_bounded_cc(big, 2, limit=4)


class TestOneRound:
    def test_one_round_equals_one_way(self):
        for tm in (EQ4, XOR, AND):
            best_one_way = min(one_way_cc(tm, "0to1"), one_way_cc(tm, "1to0"))
            assert round_bounded_cc(tm, 1) == best_one_way

    def test_one_round_fixed_speaker_matches_direction(self):
        asym = tm_from([[0, 0], [0, 1], [1, 0], [1, 1]])  # 4 rows, 2 cols
        assert round_bounded_cc(asym, 1, first_speaker=0) == one_way_cc(asym, "0to1")
        assert round_bounded_cc(asym, 1, first_speaker=1) == one_way_cc(asym, "1to0")

    def test_eq_one_round(self):
        # Announce the full row: 2 bits; the receiver then decides.
        assert round_bounded_cc(EQ4, 1) == 2


class TestSaturation:
    def test_small_functions_saturate_fast(self):
        for tm in (EQ4, XOR, AND):
            assert rounds_needed_for_saturation(tm) <= 2

    def test_interaction_helps_some_function(self):
        # A function where one extra round strictly reduces bits: a 4x4
        # block function whose columns are pairwise distinct (one-way 1->0
        # costs 2) but where rows split it into cheap halves.
        tm = tm_from(
            [
                [0, 0, 1, 1],
                [0, 0, 1, 1],
                [0, 1, 0, 1],
                [0, 1, 0, 1],
            ]
        )
        profile = round_profile(tm, max_rounds=3)
        assert profile[0] >= profile[-1]

    def test_singularity_tiny_profile(self):
        from repro.singularity.two_by_two import singularity_2x2_truth_matrix

        tm = singularity_2x2_truth_matrix(1)
        d = communication_complexity(tm)
        profile = round_profile(tm, max_rounds=4)
        assert all(a >= b for a, b in zip(profile, profile[1:]))
        assert d - 1 <= profile[-1] <= d
