"""Tests for the supervision layer: budgets, timeouts, structured reports."""

import pytest

from repro.comm.agents import (
    OUTCOMES,
    BudgetExceeded,
    Drain,
    ProtocolDeadlock,
    ProtocolError,
    Recv,
    RunReport,
    Send,
    run_protocol,
    run_supervised,
    run_with_retries,
)
from repro.comm.channel import BitChannel, ChannelClosed, Transcript
from repro.comm.faults import ChannelDropFaults, FaultyChannel


def ping_pong0(_):
    """Send one bit, read one back."""
    yield Send([1])
    (bit,) = yield Recv(1)
    return bit


def ping_pong1(_):
    """Read one bit, echo it."""
    (bit,) = yield Recv(1)
    yield Send([bit])
    return bit


class TestEffects:
    def test_recv_validation(self):
        with pytest.raises(ValueError):
            Recv(-1)
        with pytest.raises(ValueError):
            Recv(1, timeout=0)
        assert Recv(1).timeout is None

    def test_drain_returns_queued_bits(self):
        def agent0(_):
            yield Send([1, 0, 1])
            return "sent"

        def agent1(_):
            got = yield Drain()
            return tuple(got)

        result = run_protocol(agent0, agent1, None, None)
        assert result.outputs == ("sent", (1, 0, 1))

    def test_recv_timeout_injects_none(self):
        def agent0(_):
            got = yield Recv(5, timeout=7)
            return got

        def agent1(_):
            return "silent"
            yield  # pragma: no cover — makes this a generator

        report = run_supervised(agent0, agent1, None, None)
        assert report.outcome == "ok"
        assert report.outputs == (None, "silent")
        assert report.ticks >= 7  # the clock jumped to the deadline


class TestOutcomes:
    def test_ok(self):
        report = run_supervised(ping_pong0, ping_pong1, None, None)
        assert report.outcome == "ok" and report.ok
        assert report.outputs == (1, 1)
        assert report.agreed_output() == 1
        assert report.bits_exchanged == 2
        assert report.outcome in OUTCOMES

    def test_deadlock(self):
        def agent(_):
            yield Recv(1)
            return None

        report = run_supervised(agent, agent, None, None)
        assert report.outcome == "deadlock"
        assert "blocked" in report.detail
        with pytest.raises(ProtocolError):
            report.agreed_output()

    def test_agent_error(self):
        def agent0(_):
            raise RuntimeError("boom")
            yield  # pragma: no cover

        report = run_supervised(agent0, ping_pong1, None, None)
        assert report.outcome == "agent_error"
        assert "boom" in report.detail

    def test_step_budget(self):
        def chatty0(_):
            for _ in range(100):
                yield Send([1])
            return None

        def sink1(_):
            got = yield Recv(100)
            return len(got)

        report = run_supervised(chatty0, sink1, None, None, step_budget=10)
        assert report.outcome == "budget_exceeded"
        assert "step budget" in report.detail

    def test_bit_budget(self):
        def blaster0(_):
            yield Send([1] * 50)
            return None

        def sink1(_):
            got = yield Recv(50)
            return len(got)

        report = run_supervised(blaster0, sink1, None, None, bit_budget=10)
        assert report.outcome == "budget_exceeded"
        assert "bit budget" in report.detail

    def test_transport_failure_on_channel_drop(self):
        channel = FaultyChannel(ChannelDropFaults(after_messages=0))
        report = run_supervised(ping_pong0, ping_pong1, None, None, channel=channel)
        assert report.outcome == "transport_failure"
        assert "ChannelClosed" in report.detail

    def test_unread_bits_reported_not_raised(self):
        def agent0(_):
            yield Send([1, 1, 1])
            return "done"

        def agent1(_):
            (bit,) = yield Recv(1)
            return bit

        report = run_supervised(agent0, agent1, None, None)
        assert report.outcome == "ok"
        assert report.unread_bits == 2

    def test_strict_entry_point_still_raises(self):
        def agent(_):
            yield Recv(1)
            return None

        with pytest.raises(ProtocolDeadlock):
            run_protocol(agent, agent, None, None)

        def blaster0(_):
            yield Send([1] * 50)
            return None

        def sink1(_):
            got = yield Recv(50)
            return len(got)

        with pytest.raises(BudgetExceeded):
            run_protocol(blaster0, sink1, None, None, bit_budget=10)

    def test_strict_entry_point_unwraps_crash(self):
        def agent0(_):
            raise KeyError("inner")
            yield  # pragma: no cover

        with pytest.raises(KeyError):
            run_protocol(agent0, ping_pong1, None, None)


class TestRunReport:
    def test_fault_events_copied_from_channel(self):
        channel = FaultyChannel(ChannelDropFaults(after_messages=0))
        report = run_supervised(ping_pong0, ping_pong1, None, None, channel=channel)
        assert report.faults_injected == 1
        assert report.fault_events[0].kind == "drop"

    def test_agreed_output_disagreement(self):
        report = RunReport(
            outcome="ok", outputs=(1, 2), transcript=Transcript()
        )
        with pytest.raises(ProtocolError):
            report.agreed_output()

    def test_defaults(self):
        report = RunReport(outcome="ok", outputs=(None, None), transcript=Transcript())
        assert report.attempts == 1
        assert report.retries == 0
        assert report.overhead_bits == 0


class TestRunWithRetries:
    def test_flaky_protocol_eventually_succeeds(self):
        def flaky0(_, coins):
            if coins.spawn("luck").random() < 0.7:
                raise RuntimeError("flaked")
            yield Send([1])
            return 1

        def agent1(_, coins):
            (bit,) = yield Recv(1)
            return bit

        # seed 4: the first four attempts' coins flake, the fifth succeeds
        report = run_with_retries(flaky0, agent1, None, None, attempts=50, seed=4)
        assert report.outcome == "ok"
        assert report.attempts > 1  # it actually had to retry

    def test_all_attempts_fail_returns_last_report(self):
        def hopeless0(_, coins):
            raise RuntimeError("always")
            yield  # pragma: no cover

        def agent1(_, coins):
            (bit,) = yield Recv(1)
            return bit

        report = run_with_retries(hopeless0, agent1, None, None, attempts=4, seed=0)
        assert report.outcome == "agent_error"
        assert report.attempts == 4

    def test_accept_predicate_drives_retry(self):
        def agent0(_, coins):
            bit = 1 if coins.spawn("draw").random() < 0.5 else 0
            yield Send([bit])
            return bit

        def agent1(_, coins):
            (bit,) = yield Recv(1)
            return bit

        report = run_with_retries(
            agent0,
            agent1,
            None,
            None,
            attempts=32,
            seed=5,
            accept=lambda r: r.agreed_output() == 1,
        )
        assert report.outcome == "ok"
        assert report.agreed_output() == 1

    def test_coinless_mode_with_channel_factory(self):
        drops = iter([0, 10_000])  # first channel dies instantly, second lives

        def factory(attempt):
            return FaultyChannel(ChannelDropFaults(after_messages=next(drops)))

        report = run_with_retries(
            ping_pong0,
            ping_pong1,
            None,
            None,
            attempts=2,
            seed=None,
            channel_factory=factory,
        )
        assert report.outcome == "ok"
        assert report.attempts == 2

    def test_attempts_validation(self):
        with pytest.raises(ValueError):
            run_with_retries(ping_pong0, ping_pong1, None, None, attempts=0)

    def test_attempt_budget_zero_and_negative_raise_before_any_run(self):
        ran = []

        def tattler0(_):
            ran.append(0)
            yield Send([1])
            return None

        for attempts in (0, -1):
            with pytest.raises(ValueError):
                run_with_retries(
                    tattler0, ping_pong1, None, None, attempts=attempts
                )
        assert ran == []  # the budget is validated before any execution

    def test_attempt_budget_one_failing_run_is_not_retried(self):
        runs = []

        def crash0(_):
            runs.append(1)
            raise RuntimeError("boom")
            yield  # pragma: no cover — makes this a generator

        def wait1(_):
            got = yield Recv(1)
            return got

        report = run_with_retries(
            crash0, wait1, None, None, attempts=1, seed=None
        )
        assert report.outcome == "agent_error"
        assert report.attempts == 1
        assert runs == [1]  # exactly one execution, no retry

    def test_attempt_budget_one_clean_run_reports_one_attempt(self):
        report = run_with_retries(
            ping_pong0, ping_pong1, None, None, attempts=1, seed=None
        )
        assert report.outcome == "ok"
        assert report.attempts == 1


class TestDeadlineEdges:
    def test_recv_expiring_exactly_at_the_deadline_tick(self):
        def patient0(_):
            got = yield Recv(1, timeout=3)
            return got

        def silent1(_):
            return "done"
            yield  # pragma: no cover — makes this a generator

        report = run_supervised(patient0, silent1, None, None)
        assert report.outcome == "ok"
        # The clock jumps to exactly the deadline — not one tick past it —
        # and the Recv resolves to None (timed out) at that instant.
        assert report.ticks == 3
        assert report.outputs == (None, "done")

    def test_tied_deadlines_fire_agent0_first_at_the_shared_tick(self):
        order = []

        def racer0(_):
            got = yield Recv(1, timeout=5)
            order.append(0)
            return got

        def racer1(_):
            got = yield Recv(1, timeout=5)
            order.append(1)
            return got

        report = run_supervised(racer0, racer1, None, None)
        assert report.outcome == "ok"
        assert report.ticks == 5  # one jump lands both deadlines
        assert order == [0, 1]  # deterministic tie-break: lowest agent id
        assert report.outputs == (None, None)


class TestBudgetEdges:
    def test_bit_budget_exhausted_mid_message(self):
        def two_sends0(_):
            yield Send([1, 1, 1])  # 3 bits: within budget
            yield Send([1, 1, 1])  # crosses 5 mid-message at bit 2 of 3
            return None

        def sink1(_):
            got = yield Recv(6)
            return len(got)

        report = run_supervised(two_sends0, sink1, None, None, bit_budget=5)
        assert report.outcome == "budget_exceeded"
        assert "bit budget of 5" in report.detail
        # The offending message never reaches the channel: the transcript
        # holds only the first, in-budget send.
        assert report.transcript.total_bits == 3
        assert report.unread_bits == 3

    def test_bit_budget_exactly_met_is_not_exceeded(self):
        def exact0(_):
            yield Send([1] * 5)
            return "sent"

        def sink1(_):
            got = yield Recv(5)
            return len(got)

        report = run_supervised(exact0, sink1, None, None, bit_budget=5)
        assert report.outcome == "ok"  # budget is a cap, not a strict bound
        assert report.transcript.total_bits == 5


class TestChannelHardening:
    def test_bad_agent_ids_rejected(self):
        ch = BitChannel()
        with pytest.raises(ValueError, match="sender must be agent 0 or 1"):
            ch.send(2, [1])
        with pytest.raises(ValueError, match="receiver must be agent 0 or 1"):
            ch.available(-1)
        with pytest.raises(ValueError, match="receiver must be agent 0 or 1"):
            ch.recv("a", 1)
        with pytest.raises(ValueError, match="receiver must be agent 0 or 1"):
            ch.drain(None)

    def test_drain_empties_queue(self):
        ch = BitChannel()
        ch.send(0, [1, 0, 1])
        assert ch.drain(1) == (1, 0, 1)
        assert ch.drain(1) == ()
        assert ch.drained()

    def test_closed_channel_refuses_drain(self):
        ch = BitChannel()
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.drain(0)
