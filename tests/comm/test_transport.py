"""Tests for the reliable (ARQ) transport layer."""

import pytest

from repro.comm.agents import Recv, Send, run_protocol, run_supervised
from repro.comm.channel import BitChannel, TransportFailure
from repro.comm.faults import (
    BitFlipFaults,
    ChannelDropFaults,
    Delivery,
    DuplicateFaults,
    ErasureFaults,
    FaultModel,
    FaultyChannel,
)
from repro.comm.transport import (
    ArqConfig,
    ArqEndpoint,
    TransportStats,
    crc16,
    reliable_pair,
)


class CorruptNth(FaultModel):
    """Flip one CRC-covered bit of exactly one message (by index).

    Flips the last pre-CRC bit, which for a data frame sits in the payload
    — past the framing fields — so the damage is caught by the checksum,
    not by misframing.
    """

    def __init__(self, target_index: int):
        super().__init__(0)
        self.target_index = target_index

    def apply(self, message_index, sender, bits):
        """Corrupt only the targeted message."""
        if message_index != self.target_index or len(bits) < 18:
            return Delivery(bits)
        out = list(bits)
        out[-17] ^= 1
        return Delivery(tuple(out))


class TruncateNth(FaultModel):
    """Cut exactly one message (by index) down to its first 5 bits."""

    def __init__(self, target_index: int):
        super().__init__(0)
        self.target_index = target_index

    def apply(self, message_index, sender, bits):
        """Truncate only the targeted message."""
        if message_index != self.target_index or len(bits) <= 5:
            return Delivery(bits)
        return Delivery(bits[:5])


def echo_pair(payload):
    """Agent 0 sends ``payload``; agent 1 echoes it back; both return it."""

    def agent0(_):
        yield Send(list(payload))
        back = yield Recv(len(payload))
        return tuple(back)

    def agent1(_):
        got = yield Recv(len(payload))
        yield Send(list(got))
        return tuple(got)

    return agent0, agent1


def run_reliable(payload, channel, config=None):
    """Echo ``payload`` through ARQ over ``channel``; return (report, stats)."""
    agent0, agent1 = echo_pair(payload)
    w0, w1, e0, e1 = reliable_pair(agent0(None), agent1(None), config)
    report = run_supervised(
        lambda _: w0, lambda _: w1, None, None, channel=channel
    )
    return report, e0.stats.merged(e1.stats)


class TestCrc16:
    def test_detects_every_single_bit_flip(self):
        frame = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1]
        checksum = crc16(frame)
        for i in range(len(frame)):
            damaged = list(frame)
            damaged[i] ^= 1
            assert crc16(damaged) != checksum

    def test_deterministic(self):
        assert crc16([1, 0, 1]) == crc16([1, 0, 1])
        assert len(crc16([])) == 16


class TestArqConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ArqConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ArqConfig(base_timeout=0)
        with pytest.raises(ValueError):
            ArqConfig(base_timeout=10, max_timeout=5)
        with pytest.raises(ValueError):
            ArqConfig(seq_bits=0)
        with pytest.raises(ValueError):
            ArqConfig(linger_timeout=0)
        with pytest.raises(ValueError):
            ArqConfig(frame_payload=0)

    def test_max_payload_cap(self):
        assert ArqConfig(len_bits=4).max_payload == 15
        assert ArqConfig(len_bits=4, frame_payload=6).max_payload == 6
        assert ArqConfig(len_bits=4, frame_payload=100).max_payload == 15

    def test_frame_geometry(self):
        cfg = ArqConfig(seq_bits=8, len_bits=16)
        assert cfg.data_header_bits == 25
        assert cfg.control_frame_bits == 26


class TestCleanChannel:
    def test_payload_roundtrip_exact(self):
        payload = (1, 0, 1, 1, 0, 0, 1, 0)
        report, stats = run_reliable(payload, BitChannel())
        assert report.outcome == "ok"
        assert report.outputs == (payload, payload)
        assert stats.payload_bits == 2 * len(payload)
        assert stats.retransmissions == 0
        assert stats.overhead_bits > 0  # framing is never free
        assert stats.overhead_bits == stats.wire_bits - stats.payload_bits

    def test_overhead_is_bounded_and_deterministic(self):
        payload = (1,) * 16
        _, first = run_reliable(payload, BitChannel())
        _, second = run_reliable(payload, BitChannel())
        assert first.overhead_bits == second.overhead_bits
        # two data frames + two acks + bounded linger traffic
        cfg = ArqConfig()
        bound = 2 * (cfg.data_header_bits + 16 + 1) + 4 * cfg.control_frame_bits
        assert first.overhead_bits <= bound

    def test_empty_payload_still_framed(self):
        def agent0(_):
            yield Send([])
            return "done"

        def agent1(_):
            yield Recv(0)
            return "done"

        w0, w1, e0, e1 = reliable_pair(agent0(None), agent1(None))
        report = run_supervised(
            lambda _: w0, lambda _: w1, None, None, channel=BitChannel()
        )
        assert report.outcome == "ok"

    def test_chunking_splits_large_payloads(self):
        payload = tuple(i % 2 for i in range(40))
        config = ArqConfig(frame_payload=8)
        report, stats = run_reliable(payload, BitChannel(), config)
        assert report.outcome == "ok"
        assert report.outputs == (payload, payload)
        assert stats.frames_delivered == 2 * 5  # 40 bits / 8 per frame, echoed


class TestRecovery:
    def test_single_corrupt_frame_is_retransmitted(self):
        payload = (1, 0, 1, 1)
        channel = FaultyChannel(CorruptNth(0))
        report, stats = run_reliable(payload, channel)
        assert report.outcome == "ok"
        assert report.outputs == (payload, payload)
        assert stats.retransmissions >= 1
        assert stats.crc_failures >= 1

    def test_corrupt_ack_recovers(self):
        payload = (1, 1, 0, 0)
        channel = FaultyChannel(CorruptNth(1))  # message 1 = the first ACK
        report, stats = run_reliable(payload, channel)
        assert report.outcome == "ok"
        assert report.outputs == (payload, payload)

    def test_duplicates_are_dropped(self):
        payload = (0, 1, 0, 1, 1)
        channel = FaultyChannel(DuplicateFaults(1.0))
        report, stats = run_reliable(payload, channel)
        assert report.outcome == "ok"
        assert report.outputs == (payload, payload)
        assert stats.duplicates_dropped > 0

    def test_truncated_frame_times_out_and_retransmits(self):
        payload = (1,) * 12
        channel = FaultyChannel(TruncateNth(0))
        report, stats = run_reliable(payload, channel)
        assert report.outcome == "ok"
        assert report.outputs == (payload, payload)
        assert stats.timeouts >= 1
        assert stats.flushed_bits >= 1

    def test_erasure_storm_recovers_or_fails_loudly(self):
        payload = (1,) * 12
        ok = 0
        for seed in range(10):
            channel = FaultyChannel(ErasureFaults(0.3, seed=seed))
            report, _ = run_reliable(payload, channel)
            if report.outcome == "ok":
                ok += 1
                assert report.outputs == (payload, payload)
            else:
                assert report.outcome == "transport_failure"
        assert ok >= 3  # the budget rescues a solid fraction of storms

    def test_flip_storm_never_corrupts_silently(self):
        payload = tuple(i % 2 for i in range(16))
        for seed in range(30):
            channel = FaultyChannel(BitFlipFaults(0.02, seed=seed))
            report, _ = run_reliable(payload, channel)
            if report.outcome == "ok":
                assert report.outputs == (payload, payload)
            else:
                assert report.outcome == "transport_failure"


class TestBudgetExhaustion:
    def test_zero_retries_fails_fast_under_faults(self):
        payload = (1,) * 8
        channel = FaultyChannel(BitFlipFaults(1.0))
        report, _ = run_reliable(payload, channel, ArqConfig(max_retries=0))
        assert report.outcome == "transport_failure"
        assert "budget" in report.detail

    def test_failure_is_exception_in_strict_mode(self):
        payload = (1,) * 8
        agent0, agent1 = echo_pair(payload)
        w0, w1, _, _ = reliable_pair(
            agent0(None), agent1(None), ArqConfig(max_retries=0)
        )
        with pytest.raises(TransportFailure):
            run_protocol(
                lambda _: w0,
                lambda _: w1,
                None,
                None,
                channel=FaultyChannel(BitFlipFaults(1.0)),
            )

    def test_channel_drop_is_transport_failure(self):
        payload = (1,) * 8
        channel = FaultyChannel(ChannelDropFaults(after_messages=1))
        report, _ = run_reliable(payload, channel)
        assert report.outcome == "transport_failure"
        assert "dropped" in report.detail


class TestStats:
    def test_merged_sums_fieldwise(self):
        a = TransportStats(payload_bits=3, wire_bits=10, frames_sent=1)
        b = TransportStats(payload_bits=4, wire_bits=20, acks_sent=2)
        merged = a.merged(b)
        assert merged.payload_bits == 7
        assert merged.wire_bits == 30
        assert merged.frames_sent == 1 and merged.acks_sent == 2
        assert merged.overhead_bits == 23

    def test_retries_aggregate(self):
        stats = TransportStats(retransmissions=2, naks_sent=3, timeouts=4)
        assert stats.retries == 9

    def test_endpoint_defaults(self):
        endpoint = ArqEndpoint()
        assert endpoint.config.max_retries == 8
        assert endpoint.stats.wire_bits == 0


class TestBucketAccounting:
    """``wire_bits`` must decompose exactly into payload + framing +
    control + retransmit on every endpoint — clean, faulted, or aborted
    mid-send.  The symbolic cost calculus (:mod:`repro.costs`) predicts
    these buckets, so any leak here would surface as a sweep MISMATCH."""

    @staticmethod
    def run_endpoints(payload, channel, config=None):
        agent0, agent1 = echo_pair(payload)
        w0, w1, e0, e1 = reliable_pair(agent0(None), agent1(None), config)
        report = run_supervised(
            lambda _: w0, lambda _: w1, None, None, channel=channel
        )
        return report, e0, e1

    def test_clean_run_buckets_sum_to_wire(self):
        report, e0, e1 = self.run_endpoints(
            (1,) * 20, BitChannel(), ArqConfig(frame_payload=4)
        )
        assert report.ok
        for endpoint in (e0, e1):
            stats = endpoint.stats
            assert stats.wire_bits == (
                stats.payload_bits
                + stats.framing_bits
                + stats.control_bits
                + stats.retransmit_bits
            )
            assert stats.wire_bits == stats.accounted_bits
            assert stats.retransmit_bits == 0
        # Both directions carried the 20 payload bits exactly once.
        assert e0.stats.payload_bits == 20
        assert e1.stats.payload_bits == 20

    def test_retransmissions_land_in_their_own_bucket(self):
        channel = FaultyChannel(CorruptNth(0))
        report, e0, e1 = self.run_endpoints((1,) * 12, channel)
        assert report.ok
        merged = e0.stats.merged(e1.stats)
        assert merged.retransmissions >= 1
        assert merged.retransmit_bits > 0
        # A retry repeats framing+payload but inflates neither first-copy
        # bucket: the identity still holds per endpoint.
        for endpoint in (e0, e1):
            assert endpoint.stats.wire_bits == endpoint.stats.accounted_bits
        assert merged.payload_bits == 24  # 12 bits each way, counted once

    def test_aborted_multichunk_send_counts_only_transmitted_chunks(self):
        # The channel dies after the very first frame of a 10-chunk send.
        # Payload is accounted per chunk at first transmission, so the
        # nine never-sent chunks must not appear in payload_bits — if
        # send() counted eagerly, wire_bits != accounted_bits here.
        channel = FaultyChannel(ChannelDropFaults(after_messages=1))
        report, e0, e1 = self.run_endpoints(
            (1,) * 20, channel, ArqConfig(frame_payload=2)
        )
        assert report.outcome == "transport_failure"
        for endpoint in (e0, e1):
            assert endpoint.stats.wire_bits == endpoint.stats.accounted_bits
        assert e0.stats.payload_bits < 20
