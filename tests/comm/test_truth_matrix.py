"""Tests for truth-matrix builders."""

import numpy as np
import pytest

from repro.comm.bits import MatrixBitCodec
from repro.comm.partition import Partition, pi_zero
from repro.comm.truth_matrix import (
    TruthMatrix,
    truth_matrix_from_family,
    truth_matrix_from_function,
    truth_matrix_from_matrix_predicate,
)
from repro.exact.rank import is_singular


class TestTruthMatrixContainer:
    def test_validation(self):
        with pytest.raises(ValueError):
            TruthMatrix(np.zeros((2, 2)), ("a",), ("x", "y"))
        with pytest.raises(ValueError):
            TruthMatrix(np.full((1, 1), 2), ("a",), ("x",))

    def test_counts(self):
        tm = TruthMatrix(np.array([[1, 0], [1, 1]]), ("a", "b"), ("x", "y"))
        assert tm.ones_count() == 3
        assert tm.zeros_count() == 1
        assert tm.ones_fraction() == 0.75

    def test_submatrix_and_labels(self):
        tm = TruthMatrix(np.array([[1, 0], [0, 1]]), ("a", "b"), ("x", "y"))
        sub = tm.submatrix([1], [0, 1])
        assert sub.row_labels == ("b",)
        assert sub.value("b", "y") == 1

    def test_transpose(self):
        tm = TruthMatrix(np.array([[1, 0]]), ("a",), ("x", "y"))
        assert tm.transpose().shape == (2, 1)
        assert tm.transpose().row_labels == ("x", "y")

    def test_distinct_rows_cols(self):
        tm = TruthMatrix(
            np.array([[1, 0], [1, 0], [0, 1]]), ("a", "b", "c"), ("x", "y")
        )
        assert tm.distinct_rows() == 2
        assert tm.distinct_cols() == 2


class TestFromFunction:
    def test_and_function(self):
        p = Partition(2, frozenset({0}))
        tm = truth_matrix_from_function(lambda bits: bits[0] and bits[1], p)
        assert tm.shape == (2, 2)
        assert tm.ones_count() == 1
        assert tm.value((1,), (1,)) == 1

    def test_row_labels_enumerate_agent0(self):
        p = Partition(3, frozenset({0, 2}))
        tm = truth_matrix_from_function(lambda bits: True, p)
        assert tm.shape == (4, 2)
        assert len(set(tm.row_labels)) == 4

    def test_size_guard(self):
        p = Partition(60, frozenset(range(30)))
        with pytest.raises(ValueError):
            truth_matrix_from_function(lambda bits: True, p)

    def test_scattered_partition_respected(self):
        # f depends only on position 1; if agent 0 holds {1}, rows decide f.
        p = Partition(2, frozenset({1}))
        tm = truth_matrix_from_function(lambda bits: bool(bits[1]), p)
        assert (tm.data[0] == tm.data[0][0]).all()
        assert (tm.data[1] == tm.data[1][0]).all()
        assert tm.data[0][0] != tm.data[1][0]


class TestFromMatrixPredicate:
    def test_singularity_2x2_1bit(self):
        codec = MatrixBitCodec(2, 2, 1)
        tm = truth_matrix_from_matrix_predicate(is_singular, codec, pi_zero(codec))
        # 16 matrices total; count singular 0/1 2x2 matrices: det = ad - bc.
        # Singular when ad == bc: enumerate -> 10.
        assert tm.shape == (4, 4)
        assert tm.ones_count() == 10


class TestFromFamily:
    def test_structured_labels(self):
        rows = ["r0", "r1"]
        cols = ["c0", "c1", "c2"]
        tm = truth_matrix_from_family(
            lambda r, c: r == "r0" and c != "c1", rows, cols
        )
        assert tm.shape == (2, 3)
        assert tm.value("r0", "c0") == 1
        assert tm.value("r0", "c1") == 0
        assert tm.value("r1", "c2") == 0
