"""Shared fixtures: seeded RNGs and small restricted families."""

import pytest

from repro.singularity.family import RestrictedFamily
from repro.util.rng import ReproducibleRNG


@pytest.fixture
def rng():
    return ReproducibleRNG(12345)


@pytest.fixture
def family_7_2():
    """The workhorse family: n=7, k=2 (q=3, h=3, e_width=2)."""
    return RestrictedFamily(7, 2)


@pytest.fixture
def family_5_3():
    """The smallest family with a nonempty E: n=5, k=3 (q=7, e_width=1)."""
    return RestrictedFamily(5, 3)


@pytest.fixture
def family_9_2():
    return RestrictedFamily(9, 2)
