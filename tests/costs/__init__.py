"""Tests for the exact symbolic cost calculus (:mod:`repro.costs`)."""
