"""ARQ overlay predictions: framing, ACKs and chunking, bit for bit.

``MessageShape.predicted_transport_stats`` claims to reproduce the full
:class:`~repro.comm.transport.TransportStats` of a clean-channel ARQ run
— payload, framing, control and retransmit buckets, frame/ACK counters
and the wire total — from the message shape alone.  These tests run the
real endpoints with a tiny ``frame_payload`` so multi-chunk sends are the
norm, then compare field for field.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.agents import run_supervised
from repro.comm.channel import BitChannel
from repro.comm.transport import ArqConfig, reliable_pair
from repro.costs import arq_retry_ceiling_bits, fraction_matrix_bits, varint_bits
from repro.costs.models import fraction_bits
from repro.costs.validate import (
    _case_equality_det,
    _case_fingerprint,
    _case_rank_basis,
    _case_solvability_trivial,
)
from repro.protocols.wire import (
    encode_fraction,
    encode_fraction_matrix,
    encode_varint,
)
from repro.util.rng import ReproducibleRNG


def run_arq(case, cfg, coin_seed=0):
    """Run a case through reliable_pair on a clean BitChannel."""
    coins = ReproducibleRNG(coin_seed) if case.randomized else None
    if coins is None:
        inner0 = case.protocol.agent0(case.input0)
        inner1 = case.protocol.agent1(case.input1)
    else:
        inner0 = case.protocol.agent0(case.input0, coins)
        inner1 = case.protocol.agent1(case.input1, coins)
    wrapped0, wrapped1, e0, e1 = reliable_pair(inner0, inner1, cfg)
    report = run_supervised(
        lambda _: wrapped0,
        lambda _: wrapped1,
        None,
        None,
        channel=BitChannel(),
        max_steps=2_000_000,
    )
    assert report.ok, report.outcome
    return report, e0, e1


class TestPredictedTransportStats:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(1, 48),
        payload=st.sampled_from([1, 3, 8, 64]),
    )
    def test_equality_stats_field_for_field(self, seed, n, payload):
        case = _case_equality_det(seed, n)
        cfg = ArqConfig(frame_payload=payload)
        from repro.costs import shape_of

        shape = shape_of(case.protocol)
        report, e0, e1 = run_arq(case, cfg)
        predicted = shape.predicted_transport_stats(cfg)
        assert (e0.stats, e1.stats) == predicted
        # The dataclass equality above is field-for-field; also pin the
        # reconciliation invariants explicitly.
        for agent, endpoint in ((0, e0), (1, e1)):
            assert endpoint.stats.wire_bits == endpoint.stats.accounted_bits
            assert report.transcript.bits_from(agent) == endpoint.stats.wire_bits

    def test_fingerprint_chunked_framing(self):
        # 128 payload bits through 8-bit frames: 16 data frames + 16 ACKs
        # for the fingerprint, one more pair for the 1-bit verdict.
        from repro.costs import shape_of

        case = _case_fingerprint(5, 4, 2)
        cfg = ArqConfig(frame_payload=8)
        shape = shape_of(case.protocol, case.input0)
        report, e0, e1 = run_arq(case, cfg, coin_seed=5)
        pred0, pred1 = shape.predicted_transport_stats(cfg)
        assert e0.stats == pred0
        assert e1.stats == pred1
        assert e0.stats.frames_sent == 16
        assert e1.stats.acks_sent == 16

    def test_rank_basis_variable_length_payload(self):
        # The rank protocol's payload depends on the instance (basis
        # encoding) — the shape must track it exactly anyway.
        from repro.costs import shape_of

        case = _case_rank_basis(9, 4)
        cfg = ArqConfig(frame_payload=16)
        shape = shape_of(case.protocol, case.input0)
        _, e0, e1 = run_arq(case, cfg)
        assert (e0.stats, e1.stats) == shape.predicted_transport_stats(cfg)

    def test_solvability_header_plus_payload_single_send(self):
        from repro.costs import shape_of

        case = _case_solvability_trivial(11, 3, 4, 2)
        cfg = ArqConfig(frame_payload=8)
        shape = shape_of(case.protocol, case.input0)
        _, e0, e1 = run_arq(case, cfg)
        assert (e0.stats, e1.stats) == shape.predicted_transport_stats(cfg)

    def test_clean_channel_has_no_recovery_traffic(self):
        from repro.costs import shape_of

        case = _case_equality_det(3, 16)
        cfg = ArqConfig(frame_payload=4)
        shape = shape_of(case.protocol)
        _, e0, e1 = run_arq(case, cfg)
        for endpoint in (e0, e1):
            assert endpoint.stats.retransmit_bits == 0
            assert endpoint.stats.retransmissions == 0
            assert endpoint.stats.naks_sent == 0
        assert shape.arq_wire_bits(cfg) == e0.stats.wire_bits + e1.stats.wire_bits


class TestRetryCeiling:
    def test_ceiling_dominates_clean_wire(self):
        # The worst-case budget (every frame retried to exhaustion) must
        # sit at or above the clean-channel wire count for any config.
        from repro.costs import shape_of

        case = _case_fingerprint(5, 4, 2)
        shape = shape_of(case.protocol, case.input0)
        for payload in (1, 8, 64):
            for retries in (0, 1, 5):
                cfg = ArqConfig(frame_payload=payload, max_retries=retries)
                assert arq_retry_ceiling_bits(shape, cfg) >= shape.arq_wire_bits(cfg)

    def test_zero_retries_ceiling_equals_clean_wire(self):
        # With max_retries=0 every frame gets exactly one attempt, so the
        # ceiling IS the clean-channel cost.
        from repro.costs import shape_of

        case = _case_equality_det(3, 16)
        shape = shape_of(case.protocol)
        cfg = ArqConfig(frame_payload=8, max_retries=0)
        assert arq_retry_ceiling_bits(shape, cfg) == shape.arq_wire_bits(cfg)


class TestWireFormulas:
    """The symbolic encoders vs the real ones, on the same values."""

    @settings(max_examples=50, deadline=None)
    @given(value=st.integers(min_value=-(2**40), max_value=2**40))
    def test_varint_bits_matches_encoder(self, value):
        assert varint_bits(value) == len(encode_varint(value))

    @settings(max_examples=50, deadline=None)
    @given(
        num=st.integers(-(2**20), 2**20),
        den=st.integers(1, 2**20),
    )
    def test_fraction_bits_matches_encoder(self, num, den):
        value = Fraction(num, den)
        assert fraction_bits(value) == len(encode_fraction(value))

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        rows=st.integers(1, 4),
        ambient=st.integers(1, 4),
    )
    def test_fraction_matrix_bits_matches_encoder(self, seed, rows, ambient):
        from repro.exact.matrix import Matrix

        rng = ReproducibleRNG(seed)
        m = Matrix(
            [
                [
                    Fraction(rng.kbit_entry(6) - 32, rng.kbit_entry(4) + 1)
                    for _ in range(ambient)
                ]
                for _ in range(rows)
            ]
        )
        assert fraction_matrix_bits(m, ambient) == len(
            encode_fraction_matrix(m, ambient)
        )

    def test_fraction_matrix_bits_none_is_bare_header(self):
        assert fraction_matrix_bits(None, 5) == len(encode_fraction_matrix(None, 5))
