"""Formula == wire, property-based: the tentpole's exactness guarantee.

Hypothesis drives (n, k, rounds, instance seeds) over every implemented
protocol and asserts the symbolic :class:`~repro.costs.models.MessageShape`
equals the live transcript *by integer equality* — total bits, round
count and the per-agent split.  The pinned small cases at the bottom are
the paper's worked numbers, frozen so a formula regression cannot hide
inside the property sweep's randomness.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.agents import run_protocol
from repro.costs import (
    leighton_upper_bound_bits,
    scenario_shape,
    shape_of,
    theorem_lower_bound_bits,
    trivial_upper_bound_bits,
)
from repro.costs.validate import (
    _case_equality_det,
    _case_equality_rand,
    _case_equality_rk,
    _case_fingerprint,
    _case_freivalds,
    _case_matmul_det,
    _case_rank_basis,
    _case_solvability_fp,
    _case_solvability_trivial,
    _case_trivial,
)
from repro.util.rng import ReproducibleRNG

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def assert_shape_matches_wire(case, coin_seed: int = 0):
    """The one check everything here repeats: formula == transcript."""
    shape = shape_of(case.protocol, case.input0)
    coins = ReproducibleRNG(coin_seed) if case.randomized else None
    transcript = run_protocol(
        case.protocol.agent0,
        case.protocol.agent1,
        case.input0,
        case.input1,
        public_randomness=coins,
    ).transcript
    assert transcript.total_bits == shape.total_bits
    assert transcript.rounds == shape.rounds
    assert transcript.bits_from(0) == shape.bits_from(0)
    assert transcript.bits_from(1) == shape.bits_from(1)


class TestFormulaEqualsWire:
    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, n=st.integers(1, 64))
    def test_equality_deterministic(self, seed, n):
        assert_shape_matches_wire(_case_equality_det(seed, n))

    @settings(max_examples=20, deadline=None)
    @given(seed=SEEDS, n=st.integers(1, 32), rounds=st.integers(1, 24))
    def test_equality_randomized(self, seed, n, rounds):
        assert_shape_matches_wire(
            _case_equality_rand(seed, n, rounds), coin_seed=seed
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=SEEDS, n=st.integers(1, 40))
    def test_equality_rabin_karp(self, seed, n):
        assert_shape_matches_wire(_case_equality_rk(seed, n), coin_seed=seed)

    @settings(max_examples=15, deadline=None)
    @given(seed=SEEDS, size=st.sampled_from([2, 4, 6]), k=st.integers(1, 4))
    def test_trivial_singularity(self, seed, size, k):
        assert_shape_matches_wire(_case_trivial(seed, size, k))

    @settings(max_examples=15, deadline=None)
    @given(seed=SEEDS, size=st.sampled_from([2, 4, 6]), k=st.integers(1, 3))
    def test_fingerprint_singularity(self, seed, size, k):
        assert_shape_matches_wire(_case_fingerprint(seed, size, k), coin_seed=seed)

    @settings(max_examples=15, deadline=None)
    @given(seed=SEEDS, size=st.sampled_from([2, 4, 6]))
    def test_rank_column_basis(self, seed, size):
        assert_shape_matches_wire(_case_rank_basis(seed, size))

    @settings(max_examples=15, deadline=None)
    @given(
        seed=SEEDS,
        n_rows=st.integers(1, 4),
        n_cols=st.sampled_from([2, 4, 6]),
        k=st.integers(1, 3),
    )
    def test_solvability_trivial(self, seed, n_rows, n_cols, k):
        assert_shape_matches_wire(
            _case_solvability_trivial(seed, n_rows, n_cols, k)
        )

    @settings(max_examples=15, deadline=None)
    @given(
        seed=SEEDS,
        n_rows=st.integers(1, 4),
        n_cols=st.sampled_from([2, 4]),
        k=st.integers(1, 3),
    )
    def test_solvability_fingerprint(self, seed, n_rows, n_cols, k):
        assert_shape_matches_wire(
            _case_solvability_fp(seed, n_rows, n_cols, k), coin_seed=seed
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=SEEDS, n=st.integers(1, 4), k=st.integers(1, 4))
    def test_matmul_deterministic(self, seed, n, k):
        assert_shape_matches_wire(_case_matmul_det(seed, n, k))

    @settings(max_examples=15, deadline=None)
    @given(seed=SEEDS, n=st.integers(1, 4), k=st.integers(1, 3), rounds=st.integers(1, 4))
    def test_matmul_freivalds(self, seed, n, k, rounds):
        assert_shape_matches_wire(
            _case_freivalds(seed, n, k, rounds), coin_seed=seed
        )


class TestPinnedSmallCases:
    """The paper's worked numbers, frozen as exact integers."""

    def test_equality_sixteen_bits(self):
        # Deterministic EQ_n costs exactly n + 1 bits.
        case = _case_equality_det(7, 16)
        assert shape_of(case.protocol).total_bits == 17

    def test_trivial_four_by_four(self):
        # π₀ on a 4×4 2-bit matrix: half of 32 payload bits + the answer,
        # which is theoretical_trivial_cost(n=2, k=2) = 17 and equals the
        # trivial upper bound exactly.
        from repro.protocols.trivial import theoretical_trivial_cost

        case = _case_trivial(7, 4, 2)
        shape = shape_of(case.protocol, case.input0)
        assert shape.total_bits == 17 == theoretical_trivial_cost(2, 2)
        assert shape.total_bits == trivial_upper_bound_bits(2, 2)

    def test_matmul_two_by_two(self):
        # A and B in full: 2·k·n² = 16 bits, plus the verdict.
        case = _case_matmul_det(7, 2, 2)
        assert shape_of(case.protocol).total_bits == 17

    def test_fingerprint_four_by_four(self):
        # default_prime_bits(2, 2) = 8, so 16 cells × 8 bits + 1 = 129 —
        # and that is leighton_upper_bound_bits(2, 2) exactly.
        case = _case_fingerprint(7, 4, 2)
        shape = shape_of(case.protocol, case.input0)
        assert shape.total_bits == 129
        assert shape.total_bits == leighton_upper_bound_bits(2, 2)

    def test_bound_ordering_on_the_paper_axes(self):
        # Ω(kn²) yardstick below the trivial upper bound on every axis
        # point, and both are pure integers.
        for n in range(1, 12):
            for k in range(1, 6):
                lower = theorem_lower_bound_bits(n, k)
                upper = trivial_upper_bound_bits(n, k)
                assert isinstance(lower, int) and isinstance(upper, int)
                assert lower < upper

    def test_scenario_shapes_price_the_serve_catalogue(self):
        # Every chaos scenario is pricable, and the price is the exact
        # clean-channel cost of the run protocol.run would execute.
        from repro.comm.chaos import SCENARIOS

        for name in sorted(SCENARIOS):
            shape = scenario_shape(name, seed=3)
            case = SCENARIOS[name](3)
            coins = ReproducibleRNG(0) if case.randomized else None
            transcript = run_protocol(
                case.protocol.agent0,
                case.protocol.agent1,
                case.input0,
                case.input1,
                public_randomness=coins,
            ).transcript
            assert transcript.total_bits == shape.total_bits
            assert transcript.bits_from(0) == shape.bits_from(0)

    def test_scenario_shape_rejects_unknown_names(self):
        import pytest

        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_shape("no-such-protocol", 0)
