"""The declared plan table priced against the cost formulas.

``PROTOCOL_PLANS`` is the middle vertex of the consistency triangle: the
COST lint rules check it term-for-term against the *code* (the flow
skeletons), and this module checks it bit-for-bit against the *formulas*
(:func:`repro.costs.shape_of`) on the same seeded instances the cost
sweep runs.  With both edges green the declared table is provably in
sync with what the agents do and what the calculus predicts.
"""

import pytest

from repro.costs import PROTOCOL_PLANS, evaluate_width, expand_plan, shape_of
from repro.costs.models import BASIS_HEADER_BITS, fraction_matrix_bits
from repro.costs.validate import sweep_axes


# ----------------------------------------------------------------------
# Atom resolution: width-algebra atoms -> integers, per concrete case
# ----------------------------------------------------------------------
def _solvability_cols(case):
    # The column count travels in-band, so the plan only knows it as ?.
    return case.input0.num_cols


def _basis_body(case):
    from repro.exact.span import Subspace

    basis = Subspace.column_space(case.input0).basis_matrix()
    body = fraction_matrix_bits(basis, case.input0.num_rows)
    return body - BASIS_HEADER_BITS


#: What ``?`` means, per protocol whose plan contains one.
_UNKNOWN_RESOLVERS = {
    "TrivialSolvability": _solvability_cols,
    "FingerprintSolvability": _solvability_cols,
    "ColumnBasisProtocol": _basis_body,
}


def _resolve_atom(case, atom: str) -> int:
    if atom == "?":
        return _UNKNOWN_RESOLVERS[type(case.protocol).__name__](case)
    if atom.startswith("len(") and atom.endswith(")"):
        return len(getattr(case.protocol, atom[4:-1]))
    value = case.protocol
    for part in atom.split("."):
        value = getattr(value, part)
    return int(value)


def _atom_env(case) -> dict[str, int]:
    """Every atom of the case's plan, resolved on the live instance."""
    env: dict[str, int] = {}
    for term in PROTOCOL_PLANS[type(case.protocol).__name__]:
        for expr in (term["width"], term["repeat"]):
            for factor in expr.replace("+", "*").split("*"):
                atom = factor.strip()
                if atom and not atom.isdigit():
                    env[atom] = _resolve_atom(case, atom)
    return env


def _quick_cases():
    return [
        builder(1000 + i, **params)
        for i, (builder, params) in enumerate(sweep_axes(quick=True))
    ]


# ----------------------------------------------------------------------
# The plan <-> formula edge of the triangle
# ----------------------------------------------------------------------
class TestPlanMatchesShapeOf:
    def test_quick_sweep_covers_every_declared_plan(self):
        names = {type(case.protocol).__name__ for case in _quick_cases()}
        assert names == set(PROTOCOL_PLANS)

    def test_expanded_plans_equal_shape_of_message_for_message(self):
        for case in _quick_cases():
            name = type(case.protocol).__name__
            expanded = expand_plan(name, _atom_env(case))
            shape = shape_of(case.protocol, case.input0)
            assert expanded == shape.shape, (name, expanded, shape.shape)

    def test_plan_totals_match_shape_totals(self):
        for case in _quick_cases():
            name = type(case.protocol).__name__
            expanded = expand_plan(name, _atom_env(case))
            shape = shape_of(case.protocol, case.input0)
            assert sum(bits for _, bits in expanded) == shape.total_bits, name


# ----------------------------------------------------------------------
# evaluate_width semantics
# ----------------------------------------------------------------------
class TestEvaluateWidth:
    def test_sums_of_products(self):
        env = {"k": 3, "n_rows": 4, "?": 5}
        assert evaluate_width("16 + ?*k*n_rows", env) == 16 + 5 * 3 * 4
        assert evaluate_width("1", {}) == 1
        assert evaluate_width("codec.rows", {"codec.rows": 7}) == 7

    def test_missing_atom_raises_key_error(self):
        with pytest.raises(KeyError):
            evaluate_width("n_bits", {})

    def test_unbounded_cannot_be_priced(self):
        with pytest.raises(ValueError, match="unbounded"):
            evaluate_width("UNBOUNDED", {"UNBOUNDED": 1})

    def test_malformed_expression_raises(self):
        with pytest.raises(ValueError):
            evaluate_width("n_bits + ", {"n_bits": 4})
        with pytest.raises(ValueError):
            evaluate_width("2 * * k", {"k": 3})

    def test_repeat_unrolls_terms(self):
        env = {"n": 2, "width": 3, "rounds": 2}
        assert expand_plan("FreivaldsVerify", env) == (
            (1, 6),
            (1, 6),
            (0, 1),
        )
