"""The sweep itself as a regression gate, plus its frozen JSON schema.

The quick sweep is the CI ``costs-gate``: it must come back with zero
``MISMATCH`` cells on every commit, and downstream consumers of the
``python -m repro costs`` JSON depend on the exact key layout, so the
schema is pinned test-side (any key change must bump
``COSTS_SCHEMA_VERSION`` *and* this file, deliberately).
"""

import json

from repro.cli import main
from repro.costs import COSTS_SCHEMA_VERSION, run_sweep, sweep_report

#: The pinned per-cell key set — schema v1.
CELL_KEYS = [
    "arq",
    "bounds",
    "measured",
    "mismatches",
    "params",
    "predicted",
    "protocol",
    "seed",
    "verdict",
]

#: The pinned top-level key set — schema v1.
REPORT_KEYS = ["cells", "mismatches", "ok", "quick", "schema", "seed"]


class TestQuickSweepGate:
    def test_every_cell_matches(self):
        cells = run_sweep(quick=True)
        assert cells, "quick sweep must not be empty"
        bad = [c for c in cells if c.verdict != "MATCH"]
        detail = "; ".join(m for c in bad for m in c.mismatches)
        assert not bad, f"formula/wire disagreement: {detail}"

    def test_every_family_represented(self):
        families = {c.protocol for c in run_sweep(quick=True)}
        assert families == {
            "equality-deterministic",
            "equality-randomized",
            "equality-rabin-karp",
            "trivial-singularity",
            "fingerprint-singularity",
            "rank-column-basis",
            "solvability-trivial",
            "solvability-fingerprint",
            "matmul-verify-deterministic",
            "matmul-verify-freivalds",
        }

    def test_sweep_is_deterministic(self):
        first = sweep_report(run_sweep(quick=True, seed=7), quick=True, seed=7)
        second = sweep_report(run_sweep(quick=True, seed=7), quick=True, seed=7)
        assert first == second

    def test_bounds_bracket_singularity_measurements(self):
        # On singularity cells the paper's bounds must actually bracket
        # the protocols: trivial meets its upper bound exactly, the
        # fingerprint meets Leighton's, and the lower bound sits beneath
        # the deterministic upper bound.
        for cell in run_sweep(quick=True):
            if not cell.bounds:
                continue
            assert cell.bounds["lower"] < cell.bounds["trivial_upper"]
            if cell.protocol == "trivial-singularity":
                assert cell.measured["total_bits"] == cell.bounds["trivial_upper"]
            if cell.protocol == "fingerprint-singularity":
                assert cell.measured["total_bits"] == cell.bounds["leighton_upper"]


class TestFrozenSchema:
    def test_schema_version_pinned(self):
        assert COSTS_SCHEMA_VERSION == 1

    def test_report_layout(self):
        cells = run_sweep(quick=True, seed=3)
        report = sweep_report(cells, quick=True, seed=3)
        assert sorted(report) == REPORT_KEYS
        assert report["schema"] == 1
        assert report["quick"] is True
        assert report["seed"] == 3
        assert report["mismatches"] == 0
        assert report["ok"] is True
        assert len(report["cells"]) == len(cells)
        for cell in report["cells"]:
            assert sorted(cell) == CELL_KEYS
            assert cell["verdict"] in ("MATCH", "MISMATCH")
            assert sorted(cell["measured"]) == sorted(cell["predicted"])
            assert sorted(cell["arq"]) == ["config", "measured", "predicted"]
            assert len(cell["arq"]["measured"]) == 2  # one per endpoint

    def test_report_round_trips_through_json(self):
        report = sweep_report(run_sweep(quick=True), quick=True, seed=0)
        assert json.loads(json.dumps(report, sort_keys=True)) == report


class TestCostsCli:
    def test_quick_table_exit_zero(self, capsys):
        assert main(["costs", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "measured vs predicted" in out
        assert "all cells MATCH" in out
        assert "MISMATCH" not in out

    def test_quick_json_document(self, capsys, tmp_path):
        out_path = tmp_path / "costs.json"
        assert main(["costs", "--quick", "--json", "--out", str(out_path)]) == 0
        on_stdout = json.loads(capsys.readouterr().out)
        on_disk = json.loads(out_path.read_text())
        assert on_stdout == on_disk
        assert on_disk["schema"] == COSTS_SCHEMA_VERSION
        assert on_disk["ok"] is True
        assert sorted(on_disk) == REPORT_KEYS

    def test_seed_changes_instances_not_verdicts(self, capsys):
        assert main(["costs", "--quick", "--seed", "99"]) == 0
        assert "all cells MATCH" in capsys.readouterr().out
