"""Tests for exact characteristic polynomials (Faddeev–LeVerrier)."""

from fractions import Fraction

import pytest

from repro.exact.charpoly import (
    cayley_hamilton_holds,
    characteristic_polynomial,
    determinant_via_charpoly,
    evaluate_poly_at_matrix,
    is_singular_via_charpoly,
    rational_eigenvalues,
)
from repro.exact.determinant import determinant
from repro.exact.matrix import Matrix
from repro.exact.rank import is_singular
from repro.util.rng import ReproducibleRNG


class TestCharacteristicPolynomial:
    def test_identity(self):
        # det(λI - I) = (λ-1)^2 = λ² - 2λ + 1.
        assert characteristic_polynomial(Matrix.identity(2)) == [
            Fraction(1),
            Fraction(-2),
            Fraction(1),
        ]

    def test_monic(self):
        rng = ReproducibleRNG(0)
        m = Matrix.random_kbit(rng, 4, 4, 2)
        assert characteristic_polynomial(m)[-1] == 1

    def test_trace_coefficient(self):
        # The λ^{n-1} coefficient is -tr(A).
        rng = ReproducibleRNG(1)
        m = Matrix.random_kbit(rng, 3, 3, 3)
        p = characteristic_polynomial(m)
        assert p[2] == -m.trace()

    def test_constant_term_is_signed_det(self):
        rng = ReproducibleRNG(2)
        for n in (2, 3, 4):
            m = Matrix.random_kbit(rng, n, n, 2)
            p = characteristic_polynomial(m)
            assert p[0] == (-1) ** n * determinant(m)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            characteristic_polynomial(Matrix([[1, 2]]))


class TestDeterminantAndSingularity:
    def test_det_engine_agreement(self):
        rng = ReproducibleRNG(3)
        for _ in range(15):
            m = Matrix.random_kbit(rng, 4, 4, 2)
            assert determinant_via_charpoly(m) == determinant(m)

    def test_singularity_oracle(self):
        rng = ReproducibleRNG(4)
        for _ in range(15):
            m = Matrix.random_kbit(rng, 3, 3, 2)
            assert is_singular_via_charpoly(m) == is_singular(m)


class TestCayleyHamilton:
    def test_random_matrices(self):
        rng = ReproducibleRNG(5)
        for n in (2, 3, 4):
            m = Matrix.random_kbit(rng, n, n, 3)
            assert cayley_hamilton_holds(m)

    def test_rational_matrix(self):
        m = Matrix([[Fraction(1, 2), 1], [0, Fraction(1, 3)]])
        assert cayley_hamilton_holds(m)

    def test_poly_evaluation(self):
        # p(x) = x² evaluated at A is A @ A.
        rng = ReproducibleRNG(6)
        a = Matrix.random_kbit(rng, 3, 3, 2)
        assert evaluate_poly_at_matrix(
            [Fraction(0), Fraction(0), Fraction(1)], a
        ) == a @ a


class TestRationalEigenvalues:
    def test_diagonal(self):
        assert rational_eigenvalues(Matrix.diagonal([2, 3, 5])) == [2, 3, 5]

    def test_nilpotent(self):
        assert rational_eigenvalues(Matrix([[0, 1], [0, 0]])) == [0]

    def test_no_rational_eigenvalues(self):
        # Rotation-like: λ² + 1 has no rational roots.
        assert rational_eigenvalues(Matrix([[0, -1], [1, 0]])) == []

    def test_negative_eigenvalue(self):
        assert rational_eigenvalues(Matrix.diagonal([-2, 7])) == [-2, 7]

    def test_singular_matrix_has_zero(self):
        m = Matrix([[1, 2], [2, 4]])
        assert 0 in rational_eigenvalues(m)

    def test_eigenvalues_satisfy_charpoly(self):
        rng = ReproducibleRNG(7)
        m = Matrix.random_kbit(rng, 3, 3, 2)
        p = characteristic_polynomial(m)
        for lam in rational_eigenvalues(m):
            value = sum(c * lam**i for i, c in enumerate(p))
            assert value == 0

    def test_rejects_rational_input(self):
        with pytest.raises(ValueError):
            rational_eigenvalues(Matrix([[Fraction(1, 2)]]))
