"""Cross-engine property suite: every engine answers the same question.

Hypothesis drives random integer matrices through *all* the independent
implementations of determinant, rank, span membership, and the truth-matrix
predicate, and demands agreement:

* determinant: Bareiss / rational elimination / cofactor / CRT /
  pure-Python mod-p / vectorized mod-p (batch kernel);
* rank: rational elimination vs GF(p) (both engines, as a lower bound and
  as exact agreement at a 2³¹-scale prime on small matrices);
* span membership: exact :class:`Subspace` vs the batched GF(p) filter
  (one-sided: exact members can never be mod-p non-members);
* the restricted truth matrix: ``fraction`` vs ``modnp`` engines must be
  byte-identical, and :func:`completed_columns` must be bit-identical at
  workers ∈ {1, 2, 4}.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact import modnp
from repro.exact.determinant import (
    bareiss_determinant,
    cofactor_determinant,
    rational_determinant,
)
from repro.exact.matrix import Matrix
from repro.exact.modular import det_mod_rows, rank_mod as rank_mod_py
from repro.exact.rank import rank
from repro.exact.span import Subspace
from repro.exact.vector import Vector

P = modnp.DEFAULT_PRIME

entries = st.integers(min_value=-30, max_value=30)


@st.composite
def square_int_matrices(draw, max_n=5):
    n = draw(st.integers(min_value=1, max_value=max_n))
    rows = draw(
        st.lists(
            st.lists(entries, min_size=n, max_size=n), min_size=n, max_size=n
        )
    )
    return rows


@st.composite
def rect_int_matrices(draw, max_side=5):
    n_rows = draw(st.integers(min_value=1, max_value=max_side))
    n_cols = draw(st.integers(min_value=1, max_value=max_side))
    rows = draw(
        st.lists(
            st.lists(entries, min_size=n_cols, max_size=n_cols),
            min_size=n_rows,
            max_size=n_rows,
        )
    )
    return rows


@settings(max_examples=60, deadline=None)
@given(square_int_matrices())
def test_all_determinant_engines_agree(rows):
    m = Matrix(rows)
    exact = bareiss_determinant(m)
    assert rational_determinant(m) == Fraction(exact)
    assert cofactor_determinant(m) == Fraction(exact)
    assert det_mod_rows(rows, P) == exact % P
    assert modnp.det_mod(rows, P) == exact % P
    assert int(modnp.det_mod_batch([rows], P)[0]) == exact % P


@settings(max_examples=60, deadline=None)
@given(rect_int_matrices())
def test_rank_engines_agree(rows):
    exact = rank(Matrix(rows))
    py = rank_mod_py(rows, P)
    vec = modnp.rank_mod(rows, P)
    assert py == vec  # the two GF(p) engines are interchangeable
    assert vec <= exact  # rank never grows under reduction
    # Entries are tiny (< 31): no minor of a 5x5 can reach 2^31-scale, so
    # the mod-p rank is in fact exact here.
    assert vec == exact


@settings(max_examples=40, deadline=None)
@given(
    rect_int_matrices(max_side=4),
    st.lists(
        st.lists(entries, min_size=4, max_size=4), min_size=1, max_size=6
    ),
)
def test_span_membership_filter_is_sound(basis, queries):
    amb = len(basis[0])
    queries = [q[:amb] for q in queries]
    span = Subspace.span([Vector(r) for r in basis])
    verdict = modnp.span_membership_batch(basis, queries, P)
    for got, q in zip(verdict, queries):
        exact = Vector(q) in span
        if exact:
            assert got  # an exact member may never be filtered out
        # And at this prime/entry scale the filter is exact:
        assert bool(got) == exact


class TestTruthMatrixEngines:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_engines_byte_identical(self, seed):
        from repro.singularity import truth_builder as tb
        from repro.singularity.family import RestrictedFamily
        from repro.util.rng import ReproducibleRNG

        fam = RestrictedFamily(5, 3)
        rng = ReproducibleRNG(seed)
        rows = tb.sample_distinct_rows(fam, rng, 8)
        columns = tb.completed_columns(fam, rows[:4], rng, 1)
        columns += tb.random_columns(fam, rng, 8)
        tm_fraction = tb.restricted_truth_matrix(
            fam, rows, columns, engine="fraction"
        )
        tm_modnp = tb.restricted_truth_matrix(
            fam, rows, columns, engine="modnp"
        )
        assert tm_fraction.shape == tm_modnp.shape
        assert (tm_fraction.data == tm_modnp.data).all()
        assert tm_fraction.data.tobytes() == tm_modnp.data.tobytes()

    def test_unknown_engine_rejected(self):
        from repro.singularity import truth_builder as tb
        from repro.singularity.family import RestrictedFamily

        with pytest.raises(ValueError, match="unknown engine"):
            tb.restricted_truth_matrix(RestrictedFamily(5, 3), [], [], engine="gpu")


class TestParmapDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_completed_columns_worker_invariant(self, workers):
        from repro.singularity import truth_builder as tb
        from repro.singularity.family import RestrictedFamily
        from repro.util.rng import ReproducibleRNG

        fam = RestrictedFamily(5, 3)
        rows = tb.sample_distinct_rows(fam, ReproducibleRNG(7), 6)
        baseline = tb.completed_columns(
            fam, rows, ReproducibleRNG(7), per_row=2, workers=1
        )
        assert (
            tb.completed_columns(
                fam, rows, ReproducibleRNG(7), per_row=2, workers=workers
            )
            == baseline
        )

    def test_chaos_sweep_worker_invariant(self):
        from repro.comm.chaos import sweep

        kwargs = dict(
            protocols=["equality"],
            kinds=["flip"],
            rates=[0.0, 0.02],
            runs=4,
            seed=5,
        )
        serial = [p.as_dict() for p in sweep(workers=1, **kwargs)]
        parallel = [p.as_dict() for p in sweep(workers=4, **kwargs)]
        assert serial == parallel
