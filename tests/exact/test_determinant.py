"""Tests for the determinant engines (three-way oracle + bounds)."""

from fractions import Fraction

import pytest

from repro.exact.determinant import (
    bareiss_determinant,
    cofactor_determinant,
    crt_determinant,
    determinant,
    hadamard_bound,
    hadamard_bound_kbit,
    max_prime_divisors,
    rational_determinant,
)
from repro.exact.matrix import Matrix
from repro.exact.modular import primes_for_crt_bound
from repro.util.rng import ReproducibleRNG


class TestEnginesAgree:
    def test_three_way_oracle_random(self):
        rng = ReproducibleRNG(0)
        for _ in range(25):
            m = Matrix.random_kbit(rng, 4, 4, 3)
            reference = cofactor_determinant(m)
            assert bareiss_determinant(m) == reference
            assert rational_determinant(m) == reference
            assert determinant(m) == reference

    def test_rational_entries(self):
        m = Matrix([[Fraction(1, 2), 1], [1, Fraction(1, 2)]])
        assert determinant(m) == Fraction(-3, 4)
        assert rational_determinant(m) == cofactor_determinant(m)

    def test_known_values(self):
        assert determinant(Matrix.identity(4)) == 1
        assert determinant(Matrix([[1, 2], [2, 4]])) == 0
        assert determinant(Matrix([[0, 1], [1, 0]])) == -1

    def test_multiplicativity(self):
        rng = ReproducibleRNG(1)
        a = Matrix.random_kbit(rng, 3, 3, 2)
        b = Matrix.random_kbit(rng, 3, 3, 2)
        assert determinant(a @ b) == determinant(a) * determinant(b)

    def test_transpose_invariance(self):
        rng = ReproducibleRNG(2)
        m = Matrix.random_kbit(rng, 4, 4, 2)
        assert determinant(m) == determinant(m.T)

    def test_row_swap_flips_sign(self):
        m = Matrix([[1, 2, 0], [0, 1, 3], [2, 0, 1]])
        assert determinant(m.swap_rows(0, 2)) == -determinant(m)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            determinant(Matrix([[1, 2]]))
        with pytest.raises(ValueError):
            bareiss_determinant(Matrix([[1, 2]]))

    def test_cofactor_size_guard(self):
        with pytest.raises(ValueError):
            cofactor_determinant(Matrix.identity(11))


class TestHadamardBound:
    def test_bounds_actual_determinant(self):
        rng = ReproducibleRNG(3)
        for _ in range(20):
            m = Matrix.random_kbit(rng, 4, 4, 3)
            assert abs(determinant(m)) <= hadamard_bound(m)

    def test_zero_row_gives_zero(self):
        m = Matrix([[0, 0], [1, 1]])
        assert hadamard_bound(m) == 0

    def test_closed_form_dominates(self):
        rng = ReproducibleRNG(4)
        for _ in range(10):
            m = Matrix.random_kbit(rng, 3, 3, 2)
            assert hadamard_bound(m) <= hadamard_bound_kbit(3, 2)

    def test_closed_form_values(self):
        # 1x1 of k-bit: bound = q * 1
        assert hadamard_bound_kbit(1, 3) == 7
        with pytest.raises(ValueError):
            hadamard_bound_kbit(0, 1)

    def test_max_prime_divisors_positive(self):
        m = Matrix([[3, 1], [1, 3]])
        assert max_prime_divisors(m, 2) >= 1

    def test_requires_square(self):
        with pytest.raises(ValueError):
            hadamard_bound(Matrix([[1, 2]]))


class TestCRTDeterminant:
    def test_matches_exact(self):
        rng = ReproducibleRNG(5)
        for _ in range(10):
            m = Matrix.random_kbit(rng, 4, 4, 4)
            primes = primes_for_crt_bound(hadamard_bound(m))
            assert crt_determinant(m, primes) == bareiss_determinant(m)

    def test_negative_determinant_lifts_correctly(self):
        m = Matrix([[0, 1], [1, 0]])  # det -1
        primes = primes_for_crt_bound(hadamard_bound(m))
        assert crt_determinant(m, primes) == -1

    def test_insufficient_primes_rejected(self):
        m = Matrix([[100, 1], [1, 100]])
        with pytest.raises(ValueError):
            crt_determinant(m, [3])
