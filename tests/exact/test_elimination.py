"""Tests for rational and fraction-free elimination."""

from fractions import Fraction

import pytest

from repro.exact.elimination import (
    back_substitute,
    bareiss_echelon,
    elimination_agreement,
    row_echelon,
    rref,
)
from repro.exact.matrix import Matrix
from repro.util.rng import ReproducibleRNG


class TestRowEchelon:
    def test_identity_unchanged(self):
        ech = row_echelon(Matrix.identity(3))
        assert ech.rank == 3
        assert ech.pivot_cols == (0, 1, 2)
        assert ech.det_sign_flips == 0

    def test_zero_matrix(self):
        ech = row_echelon(Matrix.zeros(3, 3))
        assert ech.rank == 0
        assert ech.pivot_cols == ()

    def test_known_rank(self):
        m = Matrix([[1, 2, 3], [2, 4, 6], [1, 0, 1]])
        assert row_echelon(m).rank == 2

    def test_echelon_shape(self):
        m = Matrix([[0, 2], [3, 4]])
        ech = row_echelon(m)
        # Below each pivot the column is zero.
        for i, col in enumerate(ech.pivot_cols):
            for r in range(i + 1, m.num_rows):
                assert ech.matrix[r, col] == 0

    def test_row_permutation_tracks_swaps(self):
        m = Matrix([[0, 1], [1, 0]])
        ech = row_echelon(m)
        assert ech.det_sign_flips == 1
        assert sorted(ech.row_permutation) == [0, 1]

    def test_wide_and_tall(self):
        wide = Matrix([[1, 2, 3, 4]])
        assert row_echelon(wide).rank == 1
        tall = Matrix([[1], [2], [3]])
        assert row_echelon(tall).rank == 1


class TestRREF:
    def test_unit_pivots(self):
        m = Matrix([[2, 4], [1, 3]])
        red = rref(m)
        for i, col in enumerate(red.pivot_cols):
            assert red.matrix[i, col] == 1
            for r in range(m.num_rows):
                if r != i:
                    assert red.matrix[r, col] == 0

    def test_canonical_for_row_equivalent(self):
        m = Matrix([[1, 2], [3, 4]])
        scrambled = m.permute_rows([1, 0])
        assert rref(m).matrix == rref(scrambled).matrix

    def test_idempotent(self):
        m = Matrix([[1, 2, 1], [0, 1, 3]])
        once = rref(m).matrix
        assert rref(once).matrix == once


class TestBareiss:
    def test_matches_rational_rank(self):
        rng = ReproducibleRNG(0)
        for _ in range(30):
            m = Matrix.random_kbit(rng, 4, 4, 3)
            assert bareiss_echelon(m).rank == row_echelon(m).rank

    def test_agreement_helper(self):
        rng = ReproducibleRNG(1)
        for _ in range(20):
            assert elimination_agreement(Matrix.random_kbit(rng, 3, 5, 2))

    def test_agreement_rejects_rational(self):
        with pytest.raises(ValueError):
            elimination_agreement(Matrix([[Fraction(1, 2)]]))

    def test_entries_stay_integral(self):
        rng = ReproducibleRNG(2)
        m = Matrix.random_kbit(rng, 5, 5, 4)
        form = bareiss_echelon(m)
        assert form.matrix.is_integer()

    def test_last_pivot_is_determinant_magnitude(self):
        m = Matrix([[2, 1], [1, 2]])  # det 3
        form = bareiss_echelon(m)
        sign = -1 if form.det_sign_flips % 2 else 1
        assert sign * form.last_pivot == 3

    def test_rejects_non_integer(self):
        with pytest.raises(ValueError):
            bareiss_echelon(Matrix([[Fraction(1, 3)]]))


class TestBackSubstitute:
    def test_solves_triangular(self):
        m = Matrix([[1, 2], [0, 3]])
        ech = row_echelon(m)
        x = back_substitute(ech, [Fraction(5), Fraction(6)])
        assert x is not None
        assert m.matvec(x) == (5, 6)

    def test_detects_inconsistency(self):
        m = Matrix([[1, 1], [0, 0]])
        ech = row_echelon(m)
        assert back_substitute(ech, [Fraction(1), Fraction(1)]) is None

    def test_free_variables_zero(self):
        m = Matrix([[1, 1, 1]])
        ech = row_echelon(m)
        x = back_substitute(ech, [Fraction(3)])
        assert x == [Fraction(3), Fraction(0), Fraction(0)]

    def test_length_check(self):
        ech = row_echelon(Matrix.identity(2))
        with pytest.raises(ValueError):
            back_substitute(ech, [Fraction(1)])
