"""Tests for GF(2) bitset linear algebra."""

import numpy as np
import pytest

from repro.exact.gf2 import (
    gf2_rank,
    gf2_rank_of_matrix,
    gf2_rank_of_truth_matrix,
    gf2_solve,
    gf2_verify,
    pack_numpy,
    pack_rows,
)
from repro.comm.truth_matrix import TruthMatrix
from repro.exact.matrix import Matrix
from repro.exact.modular import rank_mod
from repro.util.rng import ReproducibleRNG


class TestPacking:
    def test_pack_rows(self):
        packed, width = pack_rows([[1, 0, 1], [0, 1, 0]])
        assert width == 3
        assert packed == [0b101, 0b010]

    def test_pack_validation(self):
        with pytest.raises(ValueError):
            pack_rows([])
        with pytest.raises(ValueError):
            pack_rows([[1, 0], [1]])
        with pytest.raises(ValueError):
            pack_rows([[2]])

    def test_pack_numpy_matches(self):
        rng = ReproducibleRNG(0)
        data = np.array(
            [[rng.randrange(2) for _ in range(70)] for _ in range(5)],
            dtype=np.uint8,
        )
        slow, w1 = pack_rows(data.tolist())
        fast, w2 = pack_numpy(data)
        assert slow == fast and w1 == w2 == 70


class TestRank:
    def test_known_values(self):
        assert gf2_rank_of_matrix([[1, 0], [0, 1]]) == 2
        assert gf2_rank_of_matrix([[1, 1], [1, 1]]) == 1
        assert gf2_rank_of_matrix([[0, 0], [0, 0]]) == 0

    def test_xor_dependence(self):
        # row3 = row1 XOR row2
        assert gf2_rank_of_matrix([[1, 0, 1], [0, 1, 1], [1, 1, 0]]) == 2

    def test_agrees_with_rank_mod_2(self):
        rng = ReproducibleRNG(1)
        for _ in range(20):
            rows = [[rng.randrange(2) for _ in range(6)] for _ in range(6)]
            assert gf2_rank_of_matrix(rows) == rank_mod(rows, 2)

    def test_gf2_rank_lower_bounds_rational(self):
        rng = ReproducibleRNG(2)
        from repro.exact.rank import rank as rational_rank

        for _ in range(15):
            rows = [[rng.randrange(2) for _ in range(5)] for _ in range(5)]
            assert gf2_rank_of_matrix(rows) <= rational_rank(Matrix(rows))

    def test_truth_matrix_interface(self):
        tm = TruthMatrix(np.eye(8, dtype=np.uint8), tuple(range(8)), tuple(range(8)))
        assert gf2_rank_of_truth_matrix(tm) == 8

    def test_large_identity_fast(self):
        tm = TruthMatrix(
            np.eye(1024, dtype=np.uint8), tuple(range(1024)), tuple(range(1024))
        )
        assert gf2_rank_of_truth_matrix(tm) == 1024


class TestSolve:
    def test_unique_system(self):
        packed, w = pack_rows([[1, 0], [0, 1]])
        x = gf2_solve(packed, w, [1, 0])
        assert x == 0b01
        assert gf2_verify(packed, w, x, [1, 0])

    def test_solution_verifies_random(self):
        rng = ReproducibleRNG(3)
        solved = 0
        for _ in range(20):
            rows = [[rng.randrange(2) for _ in range(6)] for _ in range(4)]
            packed, w = pack_rows(rows)
            rhs = [rng.randrange(2) for _ in range(4)]
            x = gf2_solve(packed, w, rhs)
            if x is not None:
                solved += 1
                assert gf2_verify(packed, w, x, rhs)
        assert solved > 10

    def test_inconsistent(self):
        packed, w = pack_rows([[1, 0], [1, 0]])
        assert gf2_solve(packed, w, [0, 1]) is None

    def test_rhs_length_check(self):
        packed, w = pack_rows([[1, 0]])
        with pytest.raises(ValueError):
            gf2_solve(packed, w, [1, 0])
