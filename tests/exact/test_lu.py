"""Tests for exact LUP decomposition (Corollary 1.2e substrate)."""

import pytest

from repro.exact.determinant import determinant
from repro.exact.lu import is_singular_via_lup, lup_decompose
from repro.exact.matrix import Matrix
from repro.exact.rank import is_singular
from repro.util.rng import ReproducibleRNG


def _is_unit_lower(l: Matrix) -> bool:
    n = l.num_rows
    return all(
        (l[i, j] == (1 if i == j else l[i, j])) and (l[i, j] == 0 if j > i else True)
        for i in range(n)
        for j in range(n)
    ) and all(l[i, i] == 1 for i in range(n))


def _is_upper(u: Matrix) -> bool:
    rows, cols = u.shape
    return all(u[i, j] == 0 for i in range(rows) for j in range(min(i, cols)))


class TestDecomposition:
    def test_reconstruction_random(self):
        rng = ReproducibleRNG(0)
        for _ in range(25):
            m = Matrix.random_kbit(rng, 4, 4, 3)
            assert lup_decompose(m).reconstruct() == m

    def test_factor_shapes(self):
        rng = ReproducibleRNG(1)
        m = Matrix.random_kbit(rng, 5, 5, 2)
        dec = lup_decompose(m)
        assert _is_unit_lower(dec.l)
        assert _is_upper(dec.u)

    def test_p_times_m_equals_l_times_u(self):
        rng = ReproducibleRNG(2)
        m = Matrix.random_kbit(rng, 4, 4, 2)
        dec = lup_decompose(m)
        assert dec.p @ m == dec.l @ dec.u

    def test_rectangular_input(self):
        m = Matrix([[1, 2, 3], [4, 5, 6]])
        dec = lup_decompose(m)
        assert dec.reconstruct() == m

    def test_zero_matrix(self):
        m = Matrix.zeros(3, 3)
        dec = lup_decompose(m)
        assert dec.reconstruct() == m
        assert dec.is_singular()


class TestSingularityAndDeterminant:
    def test_singularity_oracle_agrees(self):
        rng = ReproducibleRNG(3)
        for _ in range(25):
            m = Matrix.random_kbit(rng, 4, 4, 2)
            assert is_singular_via_lup(m) == is_singular(m)

    def test_determinant_from_factors(self):
        rng = ReproducibleRNG(4)
        for _ in range(15):
            m = Matrix.random_kbit(rng, 4, 4, 2)
            assert lup_decompose(m).determinant() == determinant(m)

    def test_determinant_with_forced_swap(self):
        m = Matrix([[0, 1], [1, 0]])
        assert lup_decompose(m).determinant() == -1

    def test_singular_check_requires_square(self):
        dec = lup_decompose(Matrix([[1, 2, 3]]))
        with pytest.raises(ValueError):
            dec.is_singular()
        with pytest.raises(ValueError):
            dec.determinant()


class TestNonzeroStructure:
    def test_structure_detects_rank_deficiency(self):
        # Corollary 1.2(e): the *structure* of U alone decides singularity.
        singular = Matrix([[1, 2], [2, 4]])
        structure = lup_decompose(singular).u_nonzero_structure()
        assert (1, 1) not in structure

    def test_structure_full_rank(self):
        structure = lup_decompose(Matrix.identity(3)).u_nonzero_structure()
        assert {(0, 0), (1, 1), (2, 2)} <= structure
