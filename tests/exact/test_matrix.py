"""Tests for the exact Matrix container."""

from fractions import Fraction

import pytest

from repro.exact.matrix import Matrix, permutation_matrix
from repro.util.rng import ReproducibleRNG


class TestConstruction:
    def test_entries_become_fractions(self):
        m = Matrix([[1, 2], [3, 4]])
        assert isinstance(m[0, 0], Fraction)

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            Matrix([[1, 2], [3]])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Matrix([])
        with pytest.raises(ValueError):
            Matrix([[]])

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            Matrix([[1.5]])

    def test_identity(self):
        i3 = Matrix.identity(3)
        assert i3[0, 0] == 1 and i3[0, 1] == 0
        assert i3.is_square

    def test_zeros(self):
        z = Matrix.zeros(2, 3)
        assert z.shape == (2, 3)
        assert all(z[i, j] == 0 for i in range(2) for j in range(3))

    def test_diagonal(self):
        d = Matrix.diagonal([1, 2, 3])
        assert d[1, 1] == 2 and d[0, 1] == 0

    def test_from_function(self):
        m = Matrix.from_function(2, 2, lambda i, j: i * 10 + j)
        assert m[1, 0] == 10

    def test_column_and_row_vector(self):
        assert Matrix.column([1, 2]).shape == (2, 1)
        assert Matrix.row_vector([1, 2]).shape == (1, 2)

    def test_block_assembly(self):
        i2 = Matrix.identity(2)
        z = Matrix.zeros(2, 2)
        m = Matrix.block([[i2, z], [z, i2]])
        assert m == Matrix.identity(4)

    def test_block_rejects_mismatched_bands(self):
        with pytest.raises(ValueError):
            Matrix.block([[Matrix.identity(2), Matrix.identity(3)]])

    def test_random_kbit_range(self):
        m = Matrix.random_kbit(ReproducibleRNG(0), 4, 4, 3)
        assert all(0 <= m[i, j] <= 7 for i in range(4) for j in range(4))


class TestArithmetic:
    def test_add_sub_neg(self):
        a = Matrix([[1, 2], [3, 4]])
        b = Matrix([[5, 6], [7, 8]])
        assert (a + b) - b == a
        assert -(-a) == a

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            Matrix([[1]]) + Matrix([[1, 2]])

    def test_scalar_multiplication(self):
        a = Matrix([[1, 2], [3, 4]])
        assert 2 * a == a + a
        assert a * Fraction(1, 2) == Matrix([[Fraction(1, 2), 1], [Fraction(3, 2), 2]])

    def test_matmul_identity(self):
        a = Matrix([[1, 2], [3, 4]])
        assert a @ Matrix.identity(2) == a
        assert Matrix.identity(2) @ a == a

    def test_matmul_known_product(self):
        a = Matrix([[1, 2], [3, 4]])
        b = Matrix([[0, 1], [1, 0]])
        assert a @ b == Matrix([[2, 1], [4, 3]])

    def test_matmul_dimension_check(self):
        with pytest.raises(ValueError):
            Matrix([[1, 2]]) @ Matrix([[1, 2]])

    def test_matvec(self):
        a = Matrix([[1, 2], [3, 4]])
        assert a.matvec([1, 1]) == (3, 7)
        with pytest.raises(ValueError):
            a.matvec([1])

    def test_transpose_involution(self):
        a = Matrix([[1, 2, 3], [4, 5, 6]])
        assert a.T.T == a
        assert a.T.shape == (3, 2)

    def test_transpose_of_product(self):
        a = Matrix([[1, 2], [3, 4]])
        b = Matrix([[5, 6], [7, 8]])
        assert (a @ b).T == b.T @ a.T

    def test_pow(self):
        a = Matrix([[1, 1], [0, 1]])
        assert a.pow(0) == Matrix.identity(2)
        assert a.pow(5) == Matrix([[1, 5], [0, 1]])
        with pytest.raises(ValueError):
            a.pow(-1)
        with pytest.raises(ValueError):
            Matrix([[1, 2]]).pow(2)

    def test_trace(self):
        assert Matrix([[1, 9], [9, 2]]).trace() == 3
        with pytest.raises(ValueError):
            Matrix([[1, 2]]).trace()


class TestSlicing:
    def test_submatrix(self):
        m = Matrix([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        assert m.submatrix([0, 2], [1]) == Matrix([[2], [8]])

    def test_slice(self):
        m = Matrix([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        assert m.slice(1, 3, 0, 2) == Matrix([[4, 5], [7, 8]])
        with pytest.raises(ValueError):
            m.slice(0, 4, 0, 1)

    def test_with_entry_is_pure(self):
        m = Matrix([[1, 2], [3, 4]])
        m2 = m.with_entry(0, 0, 99)
        assert m[0, 0] == 1 and m2[0, 0] == 99

    def test_with_block(self):
        m = Matrix.zeros(3, 3).with_block(1, 1, Matrix([[7, 8], [9, 10]]))
        assert m[1, 1] == 7 and m[2, 2] == 10 and m[0, 0] == 0
        with pytest.raises(ValueError):
            Matrix.zeros(2, 2).with_block(1, 1, Matrix.identity(2))

    def test_permute_rows(self):
        m = Matrix([[1], [2], [3]])
        assert m.permute_rows([2, 0, 1]) == Matrix([[3], [1], [2]])
        with pytest.raises(ValueError):
            m.permute_rows([0, 0, 1])

    def test_permute_cols(self):
        m = Matrix([[1, 2, 3]])
        assert m.permute_cols([1, 2, 0]) == Matrix([[2, 3, 1]])

    def test_swap_rows_cols(self):
        m = Matrix([[1, 2], [3, 4]])
        assert m.swap_rows(0, 1) == Matrix([[3, 4], [1, 2]])
        assert m.swap_cols(0, 1) == Matrix([[2, 1], [4, 3]])

    def test_hstack_vstack(self):
        a = Matrix([[1], [2]])
        b = Matrix([[3], [4]])
        assert a.hstack(b) == Matrix([[1, 3], [2, 4]])
        assert a.vstack(b) == Matrix([[1], [2], [3], [4]])
        with pytest.raises(ValueError):
            a.hstack(Matrix([[1]]))

    def test_map(self):
        m = Matrix([[1, -2]])
        assert m.map(abs) == Matrix([[1, 2]])


class TestIntrospection:
    def test_is_integer(self):
        assert Matrix([[1, 2]]).is_integer()
        assert not Matrix([[Fraction(1, 2)]]).is_integer()

    def test_to_int_rows(self):
        assert Matrix([[1, 2]]).to_int_rows() == [[1, 2]]
        with pytest.raises(ValueError):
            Matrix([[Fraction(1, 2)]]).to_int_rows()

    def test_max_abs_entry(self):
        assert Matrix([[1, -7], [3, 2]]).max_abs_entry() == 7

    def test_nonzero_structure(self):
        m = Matrix([[1, 0], [0, 2]])
        assert m.nonzero_structure() == frozenset({(0, 0), (1, 1)})

    def test_mod(self):
        assert Matrix([[5, 7]]).mod(3) == [[2, 1]]
        with pytest.raises(ValueError):
            Matrix([[1]]).mod(1)

    def test_hash_and_equality(self):
        a = Matrix([[1, 2]])
        b = Matrix([[1, 2]])
        assert a == b and hash(a) == hash(b)
        assert a != Matrix([[2, 1]])
        assert (a == "nope") is False

    def test_rows_are_shared_tuples(self):
        m = Matrix([[1, 2]])
        assert m.rows() is m.rows()

    def test_repr_and_pretty(self):
        small = Matrix([[1, 2], [3, 4]])
        assert "2x2" in repr(small)
        assert "[" in small.pretty()
        big = Matrix.zeros(10, 10)
        assert repr(big) == "Matrix(10x10)"


class TestPermutationMatrix:
    def test_left_multiplication_permutes_rows(self):
        m = Matrix([[1], [2], [3]])
        perm = [2, 0, 1]
        assert permutation_matrix(perm) @ m == m.permute_rows(perm)

    def test_orthogonality(self):
        p = permutation_matrix([1, 2, 0])
        assert p @ p.T == Matrix.identity(3)

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            permutation_matrix([0, 0, 1])
