"""Oracle tests for the vectorized GF(p) kernels (repro.exact.modnp).

Every kernel is checked against an independent engine: the pure-Python
mod-p elimination of :mod:`repro.exact.modular`, the fraction-free Bareiss
determinant, and the exact :class:`~repro.exact.span.Subspace` membership.
"""

import numpy as np
import pytest

from repro.exact import modnp
from repro.exact.determinant import bareiss_determinant
from repro.exact.matrix import Matrix
from repro.exact.modular import det_mod_rows, rank_mod as rank_mod_py
from repro.exact.span import Subspace
from repro.exact.vector import Vector
from repro.util.rng import ReproducibleRNG

PRIMES = (2, 3, 10007, modnp.DEFAULT_PRIME)


def random_rows(rng, n_rows, n_cols, lo=-50, hi=50):
    return [
        [rng.randrange(lo, hi) for _ in range(n_cols)] for _ in range(n_rows)
    ]


class TestValidation:
    def test_rejects_composite_modulus(self):
        with pytest.raises(ValueError, match="prime"):
            modnp.rank_mod([[1]], 6)

    def test_rejects_negative_modulus(self):
        with pytest.raises(ValueError, match="prime"):
            modnp.det_mod([[1]], -7)

    def test_rejects_oversized_prime(self):
        big = 2305843009213693951  # Mersenne prime 2^61 - 1, way over 2^31
        with pytest.raises(ValueError, match="2\\^31"):
            modnp.rank_mod([[1]], big)

    def test_default_prime_fits_kernel(self):
        assert modnp.DEFAULT_PRIME < modnp.MAX_MODULUS

    def test_rejects_nonsquare_det(self):
        with pytest.raises(ValueError, match="square"):
            modnp.det_mod([[1, 2]], 7)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            modnp.as_residues([], 7)


class TestAsResidues:
    def test_huge_python_ints_reduced_exactly(self):
        # Entries like q^n overflow any fixed dtype; the reduction must
        # happen in exact Python arithmetic first.
        big = 12345678901234567890123456789
        p = 10007
        out = modnp.as_residues([[big, -big]], p)
        assert out.dtype == np.uint64
        assert int(out[0, 0]) == big % p
        assert int(out[0, 1]) == (-big) % p

    def test_accepts_matrix(self):
        m = Matrix([[1, 2], [3, 4]])
        out = modnp.as_residues(m, 7)
        assert out.tolist() == [[1, 2], [3, 4]]

    def test_accepts_numpy_and_copies(self):
        src = np.array([[5, 9]], dtype=np.int64)
        out = modnp.as_residues(src, 7)
        assert out.tolist() == [[5, 2]]
        out[0, 0] = 0
        assert src[0, 0] == 5  # caller's array untouched


class TestRankOracle:
    @pytest.mark.parametrize("p", PRIMES)
    def test_matches_pure_python(self, p):
        rng = ReproducibleRNG(p)
        for _ in range(15):
            rows = random_rows(rng, rng.randrange(1, 6), rng.randrange(1, 6))
            assert modnp.rank_mod(rows, p) == rank_mod_py(rows, p)

    def test_echelon_shape_contract(self):
        ech, pivots = modnp.echelon_mod([[2, 4], [1, 2], [0, 1]], 7)
        assert pivots == [0, 1]
        # Unit pivots, zeros below.
        assert ech[0, 0] == 1 and ech[1, pivots[1]] == 1
        assert ech[1, 0] == 0 and ech[2, 0] == 0


class TestDetOracle:
    @pytest.mark.parametrize("p", (3, 10007, modnp.DEFAULT_PRIME))
    def test_single_matches_engines(self, p):
        rng = ReproducibleRNG(p + 1)
        for _ in range(15):
            n = rng.randrange(1, 6)
            rows = random_rows(rng, n, n)
            expected = bareiss_determinant(Matrix(rows)) % p
            assert modnp.det_mod(rows, p) == expected
            assert modnp.det_mod(rows, p) == det_mod_rows(rows, p)

    def test_batch_matches_singles(self):
        rng = ReproducibleRNG(99)
        p = 10007
        mats = [random_rows(rng, 4, 4) for _ in range(40)]
        batched = modnp.det_mod_batch(mats, p)
        for mat, d in zip(mats, batched):
            assert int(d) == modnp.det_mod(mat, p)

    def test_batch_mixes_singular_and_not(self):
        p = 101
        mats = [
            [[1, 2], [2, 4]],     # singular
            [[0, 1], [1, 0]],     # det -1 (swap path)
            [[3, 0], [0, 5]],     # det 15
            [[0, 0], [0, 0]],     # zero matrix
        ]
        assert modnp.det_mod_batch(mats, p).tolist() == [0, p - 1, 15, 0]

    def test_swap_sign(self):
        assert modnp.det_mod([[0, 1], [1, 0]], 7) == 6


class TestSpanMembership:
    def test_matches_exact_subspace(self):
        rng = ReproducibleRNG(5)
        p = modnp.DEFAULT_PRIME
        for _ in range(10):
            dim, amb = 2, 4
            basis = random_rows(rng, dim, amb, lo=-9, hi=9)
            span = Subspace.span([Vector(r) for r in basis])
            queries = random_rows(rng, 12, amb, lo=-9, hi=9)
            # Members: random combinations of the basis.
            members = [
                [
                    sum(c * row[j] for c, row in zip(coeffs, basis))
                    for j in range(amb)
                ]
                for coeffs in (
                    [rng.randrange(-4, 5) for _ in range(dim)]
                    for _ in range(6)
                )
            ]
            verdict = modnp.span_membership_batch(
                basis, members + queries, p
            )
            exact = [Vector(v) in span for v in members + queries]
            # Soundness direction: exact members are always mod-p members.
            for got, truth in zip(verdict, exact):
                if truth:
                    assert got
            # At a 2^31-scale prime, no false positives in practice either.
            assert verdict.tolist() == exact

    def test_column_span_wrapper(self):
        # Columns of A span {(1,0,1), (0,1,1)}-space.
        a = [[1, 0], [0, 1], [1, 1]]
        verdict = modnp.column_span_membership_batch(
            a, [[1, 0, 1], [0, 1, 1], [1, 1, 2], [0, 0, 1]], 10007
        )
        assert verdict.tolist() == [True, True, True, False]

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension"):
            modnp.span_membership_batch([[1, 0]], [[1, 0, 0]], 7)


class TestFingerprintDispatch:
    def test_small_prime_agrees_with_python(self):
        m = [[1, 2], [2, 4]]
        assert modnp.is_singular_mod(m, 10007)
        assert not modnp.is_singular_mod([[1, 0], [0, 1]], 10007)

    def test_oversized_prime_falls_back(self):
        # A 33-bit prime (what default_prime_bits can produce at n=255):
        # must dispatch to the pure-Python engine, not raise.
        p = 8589934609
        from repro.exact.modular import is_prime

        assert is_prime(p)
        assert modnp.is_singular_mod([[1, 2], [2, 4]], p)
        assert not modnp.is_singular_mod([[1, 0], [0, 1]], p)
