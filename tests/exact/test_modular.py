"""Tests for mod-p arithmetic (the randomized protocol's substrate)."""

import warnings

import pytest

from repro.exact.determinant import bareiss_determinant
from repro.exact.matrix import Matrix
from repro.exact.modular import (
    count_primes_with_bits,
    crt_combine,
    det_mod,
    det_mod_rows,
    is_prime,
    is_singular_mod,
    next_prime,
    primes_for_crt_bound,
    primes_in_range,
    random_prime_with_bits,
    rank_mod,
    solve_mod,
)
from repro.exact.rank import is_singular, rank
from repro.exact.solve import is_solvable
from repro.exact.vector import Vector
from repro.util.rng import ReproducibleRNG


class TestPrimes:
    def test_small_primes(self):
        assert [p for p in range(30) if is_prime(p)] == [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
        ]

    def test_carmichael_not_prime(self):
        assert not is_prime(561)
        assert not is_prime(1729)

    def test_large_known_prime(self):
        assert is_prime(2**31 - 1)  # Mersenne
        assert not is_prime(2**32 - 1)

    def test_next_prime(self):
        assert next_prime(14) == 17
        assert next_prime(17) == 17
        assert next_prime(0) == 2

    def test_primes_in_range(self):
        assert primes_in_range(10, 30) == [11, 13, 17, 19, 23, 29]
        assert primes_in_range(30, 10) == []

    def test_random_prime_bits(self):
        rng = ReproducibleRNG(0)
        for bits in (4, 8, 16):
            p = random_prime_with_bits(rng, bits)
            assert is_prime(p)
            assert p.bit_length() == bits
        with pytest.raises(ValueError):
            random_prime_with_bits(rng, 1)

    def test_count_primes_with_bits_exact(self):
        # primes in [8, 16): 11, 13
        assert count_primes_with_bits(4) == 2
        # primes in [4, 8): 5, 7
        assert count_primes_with_bits(3) == 2


class TestModularLinearAlgebra:
    def test_rank_mod_never_exceeds(self):
        rng = ReproducibleRNG(1)
        for _ in range(20):
            m = Matrix.random_kbit(rng, 4, 4, 3)
            assert rank_mod(m.to_int_rows(), 10007) <= rank(m)

    def test_det_mod_matches_exact(self):
        rng = ReproducibleRNG(2)
        for _ in range(25):
            m = Matrix.random_kbit(rng, 4, 4, 3)
            p = 10007
            assert det_mod(m, p) == bareiss_determinant(m) % p

    def test_det_mod_with_swaps(self):
        m = Matrix([[0, 1], [1, 0]])
        assert det_mod(m, 7) == (-1) % 7

    def test_det_mod_rows_wire_format(self):
        assert det_mod_rows([[0, 1], [1, 0]], 7) == (-1) % 7

    def test_det_mod_raw_rows_deprecated_but_working(self):
        with pytest.warns(DeprecationWarning, match="det_mod_rows"):
            assert det_mod([[0, 1], [1, 0]], 7) == (-1) % 7

    def test_det_mod_deprecation_blames_the_caller(self):
        # stacklevel=2 must attribute the warning to the calling file, not
        # to modular.py — otherwise downstream users cannot find their own
        # raw-rows call sites from the warning output.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            det_mod([[0, 1], [1, 0]], 7)
        (record,) = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert record.filename == __file__

    def test_det_mod_matrix_path_warns_nothing(self):
        # The supported Matrix path must stay silent — the shim fires only
        # for raw row sequences.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert det_mod(Matrix([[0, 1], [1, 0]]), 7) == (-1) % 7

    def test_det_mod_requires_prime(self):
        with pytest.raises(ValueError):
            det_mod(Matrix([[1]]), 4)
        with pytest.raises(ValueError):
            det_mod_rows([[1]], 4)
        with pytest.raises(ValueError):
            det_mod(Matrix([[1]]), -3)

    def test_det_mod_requires_square(self):
        with pytest.raises(ValueError):
            det_mod_rows([[1, 2]], 7)

    def test_singular_mod_one_sided(self):
        # Singular over Q => singular mod every p.
        rng = ReproducibleRNG(3)
        m = Matrix([[1, 2], [2, 4]])
        for p in (3, 7, 101, 10007):
            assert is_singular_mod(m.to_int_rows(), p)

    def test_unlucky_prime_false_positive(self):
        # det = 7: singular mod 7 but not over Q — the protocol's error mode.
        m = Matrix([[7, 0], [0, 1]])
        assert not is_singular(m)
        assert is_singular_mod(m.to_int_rows(), 7)
        assert not is_singular_mod(m.to_int_rows(), 11)

    def test_solve_mod_agrees_with_exact_solvability(self):
        rng = ReproducibleRNG(4)
        p = 10007
        for _ in range(20):
            a = Matrix.random_kbit(rng, 3, 3, 2)
            b = [rng.kbit_entry(2) for _ in range(3)]
            x = solve_mod(a.to_int_rows(), b, p)
            if is_solvable(a, Vector(b)):
                assert x is not None
                # Verify the residue solution.
                rows = a.to_int_rows()
                for i in range(3):
                    assert sum(rows[i][j] * x[j] for j in range(3)) % p == b[i] % p

    def test_solve_mod_inconsistent(self):
        assert solve_mod([[1, 1], [1, 1]], [0, 1], 7) is None

    def test_solve_mod_length_check(self):
        with pytest.raises(ValueError):
            solve_mod([[1, 1]], [1, 2], 7)


class TestCRT:
    def test_combine_known(self):
        # x = 2 mod 3, x = 3 mod 5 -> x = 8 mod 15
        assert crt_combine([2, 3], [3, 5]) == 8

    def test_combine_roundtrip(self):
        value = 123456789
        moduli = [10007, 10009, 10037]
        residues = [value % m for m in moduli]
        assert crt_combine(residues, moduli) == value

    def test_rejects_non_coprime(self):
        with pytest.raises(ValueError):
            crt_combine([1, 2], [6, 9])

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            crt_combine([1], [3, 5])

    def test_primes_for_crt_bound(self):
        primes = primes_for_crt_bound(10**12)
        product = 1
        for p in primes:
            assert is_prime(p)
            product *= p
        assert product > 2 * 10**12
