"""Tests for Hermite and Smith normal forms over Z."""

import pytest

from repro.exact.determinant import bareiss_determinant
from repro.exact.matrix import Matrix
from repro.exact.normal_forms import hermite_normal_form, smith_normal_form
from repro.exact.rank import rank
from repro.util.rng import ReproducibleRNG


def _random_int_matrix(rng, rows, cols, spread=10):
    return Matrix(
        [[rng.randrange(-spread, spread + 1) for _ in range(cols)] for _ in range(rows)]
    )


class TestHermite:
    def test_transform_is_unimodular_and_consistent(self):
        rng = ReproducibleRNG(0)
        for _ in range(15):
            m = _random_int_matrix(rng, 3, 4)
            form = hermite_normal_form(m)
            assert form.u @ m == form.h
            assert abs(bareiss_determinant(form.u)) == 1

    def test_rank_matches(self):
        rng = ReproducibleRNG(1)
        for _ in range(15):
            m = _random_int_matrix(rng, 4, 4, spread=4)
            assert hermite_normal_form(m).rank == rank(m)

    def test_pivots_positive_and_entries_reduced(self):
        rng = ReproducibleRNG(2)
        m = _random_int_matrix(rng, 4, 4)
        h = hermite_normal_form(m).h
        pivot_row = 0
        for col in range(4):
            if pivot_row >= 4:
                break
            value = h[pivot_row, col]
            if value != 0:
                assert value > 0
                for r in range(pivot_row):
                    assert 0 <= h[r, col] < value
                pivot_row += 1

    def test_abs_determinant(self):
        rng = ReproducibleRNG(3)
        for _ in range(10):
            m = _random_int_matrix(rng, 3, 3)
            assert hermite_normal_form(m).abs_determinant() == abs(
                bareiss_determinant(m)
            )

    def test_abs_determinant_requires_square(self):
        with pytest.raises(ValueError):
            hermite_normal_form(Matrix([[1, 2]])).abs_determinant()

    def test_identity_fixed_point(self):
        form = hermite_normal_form(Matrix.identity(3))
        assert form.h == Matrix.identity(3)


class TestSmith:
    def test_reconstruction(self):
        rng = ReproducibleRNG(4)
        for _ in range(15):
            m = _random_int_matrix(rng, 3, 3, spread=6)
            form = smith_normal_form(m)
            assert form.u @ m @ form.v == form.s
            assert abs(bareiss_determinant(form.u)) == 1
            assert abs(bareiss_determinant(form.v)) == 1

    def test_diagonal(self):
        rng = ReproducibleRNG(5)
        m = _random_int_matrix(rng, 3, 4, spread=5)
        s = smith_normal_form(m).s
        for i in range(3):
            for j in range(4):
                if i != j:
                    assert s[i, j] == 0

    def test_divisibility_chain(self):
        rng = ReproducibleRNG(6)
        for _ in range(15):
            m = _random_int_matrix(rng, 3, 3, spread=8)
            divisors = smith_normal_form(m).elementary_divisors()
            for a, b in zip(divisors, divisors[1:]):
                assert b % a == 0
                assert a > 0

    def test_known_example(self):
        m = Matrix([[2, 4, 4], [-6, 6, 12], [10, 4, 16]])
        assert smith_normal_form(m).elementary_divisors() == (2, 2, 156)

    def test_rank_matches(self):
        rng = ReproducibleRNG(7)
        for _ in range(10):
            m = _random_int_matrix(rng, 4, 3, spread=3)
            assert smith_normal_form(m).rank == rank(m)

    def test_abs_determinant(self):
        rng = ReproducibleRNG(8)
        for _ in range(10):
            m = _random_int_matrix(rng, 3, 3)
            assert smith_normal_form(m).abs_determinant() == abs(
                bareiss_determinant(m)
            )

    def test_zero_matrix(self):
        form = smith_normal_form(Matrix.zeros(2, 3))
        assert form.elementary_divisors() == ()
        assert form.rank == 0

    def test_singular_matrix(self):
        m = Matrix([[1, 2], [2, 4]])
        form = smith_normal_form(m)
        assert form.rank == 1
        assert form.abs_determinant() == 0
