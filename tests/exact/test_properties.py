"""Property-based tests (hypothesis) on the exact linear-algebra core.

These are the invariants the whole reproduction leans on; hypothesis probes
them over randomized small matrices with shrinking.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact.determinant import (
    bareiss_determinant,
    cofactor_determinant,
    hadamard_bound,
)
from repro.exact.elimination import bareiss_echelon, row_echelon
from repro.exact.matrix import Matrix
from repro.exact.modular import det_mod, rank_mod
from repro.exact.lu import lup_decompose
from repro.exact.qr import qr_decompose
from repro.exact.rank import rank
from repro.exact.solve import nullity, solve, verify_solution
from repro.exact.span import Subspace
from repro.exact.vector import Vector

entries = st.integers(min_value=-8, max_value=8)


def square_matrices(max_n: int = 4):
    return st.integers(min_value=1, max_value=max_n).flatmap(
        lambda n: st.lists(
            st.lists(entries, min_size=n, max_size=n), min_size=n, max_size=n
        ).map(Matrix)
    )


def rect_matrices(max_dim: int = 4):
    return st.tuples(
        st.integers(min_value=1, max_value=max_dim),
        st.integers(min_value=1, max_value=max_dim),
    ).flatmap(
        lambda dims: st.lists(
            st.lists(entries, min_size=dims[1], max_size=dims[1]),
            min_size=dims[0],
            max_size=dims[0],
        ).map(Matrix)
    )


@settings(max_examples=60, deadline=None)
@given(square_matrices())
def test_determinant_engines_agree(m):
    assert bareiss_determinant(m) == cofactor_determinant(m)


@settings(max_examples=60, deadline=None)
@given(square_matrices())
def test_hadamard_dominates_determinant(m):
    assert abs(bareiss_determinant(m)) <= hadamard_bound(m)


@settings(max_examples=60, deadline=None)
@given(rect_matrices())
def test_elimination_engines_agree_on_pivots(m):
    assert bareiss_echelon(m).pivot_cols == row_echelon(m).pivot_cols


@settings(max_examples=60, deadline=None)
@given(rect_matrices())
def test_rank_transpose_invariant(m):
    assert rank(m) == rank(m.T)


@settings(max_examples=60, deadline=None)
@given(rect_matrices())
def test_rank_nullity(m):
    assert rank(m) + nullity(m) == m.num_cols


@settings(max_examples=40, deadline=None)
@given(square_matrices())
def test_rank_mod_lower_bounds_rank(m):
    assert rank_mod(m.to_int_rows(), 10007) <= rank(m)


@settings(max_examples=40, deadline=None)
@given(square_matrices())
def test_det_mod_is_reduction(m):
    assert det_mod(m, 10007) == bareiss_determinant(m) % 10007


@settings(max_examples=40, deadline=None)
@given(rect_matrices())
def test_lup_reconstructs(m):
    assert lup_decompose(m).reconstruct() == m


@settings(max_examples=40, deadline=None)
@given(rect_matrices())
def test_qr_reconstructs_and_orthogonal(m):
    dec = qr_decompose(m)
    assert dec.reconstruct() == m
    assert dec.orthogonality_defect() == 0
    assert dec.rank() == rank(m)


@settings(max_examples=40, deadline=None)
@given(rect_matrices(), st.lists(entries, min_size=1, max_size=4))
def test_solve_soundness(m, b_entries):
    b = Vector((b_entries + [0] * m.num_rows)[: m.num_rows])
    result = solve(m, b)
    if result.solvable:
        assert result.particular is not None
        assert verify_solution(m, result.particular, b)
        for v in result.nullspace_basis:
            assert all(x == 0 for x in m.matvec(list(v)))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.lists(entries, min_size=3, max_size=3), min_size=1, max_size=3),
    st.lists(st.lists(entries, min_size=3, max_size=3), min_size=1, max_size=3),
)
def test_subspace_modular_law_inequality(rows_a, rows_b):
    # dim(a + b) + dim(a ∩ b) == dim a + dim b  (exact modular identity)
    a = Subspace.span([Vector(r) for r in rows_a])
    b = Subspace.span([Vector(r) for r in rows_b])
    assert (a + b).dimension + (a & b).dimension == a.dimension + b.dimension


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.lists(entries, min_size=4, max_size=4), min_size=1, max_size=3),
    st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=3, unique=True),
)
def test_projection_image_membership(rows, indices):
    # The projection of a member is a member of the projection.
    space = Subspace.span([Vector(r) for r in rows])
    member = Vector(rows[0])
    projected_space = space.project(indices)
    assert member.project(indices) in projected_space


@settings(max_examples=40, deadline=None)
@given(square_matrices(3), square_matrices(3))
def test_determinant_multiplicative(a, b):
    if a.shape == b.shape:
        assert bareiss_determinant(a @ b) == bareiss_determinant(a) * bareiss_determinant(b)
