"""Tests for exact QR (Corollary 1.2c substrate)."""

import pytest

from repro.exact.matrix import Matrix
from repro.exact.qr import is_singular_via_qr, qr_decompose
from repro.exact.rank import is_singular, rank
from repro.util.rng import ReproducibleRNG


class TestDecomposition:
    def test_reconstruction_random(self):
        rng = ReproducibleRNG(0)
        for _ in range(20):
            m = Matrix.random_kbit(rng, 4, 4, 2)
            assert qr_decompose(m).reconstruct() == m

    def test_q_columns_orthogonal(self):
        rng = ReproducibleRNG(1)
        for _ in range(10):
            m = Matrix.random_kbit(rng, 4, 4, 2)
            assert qr_decompose(m).orthogonality_defect() == 0

    def test_r_unit_upper_triangular(self):
        rng = ReproducibleRNG(2)
        m = Matrix.random_kbit(rng, 4, 4, 2)
        r = qr_decompose(m).r
        for i in range(4):
            assert r[i, i] == 1
            for j in range(i):
                assert r[i, j] == 0

    def test_rank_equals_nonzero_q_columns(self):
        rng = ReproducibleRNG(3)
        for _ in range(15):
            m = Matrix.random_kbit(rng, 4, 4, 2)
            assert qr_decompose(m).rank() == rank(m)

    def test_rectangular(self):
        m = Matrix([[1, 2], [3, 4], [5, 6]])
        dec = qr_decompose(m)
        assert dec.reconstruct() == m
        assert dec.rank() == 2

    def test_dependent_column_vanishes(self):
        m = Matrix([[1, 2], [1, 2]])  # second column = 2 * first
        q = qr_decompose(m).q
        assert q[0, 1] == 0 and q[1, 1] == 0


class TestSingularityOracle:
    def test_agrees_with_ground_truth(self):
        rng = ReproducibleRNG(4)
        for _ in range(20):
            m = Matrix.random_kbit(rng, 4, 4, 2)
            assert is_singular_via_qr(m) == is_singular(m)

    def test_structure_only_decision(self):
        # Only the nonzero pattern of Q is consulted (Corollary 1.2c's
        # strengthened form).
        singular = Matrix([[1, 1], [2, 2]])
        structure = qr_decompose(singular).q_nonzero_structure()
        populated_cols = {j for (_, j) in structure}
        assert populated_cols == {0}

    def test_requires_square(self):
        with pytest.raises(ValueError):
            qr_decompose(Matrix([[1, 2, 3]])).is_singular()
