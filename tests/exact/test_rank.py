"""Tests for rank, singularity and rank certificates."""

from fractions import Fraction

import pytest

from repro.exact.determinant import determinant
from repro.exact.matrix import Matrix
from repro.exact.rank import (
    column_space_contains,
    has_rank,
    is_nonsingular,
    is_singular,
    rank,
    rank_certified,
    rank_lower_bound_mod,
    rank_profile,
    row_rank_profile,
)
from repro.exact.vector import Vector
from repro.util.rng import ReproducibleRNG


class TestRank:
    def test_identity(self):
        assert rank(Matrix.identity(5)) == 5

    def test_zero(self):
        assert rank(Matrix.zeros(3, 4)) == 0

    def test_rational_entries(self):
        assert rank(Matrix([[Fraction(1, 2), 1], [1, 2]])) == 1

    def test_rank_of_outer_product_is_one(self):
        u = [1, 2, 3]
        v = [4, 5, 6]
        m = Matrix.from_function(3, 3, lambda i, j: u[i] * v[j])
        assert rank(m) == 1

    def test_rank_transpose_invariant(self):
        rng = ReproducibleRNG(0)
        for _ in range(15):
            m = Matrix.random_kbit(rng, 3, 5, 2)
            assert rank(m) == rank(m.T)

    def test_rank_subadditive(self):
        rng = ReproducibleRNG(1)
        a = Matrix.random_kbit(rng, 4, 4, 2)
        b = Matrix.random_kbit(rng, 4, 4, 2)
        assert rank(a + b) <= rank(a) + rank(b)

    def test_product_rank_bounded(self):
        rng = ReproducibleRNG(2)
        a = Matrix.random_kbit(rng, 4, 4, 2)
        b = Matrix.random_kbit(rng, 4, 4, 2)
        assert rank(a @ b) <= min(rank(a), rank(b))


class TestSingularity:
    def test_matches_determinant(self):
        rng = ReproducibleRNG(3)
        for _ in range(25):
            m = Matrix.random_kbit(rng, 4, 4, 2)
            assert is_singular(m) == (determinant(m) == 0)
            assert is_nonsingular(m) == (not is_singular(m))

    def test_requires_square(self):
        with pytest.raises(ValueError):
            is_singular(Matrix([[1, 2]]))

    def test_duplicate_column_singular(self):
        m = Matrix([[1, 1, 0], [2, 2, 1], [3, 3, 5]])
        assert is_singular(m)

    def test_has_rank(self):
        assert has_rank(Matrix.identity(3), 3)
        assert not has_rank(Matrix.identity(3), 2)
        with pytest.raises(ValueError):
            has_rank(Matrix.identity(2), -1)


class TestRankProfiles:
    def test_pivot_columns_lexicographically_first(self):
        m = Matrix([[0, 1, 1], [0, 2, 3]])
        assert rank_profile(m) == (1, 2)

    def test_row_profile(self):
        m = Matrix([[0, 0], [1, 0], [2, 0]])
        assert row_rank_profile(m) == (1,)

    def test_certified_rank_witness(self):
        rng = ReproducibleRNG(4)
        for _ in range(10):
            m = Matrix.random_kbit(rng, 4, 5, 2)
            r, rows, cols = rank_certified(m)
            assert r == rank(m)
            if r:
                witness = m.submatrix(rows, cols)
                assert determinant(witness) != 0

    def test_certified_zero_matrix(self):
        assert rank_certified(Matrix.zeros(2, 2)) == (0, (), ())


class TestModularLowerBound:
    def test_never_exceeds_true_rank(self):
        rng = ReproducibleRNG(5)
        for _ in range(15):
            m = Matrix.random_kbit(rng, 4, 4, 3)
            assert rank_lower_bound_mod(m) <= rank(m)

    def test_usually_tight(self):
        rng = ReproducibleRNG(6)
        hits = sum(
            rank_lower_bound_mod(m) == rank(m)
            for m in (Matrix.random_kbit(rng, 4, 4, 3) for _ in range(20))
        )
        assert hits == 20  # a 31-bit prime never divides these tiny minors


class TestColumnSpaceContains:
    def test_column_itself(self):
        m = Matrix([[1, 0], [0, 1], [1, 1]])
        assert column_space_contains(m, Vector([1, 0, 1]))

    def test_outside_vector(self):
        m = Matrix([[1], [0], [0]])
        assert not column_space_contains(m, Vector([0, 1, 0]))

    def test_zero_vector_always_inside(self):
        m = Matrix([[1], [2], [3]])
        assert column_space_contains(m, Vector([0, 0, 0]))

    def test_length_check(self):
        with pytest.raises(ValueError):
            column_space_contains(Matrix([[1], [2]]), Vector([1, 2, 3]))
