"""Tests for exact solving and solvability (Corollary 1.3 substrate)."""

from fractions import Fraction

import pytest

from repro.exact.matrix import Matrix
from repro.exact.rank import rank
from repro.exact.solve import (
    invert,
    is_solvable,
    nullity,
    nullspace,
    solve,
    verify_solution,
)
from repro.exact.vector import Vector
from repro.util.rng import ReproducibleRNG


class TestSolvability:
    def test_rouche_capelli_random(self):
        rng = ReproducibleRNG(0)
        for _ in range(25):
            a = Matrix.random_kbit(rng, 4, 4, 2)
            b = Vector([rng.kbit_entry(2) for _ in range(4)])
            augmented = a.hstack(Matrix.column(list(b)))
            assert is_solvable(a, b) == (rank(augmented) == rank(a))

    def test_always_solvable_full_rank(self):
        a = Matrix.identity(3)
        assert is_solvable(a, Vector([5, 6, 7]))

    def test_unsolvable_example(self):
        a = Matrix([[1, 1], [1, 1]])
        assert not is_solvable(a, Vector([0, 1]))

    def test_length_check(self):
        with pytest.raises(ValueError):
            is_solvable(Matrix.identity(2), Vector([1, 2, 3]))


class TestSolve:
    def test_solution_verifies(self):
        rng = ReproducibleRNG(1)
        solved = 0
        for _ in range(25):
            a = Matrix.random_kbit(rng, 3, 4, 2)
            b = Vector([rng.kbit_entry(2) for _ in range(3)])
            result = solve(a, b)
            if result.solvable:
                solved += 1
                assert result.particular is not None
                assert verify_solution(a, result.particular, b)
        assert solved > 0

    def test_unsolvable_reports_empty(self):
        result = solve(Matrix([[1, 1], [1, 1]]), Vector([0, 1]))
        assert not result.solvable
        assert result.particular is None
        assert result.dimension == -1

    def test_unique_solution(self):
        result = solve(Matrix.identity(3), Vector([1, 2, 3]))
        assert result.is_unique()
        assert result.particular == Vector([1, 2, 3])

    def test_solution_set_dimension(self):
        a = Matrix([[1, 1, 1]])
        result = solve(a, Vector([3]))
        assert result.dimension == 2
        # Every sampled member solves the system.
        member = result.sample([Fraction(2), Fraction(-5)])
        assert verify_solution(a, member, Vector([3]))

    def test_sample_coefficient_count(self):
        result = solve(Matrix([[1, 1]]), Vector([1]))
        with pytest.raises(ValueError):
            result.sample([1, 2, 3])

    def test_sample_unsolvable(self):
        result = solve(Matrix([[0, 0]]), Vector([1]))
        with pytest.raises(ValueError):
            result.sample([])


class TestNullspace:
    def test_rank_nullity(self):
        rng = ReproducibleRNG(2)
        for _ in range(15):
            a = Matrix.random_kbit(rng, 3, 5, 2)
            assert rank(a) + nullity(a) == a.num_cols

    def test_nullspace_vectors_annihilated(self):
        a = Matrix([[1, 2, 3], [4, 5, 6]])
        for v in nullspace(a):
            assert all(x == 0 for x in a.matvec(list(v)))

    def test_full_rank_trivial_nullspace(self):
        assert nullspace(Matrix.identity(3)) == ()


class TestInvert:
    def test_inverse_identity(self):
        rng = ReproducibleRNG(3)
        tested = 0
        while tested < 10:
            m = Matrix.random_kbit(rng, 3, 3, 3)
            try:
                inverse = invert(m)
            except ValueError:
                continue
            tested += 1
            assert inverse @ m == Matrix.identity(3)
            assert m @ inverse == Matrix.identity(3)

    def test_singular_rejected(self):
        with pytest.raises(ValueError):
            invert(Matrix([[1, 2], [2, 4]]))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            invert(Matrix([[1, 2]]))

    def test_rational_inverse(self):
        m = Matrix([[2, 0], [0, 4]])
        assert invert(m) == Matrix([[Fraction(1, 2), 0], [0, Fraction(1, 4)]])
