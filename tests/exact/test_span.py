"""Tests for the Subspace lattice (Lemmas 3.2–3.7 substrate)."""

from fractions import Fraction

import pytest

from repro.exact.matrix import Matrix
from repro.exact.span import Subspace
from repro.exact.vector import Vector
from repro.util.rng import ReproducibleRNG


class TestConstruction:
    def test_span_dimension(self):
        s = Subspace.span([Vector([1, 0, 0]), Vector([0, 1, 0]), Vector([1, 1, 0])])
        assert s.dimension == 2

    def test_span_of_dependent_vectors(self):
        s = Subspace.span([Vector([1, 2]), Vector([2, 4])])
        assert s.dimension == 1

    def test_span_needs_vectors(self):
        with pytest.raises(ValueError):
            Subspace.span([])

    def test_ambient_mismatch(self):
        with pytest.raises(ValueError):
            Subspace.span([Vector([1]), Vector([1, 2])])

    def test_column_space(self):
        m = Matrix([[1, 0], [0, 1], [0, 0]])
        s = Subspace.column_space(m)
        assert s.ambient == 3 and s.dimension == 2

    def test_zero_and_full(self):
        assert Subspace.zero(3).dimension == 0
        assert Subspace.full(3).is_full()
        with pytest.raises(ValueError):
            Subspace.zero(0)

    def test_rational_vectors(self):
        s = Subspace.span([Vector([Fraction(1, 2), 1])])
        assert Vector([1, 2]) in s


class TestCanonicalEquality:
    def test_same_space_different_generators(self):
        a = Subspace.span([Vector([1, 0]), Vector([0, 1])])
        b = Subspace.span([Vector([1, 1]), Vector([1, -1])])
        assert a == b
        assert hash(a) == hash(b)

    def test_scaled_generators(self):
        assert Subspace.span([Vector([2, 4, 6])]) == Subspace.span([Vector([1, 2, 3])])

    def test_distinct_spaces_differ(self):
        assert Subspace.span([Vector([1, 0])]) != Subspace.span([Vector([0, 1])])

    def test_hashable_in_sets(self):
        rng = ReproducibleRNG(0)
        spaces = {
            Subspace.span([Vector([rng.kbit_entry(2) for _ in range(3)])])
            for _ in range(20)
        }
        assert len(spaces) >= 2


class TestMembership:
    def test_generators_contained(self):
        vectors = [Vector([1, 2, 3]), Vector([0, 1, 1])]
        s = Subspace.span(vectors)
        for v in vectors:
            assert v in s

    def test_linear_combinations_contained(self):
        s = Subspace.span([Vector([1, 0, 1]), Vector([0, 1, 1])])
        assert Vector([2, 3, 5]) in s

    def test_outside_vector(self):
        s = Subspace.span([Vector([1, 0, 0])])
        assert Vector([0, 1, 0]) not in s

    def test_zero_always_member(self):
        assert Vector([0, 0]) in Subspace.zero(2)
        assert Vector([0, 0]) in Subspace.span([Vector([1, 1])])

    def test_subspace_containment(self):
        small = Subspace.span([Vector([1, 0, 0])])
        big = Subspace.span([Vector([1, 0, 0]), Vector([0, 1, 0])])
        assert small <= big
        assert not big <= small

    def test_ambient_check(self):
        with pytest.raises(ValueError):
            Subspace.zero(2).contains(Vector([1, 2, 3]))


class TestLatticeOperations:
    def test_sum_dimension_formula(self):
        rng = ReproducibleRNG(1)
        for _ in range(10):
            a = Subspace.span(
                [Vector([rng.kbit_entry(2) for _ in range(4)]) for _ in range(2)]
            )
            b = Subspace.span(
                [Vector([rng.kbit_entry(2) for _ in range(4)]) for _ in range(2)]
            )
            # dim(a + b) = dim a + dim b - dim(a ∩ b)
            assert (a + b).dimension == a.dimension + b.dimension - (a & b).dimension

    def test_intersection_commutative(self):
        a = Subspace.span([Vector([1, 0, 0]), Vector([0, 1, 0])])
        b = Subspace.span([Vector([0, 1, 0]), Vector([0, 0, 1])])
        assert (a & b) == (b & a)
        assert (a & b) == Subspace.span([Vector([0, 1, 0])])

    def test_intersection_with_zero(self):
        a = Subspace.span([Vector([1, 1])])
        assert (a & Subspace.zero(2)).is_zero()

    def test_intersection_with_self(self):
        a = Subspace.span([Vector([1, 2, 3]), Vector([1, 0, 0])])
        assert (a & a) == a

    def test_intersection_of_chain(self):
        spaces = [
            Subspace.span([Vector([1, 0, 0]), Vector([0, 1, 0])]),
            Subspace.span([Vector([1, 0, 0]), Vector([0, 0, 1])]),
            Subspace.span([Vector([1, 0, 0]), Vector([0, 1, 1])]),
        ]
        inter = Subspace.intersection_of(spaces)
        assert inter == Subspace.span([Vector([1, 0, 0])])

    def test_intersection_of_requires_nonempty(self):
        with pytest.raises(ValueError):
            Subspace.intersection_of([])

    def test_sum_is_join(self):
        a = Subspace.span([Vector([1, 0])])
        b = Subspace.span([Vector([0, 1])])
        assert (a + b).is_full()
        assert a.spans_with(b)
        assert not a.spans_with(a)


class TestProjection:
    def test_projection_of_full_space(self):
        s = Subspace.full(4)
        assert s.project([0, 2]).is_full()

    def test_projection_can_drop_dimension(self):
        s = Subspace.span([Vector([1, 0, 0]), Vector([0, 1, 0])])
        p = s.project([2])
        assert p.is_zero()

    def test_projection_of_zero(self):
        assert Subspace.zero(3).project([0, 1]).is_zero()

    def test_projection_index_checks(self):
        s = Subspace.full(3)
        with pytest.raises(ValueError):
            s.project([])
        with pytest.raises(ValueError):
            s.project([5])

    def test_projection_dimension_never_grows(self):
        rng = ReproducibleRNG(2)
        for _ in range(10):
            s = Subspace.span(
                [Vector([rng.kbit_entry(2) for _ in range(5)]) for _ in range(3)]
            )
            assert s.project([1, 2, 3]).dimension <= s.dimension
