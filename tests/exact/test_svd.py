"""Tests for SVD structure (Corollary 1.2d substrate)."""

import pytest

from repro.exact.matrix import Matrix
from repro.exact.rank import is_singular, rank
from repro.exact.svd import (
    gram_matrix,
    gram_rank_agrees,
    is_singular_via_svd,
    numeric_svd_check,
    svd_structure,
)
from repro.util.rng import ReproducibleRNG


class TestStructure:
    def test_sigma_pattern_size_is_rank(self):
        rng = ReproducibleRNG(0)
        for _ in range(15):
            m = Matrix.random_kbit(rng, 4, 4, 2)
            s = svd_structure(m)
            assert len(s.sigma_pattern) == rank(m)
            assert s.num_nonzero_singular_values() == rank(m)

    def test_pattern_on_leading_diagonal(self):
        m = Matrix([[1, 1], [2, 2]])
        assert svd_structure(m).sigma_pattern == frozenset({(0, 0)})

    def test_rectangular(self):
        m = Matrix([[1, 2, 3], [2, 4, 6]])
        s = svd_structure(m)
        assert s.shape == (2, 3)
        assert s.rank == 1

    def test_singularity_oracle(self):
        rng = ReproducibleRNG(1)
        for _ in range(20):
            m = Matrix.random_kbit(rng, 4, 4, 2)
            assert is_singular_via_svd(m) == is_singular(m)

    def test_singularity_requires_square(self):
        with pytest.raises(ValueError):
            svd_structure(Matrix([[1, 2, 3]])).is_singular()


class TestGram:
    def test_gram_is_symmetric(self):
        rng = ReproducibleRNG(2)
        m = Matrix.random_kbit(rng, 3, 4, 2)
        g = gram_matrix(m)
        assert g == g.T
        assert g.shape == (4, 4)

    def test_gram_rank_invariant(self):
        rng = ReproducibleRNG(3)
        for _ in range(15):
            assert gram_rank_agrees(Matrix.random_kbit(rng, 3, 4, 2))

    def test_gram_rank_invariant_rank_deficient(self):
        assert gram_rank_agrees(Matrix([[1, 2], [2, 4], [3, 6]]))


class TestNumericCrossCheck:
    def test_agrees_on_modest_matrices(self):
        rng = ReproducibleRNG(4)
        for _ in range(15):
            assert numeric_svd_check(Matrix.random_kbit(rng, 4, 4, 3))

    def test_agrees_on_zero(self):
        assert numeric_svd_check(Matrix.zeros(3, 3))

    def test_agrees_on_exact_rank_deficiency(self):
        assert numeric_svd_check(Matrix([[1, 2], [2, 4]]))
