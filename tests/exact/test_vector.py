"""Tests for the exact Vector container."""

from fractions import Fraction

import pytest

from repro.exact.vector import Vector


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Vector([])

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            Vector([0.5])

    def test_zeros_and_unit(self):
        assert Vector.zeros(3).is_zero()
        e1 = Vector.unit(3, 1)
        assert e1[1] == 1 and e1[0] == 0
        with pytest.raises(ValueError):
            Vector.unit(3, 3)

    def test_from_function(self):
        assert Vector.from_function(3, lambda i: i * i) == Vector([0, 1, 4])

    def test_geometric_descending(self):
        v = Vector.geometric(-3, 4)
        assert v == Vector([-27, 9, -3, 1])

    def test_geometric_ascending(self):
        v = Vector.geometric(2, 3, descending=False)
        assert v == Vector([1, 2, 4])

    def test_geometric_rejects_zero_length(self):
        with pytest.raises(ValueError):
            Vector.geometric(2, 0)


class TestArithmetic:
    def test_add_sub(self):
        a = Vector([1, 2])
        b = Vector([3, 4])
        assert (a + b) - b == a

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Vector([1]) + Vector([1, 2])

    def test_scale(self):
        assert 2 * Vector([1, 2]) == Vector([2, 4])
        assert Vector([1, 2]) * Fraction(1, 2) == Vector([Fraction(1, 2), 1])

    def test_neg(self):
        assert -Vector([1, -2]) == Vector([-1, 2])

    def test_dot(self):
        assert Vector([1, 2, 3]).dot(Vector([4, 5, 6])) == 32
        assert Vector([1, 2]).dot([3, 4]) == 11
        with pytest.raises(ValueError):
            Vector([1]).dot(Vector([1, 2]))

    def test_concat(self):
        assert Vector([1]).concat(Vector([2, 3])) == Vector([1, 2, 3])

    def test_project(self):
        v = Vector([10, 20, 30, 40])
        assert v.project([1, 3]) == Vector([20, 40])

    def test_slice_returns_vector(self):
        v = Vector([1, 2, 3, 4])
        assert v[1:3] == Vector([2, 3])


class TestIntrospection:
    def test_support(self):
        assert Vector([0, 5, 0, -1]).support() == frozenset({1, 3})

    def test_is_integer_and_to_ints(self):
        assert Vector([1, 2]).to_ints() == [1, 2]
        v = Vector([Fraction(1, 2)])
        assert not v.is_integer()
        with pytest.raises(ValueError):
            v.to_ints()

    def test_max_abs_entry(self):
        assert Vector([1, -9, 3]).max_abs_entry() == 9

    def test_hash_equality(self):
        assert Vector([1, 2]) == Vector([1, 2])
        assert hash(Vector([1, 2])) == hash(Vector([1, 2]))
        assert Vector([1, 2]) != Vector([2, 1])
        assert (Vector([1]) == 7) is False

    def test_iteration(self):
        assert list(Vector([1, 2, 3])) == [1, 2, 3]
        assert len(Vector([1, 2, 3])) == 3

    def test_repr(self):
        assert "1, 2" in repr(Vector([1, 2]))
        assert "len=20" in repr(Vector([0] * 20))
