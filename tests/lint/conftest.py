"""Shared lint-test machinery: one lint run over the fixture tree."""

from pathlib import Path

import pytest

from repro.lint import LintConfig, run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def fixture_config() -> LintConfig:
    """A config pointed at the fixture tree (default scopes apply).

    The cost scope is narrowed to the ``cost_cases`` module so the
    SES/ISO/DET fixture protocols are not dragged into plan accounting.
    """
    src_root = FIXTURES / "src"
    return LintConfig(
        src_root=src_root,
        paths=(src_root / "repro",),
        cost_scope=("repro.protocols.cost_cases",),
        wire_module=src_root / "repro" / "protocols" / "wire.py",
        wire_test_paths=(FIXTURES / "wire_exercise.py",),
        plan_module=src_root / "repro" / "costs" / "plan.py",
        baseline_path=None,
    )


@pytest.fixture(scope="session")
def fixture_report():
    """The fixture tree linted once, shared by every rule test."""
    return run_lint(fixture_config(), repo_root=FIXTURES)


def findings_at(report, path_suffix=None, symbol=None, code=None):
    """Findings filtered by display-path suffix / symbol / code."""
    return [
        f
        for f in report.findings
        if (path_suffix is None or f.path.endswith(path_suffix))
        and (symbol is None or f.symbol == symbol)
        and (code is None or f.code == code)
    ]


def codes_at(report, path_suffix=None, symbol=None) -> set[str]:
    return {f.code for f in findings_at(report, path_suffix, symbol)}
