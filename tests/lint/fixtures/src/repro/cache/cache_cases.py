"""Deliberate DET violations in cache code — scanned, never imported.

The persistent cache's contract is byte-stable records: no clocks, no
ambient randomness, no dict/set iteration order reaching the encoder.
These seeded cases prove the DET family watches ``repro.cache.*``.
"""

import random
import time
from time import monotonic  # import line is a DET203 finding


def encode_record(record):
    """Local stand-in so sink detection has something to find."""
    return str(record)


def jittered_retry_delay():
    return random.random()  # DET201


def timestamped_record(record):
    return {"at": time.time(), **record}  # DET203


def leaks_field_order(record):
    out = []
    for value in record.values():  # DET204: dict order reaches the encoder
        out.append(encode_record(value))
    return out


def leaks_key_set(keys, records):
    out = []
    for key in set(keys):  # DET204
        out.append(encode_record(records[key]))
    return out


def harmless_set_membership(keys):
    return sorted(k for k in set(keys))  # control: no sink in here


def canonical_encoding(record):
    out = {}
    for field in sorted(record):  # control: sorted() iteration in a sink fn
        out[field] = record[field]
    return encode_record(out)
