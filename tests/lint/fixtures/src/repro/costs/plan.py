"""Fixture plan table for the COST rules — a pure literal, never imported.

``GhostProtocol`` deliberately names no class in the fixture cost scope
(COST603); ``DriftedProtocol``/``SilencedDrift`` declare ``n_bits`` while
their code ships ``2*n_bits`` (COST601).
"""

PROTOCOL_PLANS = {
    "AccountedProtocol": (
        {"sender": 0, "width": "n_bits", "repeat": "1"},
        {"sender": 1, "width": "1", "repeat": "1"},
    ),
    "DriftedProtocol": (
        {"sender": 0, "width": "n_bits", "repeat": "1"},
        {"sender": 1, "width": "1", "repeat": "1"},
    ),
    "SilencedDrift": (
        {"sender": 0, "width": "n_bits", "repeat": "1"},
        {"sender": 1, "width": "1", "repeat": "1"},
    ),
    "GhostProtocol": (
        {"sender": 0, "width": "n", "repeat": "1"},
    ),
}
