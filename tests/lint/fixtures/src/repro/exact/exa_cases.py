"""Deliberate EXA violations — scanned by the lint tests, never imported."""

import math

import numpy as np


def half():
    return 0.5  # EXA101


def spin():
    return 1j  # EXA101 (complex literal)


def to_float(x):
    return float(x)  # EXA102


def log_of(x):
    return math.log2(x)  # EXA102


def isqrt_ok(x):
    return math.isqrt(x) + math.gcd(x, 6)  # control: integer-exact, clean


def as_float_array(xs):
    return np.asarray(xs, dtype=np.float64)  # EXA103


def stringly_typed(xs):
    return np.asarray(xs).astype("float64")  # EXA103


def numeric_rank(a):
    return np.linalg.matrix_rank(a)  # EXA103


def near(a, b):
    return np.isclose(a, b)  # EXA104


def uint_ok(xs):
    return np.asarray(xs, dtype=np.uint64)  # control: integer dtype, clean
