# repro-lint: disable-file=EXA101
"""Whole-file suppression: every EXA101 below is pragma-suppressed."""

HALF = 0.5
QUARTER = 0.25
