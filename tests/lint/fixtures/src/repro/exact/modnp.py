"""Allowlisted kernel stand-in: EXA rules must skip this module entirely."""


def scale(x):
    return float(x) * 0.5  # would be EXA101 + EXA102 anywhere else
