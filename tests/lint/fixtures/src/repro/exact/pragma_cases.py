"""Pragma suppression fixtures: line pragmas and def-header pragmas."""

import math


def reported_bits(x):
    return math.log2(x)  # repro-lint: disable=EXA102 -- display only


def documented_boundary():  # repro-lint: disable=EXA101,EXA102
    scaled = float(7)
    return scaled + 0.5


def still_flagged():
    return 0.25  # active EXA101: no pragma anywhere near
