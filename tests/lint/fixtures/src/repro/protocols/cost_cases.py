"""Deliberate COST plan-accounting cases — scanned by lint tests, never run.

The fixture plan table lives in ``../costs/plan.py``; the fixture config
narrows the cost scope to exactly this module so the SES/ISO/DET fixture
protocols elsewhere in the tree stay out of plan accounting.
"""


def Send(bits):
    return bits


def Recv(nbits):
    return nbits


def int_to_bits(value, width):
    return [value] * width


class AccountedProtocol:
    """Control: the derived plan matches the declared entry exactly."""

    def __init__(self, n_bits):
        self.n_bits = n_bits

    def agent0(self, x):
        yield Send(int_to_bits(x, self.n_bits))
        (verdict,) = yield Recv(1)

    def agent1(self, y):
        payload = yield Recv(self.n_bits)
        yield Send([1])


class DriftedProtocol:
    """COST601: code ships 2*n_bits where the table still says n_bits."""

    def __init__(self, n_bits):
        self.n_bits = n_bits

    def agent0(self, x):
        yield Send(int_to_bits(x, 2 * self.n_bits))
        (verdict,) = yield Recv(1)

    def agent1(self, y):
        payload = yield Recv(2 * self.n_bits)
        yield Send([1])


class UndeclaredProtocol:
    """COST602: exchanges bits but the plan table has no entry for it."""

    def __init__(self, n_bits):
        self.n_bits = n_bits

    def agent0(self, x):
        yield Send(int_to_bits(x, self.n_bits))
        (verdict,) = yield Recv(1)

    def agent1(self, y):
        payload = yield Recv(self.n_bits)
        yield Send([1])


class SilencedDrift:  # repro-lint: disable=COST601 -- seeded pragma case
    """Pragma control: same drift as DriftedProtocol, suppressed."""

    def __init__(self, n_bits):
        self.n_bits = n_bits

    def agent0(self, x):
        yield Send(int_to_bits(x, 2 * self.n_bits))
        (verdict,) = yield Recv(1)

    def agent1(self, y):
        payload = yield Recv(2 * self.n_bits)
        yield Send([1])
