"""Deliberate DET violations — scanned by the lint tests, never imported."""

import random
import time
from datetime import datetime
from random import shuffle

import numpy as np


def Send(bits):
    """Local stand-in so sink detection has something to find."""
    return bits


def ambient_coin():
    return random.randrange(2)  # DET201


def ambient_shuffle(xs):
    shuffle(xs)  # import line is the DET201 finding
    return xs


def np_noise(n):
    return np.random.randint(0, 2, size=n)  # DET202


def wall_clock_deadline():
    return time.time() + 5  # DET203


def stamped():
    return datetime.now()  # DET203 (plus the import-line finding)


def leaks_set_order(positions, view):
    out = []
    for p in set(positions):  # DET204: unordered order reaches Send
        out.append(Send([view[p]]))
    return out


def leaks_values_view(table):
    return [Send(v) for v in table.values()]  # DET204


def harmless_set_iteration(positions):
    return sorted(p for p in set(positions))  # control: no sink in here


def canonical_order(positions, view):
    out = []
    for p in sorted(positions):  # control: sorted() iteration in a sink fn
        out.append(Send([view[p]]))
    return out
