"""Deliberate ISO violations — scanned by the lint tests, never imported."""

_SCRATCH = {}

PROTOCOL_NAME = "fixture"  # control: immutable module global


def Send(bits):
    return bits


def BitChannel(capacity):
    """Local stand-in for the channel type (never constructed for real)."""
    return capacity


class PeekingProtocol:
    def agent0(self, input0, input1):  # ISO301: takes the other view
        if input1[0]:  # ISO301: reads the other view
            return Send([1])
        return Send([input0[0]])

    def agent1(self, view1):
        _SCRATCH["last"] = view1  # ISO302: mutable module global
        return _SCRATCH  # ISO302 again

    def alice_sneaky(self, view0):
        global PROTOCOL_NAME  # ISO302: global statement
        PROTOCOL_NAME = "peeked"
        return view0


def bob_direct(channel, view1):
    channel.send(1, view1)  # ISO303: drives the endpoint itself
    spare = BitChannel(4)  # ISO303: constructs a channel
    return spare


def agent0(partition, m):
    view0, _ = partition.split_input(m)  # ISO304: held the whole input
    return view0


def neutral_helper(input1):
    """Control: unclassified function — may mention any view or global."""
    _SCRATCH["ok"] = input1
    return _SCRATCH
