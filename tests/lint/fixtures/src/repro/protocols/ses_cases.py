"""Deliberate SES duality violations — scanned by the lint tests, never run."""


def Send(bits):
    return bits


def Recv(nbits):
    return nbits


def int_to_bits(value, width):
    return [value] * width


class MismatchedTurnOrder:
    """SES501: both parties speak first — a static deadlock."""

    def agent0(self, x):
        yield Send([x])
        (ack,) = yield Recv(1)

    def agent1(self, y):
        yield Send([y])  # wrong: should Recv agent0's bit first
        (ack,) = yield Recv(1)


class UnmatchedRecv:
    """SES501: agent1 expects a second message nobody sends."""

    def agent0(self, x):
        yield Send([x])

    def agent1(self, y):
        (bit,) = yield Recv(1)
        (extra,) = yield Recv(1)
        yield Send([1])


class WidthMismatch:
    """SES502: widths resolve on both sides and disagree by one bit."""

    def __init__(self, width):
        self.width = width

    def agent0(self, x):
        yield Send(int_to_bits(x, self.width))
        (ack,) = yield Recv(1)

    def agent1(self, y):
        payload = yield Recv(self.width + 1)  # off by one
        yield Send([1])


class LoopBoundMismatch:
    """SES503: the parties disagree on the number of rounds."""

    def __init__(self, rounds):
        self.rounds = rounds

    def agent0(self, x):
        for _ in range(self.rounds):
            yield Send([x])
        (ack,) = yield Recv(1)

    def agent1(self, y):
        for _ in range(self.rounds + 1):
            (bit,) = yield Recv(1)
        yield Send([1])


class WellPaired:
    """Control: a textbook dual pair — no findings."""

    def __init__(self, n_bits):
        self.n_bits = n_bits

    def agent0(self, x):
        yield Send(int_to_bits(x, self.n_bits))
        (verdict,) = yield Recv(1)

    def agent1(self, y):
        payload = yield Recv(self.n_bits)
        yield Send([1])


class DispatchedProtocol:
    """Control: agents dispatch to distinct helpers; extraction follows."""

    def __init__(self, n_bits):
        self.n_bits = n_bits

    def agent0(self, x):
        return self._talk(x)

    def _talk(self, value):
        yield Send(int_to_bits(value, self.n_bits))
        (ack,) = yield Recv(1)

    def agent1(self, y):
        return self._listen(y)

    def _listen(self, value):
        payload = yield Recv(self.n_bits)
        yield Send([1])


class StreamingRecv:
    """Control: data-dependent while loops degrade to UNBOUNDED, not a crash.

    The bounds are unresolvable so duality holds structurally; nothing
    is reported and the loop carries the documented UNBOUNDED term.
    """

    def agent0(self, x):
        while x:
            yield Send([x[0]])
            x = x[1:]
        (ack,) = yield Recv(1)

    def agent1(self, y):
        while y:
            (bit,) = yield Recv(1)
            y = y - 1
        yield Send([1])


class SilencedMismatch:  # repro-lint: disable=SES501 -- seeded pragma case
    """Pragma control: same defect as MismatchedTurnOrder, suppressed."""

    def agent0(self, x):
        yield Send([x])
        (ack,) = yield Recv(1)

    def agent1(self, y):
        yield Send([y])
        (ack,) = yield Recv(1)
