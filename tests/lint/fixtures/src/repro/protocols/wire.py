"""Fixture wire module: a tested pair, two orphans, an untested pair."""


def encode_tag(value):
    return [value & 1]


def decode_tag(bits, cursor):
    return bits[cursor], cursor + 1


def encode_orphan(value):  # WIRE401: no decode_orphan
    return [value]


def decode_widow(bits, cursor):  # WIRE402: no encode_widow
    return bits[cursor], cursor + 1


def encode_untested(value):  # WIRE403: pair exists, tests never touch it
    return [value]


def decode_untested(bits, cursor):
    return bits[cursor], cursor + 1
