"""Deliberate ASY asyncio hazards — scanned by the lint tests, never run."""

import asyncio
import time


class BlockingHandler:
    async def handle(self, request):
        time.sleep(0.5)  # ASY701: stalls the whole event loop
        return request

    async def polite(self, request):
        await asyncio.sleep(0)  # control: yields to the loop
        return request


class DroppedCoroutine:
    async def _flush(self):
        await asyncio.sleep(0)

    async def stop(self):
        self._flush()  # ASY702: coroutine object built and discarded

    async def stop_properly(self):
        await self._flush()  # control: awaited

    async def stop_scheduled(self):
        task = asyncio.create_task(self._flush())  # control: scheduled
        await task


class StaleCounter:
    def __init__(self):
        self._inflight = {}

    async def release(self, tenant):
        held = self._inflight.get(tenant, 0)
        await asyncio.sleep(0)  # other tasks may update _inflight here
        self._inflight[tenant] = held - 1  # ASY703: stale write-back

    async def release_fresh(self, tenant):
        await asyncio.sleep(0)
        held = self._inflight.get(tenant, 0)  # control: re-read after await
        self._inflight[tenant] = held - 1


class SilencedBlocking:  # repro-lint: disable=ASY701 -- seeded pragma case
    async def handle(self, request):
        time.sleep(0.5)
        return request
