"""Deliberate DET/ISO violations in serve code — scanned, never imported.

The serve contract the lint rules pin down: handlers make no
protocol-visible decision from the wall clock (deadlines are service
ticks), draw no ambient randomness (workloads and faults are seeded),
let no unordered iteration reach a frame encoder, and share no mutable
per-client state through module globals.  The only legitimate wall reads
live in the load harness's latency probes, behind inline pragmas —
mirrored here by the control case.
"""

import random
import time

_PER_CLIENT_STATE = {}

SERVICE_NAME = "fixture-serve"  # control: immutable module global


def encode_frame(obj):
    """Local stand-in so sink detection has something to find."""
    return str(obj)


def deadline_from_wall_clock(request):
    return time.monotonic() + request["timeout"]  # DET203: wall deadline


def jittered_backoff():
    return random.random() * 4  # DET201: unseeded backoff jitter


def leaks_param_order(params):
    frames = []
    for value in params.values():  # DET204: dict order reaches the encoder
        frames.append(encode_frame(value))
    return frames


def latency_probe():
    # the real repro.serve.load pattern: declared, documented, suppressed
    return time.perf_counter()  # repro-lint: disable=DET203 -- latency probe


def canonical_response(params):
    out = {}
    for key in sorted(params):  # control: sorted() iteration in a sink fn
        out[key] = params[key]
    return encode_frame(out)


def agent0(view0):
    _PER_CLIENT_STATE["last"] = view0  # ISO302: shared per-client state
    return _PER_CLIENT_STATE


def alice_session(view0):
    global SERVICE_NAME  # ISO302: global statement from a party
    SERVICE_NAME = "hijacked"
    return view0


def tick_deadline(request, now_ticks):
    """Control: the deterministic deadline the real service uses."""
    return now_ticks + request.get("deadline_ticks", 1)
