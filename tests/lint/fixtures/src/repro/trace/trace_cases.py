"""Deliberate DET violations in trace code — scanned, never imported.

Trace records are persisted JSONL with canonical encoding; the DET
contract over ``repro.trace.*`` is the cache's: no ambient randomness,
no undeclared clock reads, no dict/set iteration order reaching an
encoder.  The one legitimate clock read (the monotonic span tick) must
carry an explicit inline pragma, exactly like the real
``repro.trace.core._now_ns``.
"""

import random
import time


def encode_event(event):
    """Local stand-in so sink detection has something to find."""
    return str(event)


def jittered_flush_delay():
    return random.random()  # DET201


def wall_clock_stamp(event):
    return {"at": time.time(), **event}  # DET203


def bare_monotonic_tick():
    return time.perf_counter_ns()  # DET203: clock read without a pragma


def pragma_declared_tick():
    # the real _now_ns pattern: declared, documented, suppressed inline
    return time.perf_counter_ns()  # repro-lint: disable=DET203


def leaks_field_order(event):
    out = []
    for value in event.values():  # DET204: dict order reaches the encoder
        out.append(encode_event(value))
    return out


def canonical_event_encoding(event):
    out = {}
    for field in sorted(event):  # control: sorted() iteration in a sink fn
        out[field] = event[field]
    return encode_event(out)
