"""Control: repro.util is outside every rule scope — nothing here fires."""

import math
import random


def noisy_float():
    return random.random() * math.pi * 0.5
