"""Stands in for the corruption suite: exercises exactly the `tag` pair."""

from src.repro.protocols.wire import decode_tag, encode_tag


def exercise_tag_roundtrip():
    bits = encode_tag(1)
    value, cursor = decode_tag(bits, 0)
    return value, cursor
