"""CLI behavior, the frozen JSON schema, --explain coverage, self-check.

The self-check is the linter eating its own dogfood: the real source tree
must lint clean against the committed baseline, the baseline must stay
small and justified, and no entry may go stale without failing.
"""

import json

from repro.cli import main
from repro.lint import (
    FAMILY_CODES,
    JSON_SCHEMA_VERSION,
    all_codes,
    default_config,
    explanation_for,
    load_baseline,
    run_lint,
    stale_baseline_entries,
)

#: Frozen top-level JSON report schema — bump JSON_SCHEMA_VERSION to change.
REPORT_KEYS = {
    "version",
    "ok",
    "files_scanned",
    "rules_run",
    "counts",
    "findings",
    "suppressed_pragma",
    "suppressed_baseline",
    "stale_baseline_entries",
}

FINDING_KEYS = {"code", "path", "line", "col", "symbol", "message", "suppressed"}


class TestJsonSchema:
    def test_report_shape(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == REPORT_KEYS
        assert data["version"] == JSON_SCHEMA_VERSION == 1
        assert data["ok"] is True
        assert data["files_scanned"] > 0
        assert set(data["rules_run"]) == set(all_codes())
        for finding in data["findings"]:
            assert set(finding) == FINDING_KEYS

    def test_baselined_findings_are_marked(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["suppressed_baseline"] > 0
        assert data["stale_baseline_entries"] == []


class TestCli:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_no_baseline_surfaces_the_debt(self, capsys):
        assert main(["lint", "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "EXA102" in out

    def test_explain_known_code(self, capsys):
        assert main(["lint", "--explain", "ISO301"]) == 0
        out = capsys.readouterr().out
        assert "ISO301" in out and "Why it matters" in out

    def test_explain_unknown_code_is_usage_error(self, capsys):
        assert main(["lint", "--explain", "NOPE999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in all_codes():
            assert code in out


class TestGithubFormat:
    """``--format github`` — workflow-command annotations for CI."""

    def test_clean_run_emits_summary_but_no_errors(self, capsys):
        assert main(["lint", "--format", "github"]) == 0
        out = capsys.readouterr().out
        assert "::error" not in out
        assert "finding(s)" in out

    def test_active_findings_become_error_commands(self, capsys):
        assert main(["lint", "--format", "github", "--no-baseline"]) == 1
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("::error")]
        assert lines, "expected at least the baselined EXA102 to surface"
        for line in lines:
            assert line.startswith("::error file=")
            assert ",line=" in line and ",col=" in line and ",title=" in line
        assert any("title=EXA102" in line for line in lines)


class TestExplainCoverage:
    def test_every_rule_code_has_a_full_explanation(self):
        assert all_codes(), "no rules registered?"
        for code in all_codes():
            exp = explanation_for(code)
            assert exp is not None, f"{code} lacks an explanation"
            assert exp.summary and exp.rationale
            assert exp.example_bad and exp.example_fix
            rendered = exp.render()
            assert code in rendered

    def test_family_codes_cover_all_codes(self):
        flattened = {code for codes in FAMILY_CODES.values() for code in codes}
        assert flattened == set(all_codes())


class TestSelfCheck:
    """The real tree, the real baseline: the gate CI relies on."""

    def test_source_tree_is_clean(self):
        report = run_lint(default_config())
        assert report.ok, (
            f"active findings: {[f.render() for f in report.active_findings]}; "
            f"stale baseline: {report.stale_baseline}"
        )

    def test_baseline_is_small_and_justified(self):
        config = default_config()
        entries = load_baseline(config.baseline_path)
        assert len(entries) <= 5, "baseline may only shrink — fix, don't add"
        for entry in entries:
            assert entry.justification, f"{entry.key()} lacks a justification"

    def test_no_stale_baseline_entries(self):
        assert stale_baseline_entries(default_config()) == []
