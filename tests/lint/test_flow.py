"""The flow engine: skeleton extraction, width algebra, plan derivation.

Fixture-level edge cases (dispatch, UNBOUNDED, branch unification) plus
the acceptance gate for the real tree: every protocol's agent pair
yields a skeleton and a merged plan identical to the declared table.
"""

import ast
from pathlib import Path

from repro.costs.plan import PROTOCOL_PLANS
from repro.lint import flow
from repro.lint.config import AgentRegistry, default_config

from tests.lint.conftest import FIXTURES

REPO_ROOT = Path(__file__).resolve().parents[2]
REGISTRY = AgentRegistry()


def _pairs_of(path: Path) -> dict[str, flow.AgentPair]:
    tree = ast.parse(path.read_text())
    return {p.name: p for p in flow.extract_pairs(tree, REGISTRY)}


def _fixture_pairs(name: str) -> dict[str, flow.AgentPair]:
    return _pairs_of(FIXTURES / "src" / "repro" / "protocols" / name)


class TestWidthAlgebra:
    def test_parse_render_round_trip(self):
        for expr in (
            "0", "1", "48", "n_bits", "2*k*n*n", "16 + ?*k*n_rows",
            "codec.cols*codec.rows*prime_bits", "len(_agent0_positions)",
            "48 + ?", "rounds", "n*width",
        ):
            assert flow.render_poly(flow.parse_width(expr)) == expr

    def test_parse_normalizes_term_and_factor_order(self):
        assert flow.parse_width("n_rows*k*? + 16") == flow.parse_width(
            "16 + ?*k*n_rows"
        )

    def test_bare_unknown_never_carries_a_coefficient(self):
        # "? + ?" is still just "something unknown", not "twice it".
        poly = flow.parse_width("?")
        doubled = flow._poly_add(poly, poly)
        assert flow.render_poly(doubled) == "?"

    def test_malformed_width_raises(self):
        for bad in ("", "n -", "n_bits + ", "f(x, y)", "2**n"):
            try:
                flow.parse_width(bad)
            except ValueError:
                continue
            raise AssertionError(f"parse_width accepted {bad!r}")


class TestFixtureExtraction:
    def test_helper_dispatch_is_followed(self):
        pair = _fixture_pairs("ses_cases.py")["DispatchedProtocol"]
        assert pair.skeleton0.ok and pair.skeleton0.dispatch == "_talk"
        assert pair.skeleton1.ok and pair.skeleton1.dispatch == "_listen"
        assert not pair.shared_program  # distinct helpers: really compared
        (send, recv) = pair.skeleton0.ops
        assert (send.kind, send.width.expr) == ("send", "n_bits")
        assert (recv.kind, recv.width.expr) == ("recv", "1")

    def test_data_dependent_while_degrades_to_unbounded(self):
        pair = _fixture_pairs("ses_cases.py")["StreamingRecv"]
        assert pair.skeleton0.ok and pair.skeleton1.ok  # no crash
        loop = pair.skeleton0.ops[0]
        assert isinstance(loop, flow.LoopOp)
        assert loop.bound.expr == flow.UNBOUNDED_ATOM
        assert loop.bound.kind == "unbounded"
        # Duality still holds structurally; the bounds are not compared.
        items0 = flow.normalize(pair.skeleton0.ops)
        items1 = flow.dualize(flow.normalize(pair.skeleton1.ops))
        assert flow.compare_dual(items0, items1) == []

    def test_width_mismatch_is_resolved_on_both_sides(self):
        pair = _fixture_pairs("ses_cases.py")["WidthMismatch"]
        items0 = flow.normalize(pair.skeleton0.ops)
        items1 = flow.dualize(flow.normalize(pair.skeleton1.ops))
        problems = flow.compare_dual(items0, items1)
        assert [p.kind for p in problems] == ["width"]

    def test_merged_plan_prefers_the_resolved_side(self):
        pair = _fixture_pairs("cost_cases.py")["AccountedProtocol"]
        items0 = flow.normalize(pair.skeleton0.ops)
        items1 = flow.dualize(flow.normalize(pair.skeleton1.ops))
        plan = flow.merged_plan(items0, items1)
        # agent0 sends a payload the extractor only knows as ?-wide; the
        # receiver's Recv(self.n_bits) pins it.
        assert [(t.sender, t.width.expr, t.repeat.expr) for t in plan] == [
            (0, "n_bits", "1"),
            (1, "1", "1"),
        ]


class TestRealTreeExtraction:
    """The acceptance gate: all 10 protocols, skeletons and plans."""

    def _real_pairs(self) -> dict[str, flow.AgentPair]:
        pairs: dict[str, flow.AgentPair] = {}
        for sub in ("protocols", "comm"):
            for path in sorted((REPO_ROOT / "src" / "repro" / sub).glob("*.py")):
                pairs.update(_pairs_of(path))
        return pairs

    def test_every_declared_protocol_extracts_a_skeleton(self):
        pairs = self._real_pairs()
        for name in PROTOCOL_PLANS:
            assert name in pairs, f"no agent pair found for {name}"
            pair = pairs[name]
            assert pair.skeleton0.ok, (name, pair.skeleton0.reason)
            assert pair.skeleton1.ok, (name, pair.skeleton1.reason)
            assert pair.has_ops

    def test_every_declared_protocol_is_dual(self):
        pairs = self._real_pairs()
        for name in PROTOCOL_PLANS:
            pair = pairs[name]
            items0 = flow.normalize(pair.skeleton0.ops)
            items1 = flow.dualize(flow.normalize(pair.skeleton1.ops))
            assert flow.compare_dual(items0, items1) == [], name

    def test_merged_plans_match_the_declared_table(self):
        pairs = self._real_pairs()
        for name, declared in PROTOCOL_PLANS.items():
            pair = pairs[name]
            items0 = flow.normalize(pair.skeleton0.ops)
            items1 = flow.dualize(flow.normalize(pair.skeleton1.ops))
            derived = flow.merged_plan(items0, items1)
            assert len(derived) == len(declared), name
            for term, decl in zip(derived, declared):
                assert term.sender == decl["sender"], (name, decl)
                assert flow.parse_width(term.width.expr) == flow.parse_width(
                    decl["width"]
                ), (name, term.width.expr, decl["width"])
                assert flow.parse_width(term.repeat.expr) == flow.parse_width(
                    decl["repeat"]
                ), (name, term.repeat.expr, decl["repeat"])

    def test_tree_protocol_is_shared_program(self):
        pairs = self._real_pairs()
        pair = pairs["TreeProtocol"]
        assert pair.shared_program == "_program"

    def test_abstract_bases_have_no_ops(self):
        pairs = self._real_pairs()
        for name in ("TwoPartyProtocol", "RandomizedProtocol"):
            pair = pairs[name]
            assert pair.skeleton0.ok and not pair.has_ops


class TestDefaultConfigWiring:
    def test_plan_module_is_configured(self):
        config = default_config(REPO_ROOT)
        assert config.plan_module is not None
        assert config.plan_module.name == "plan.py"
        assert config.in_cost_scope("repro.protocols.equality")
        assert not config.in_cost_scope("repro.comm.protocol")
        assert config.in_flow_scope("repro.comm.protocol")
        assert config.in_asy_scope("repro.serve.service")
        assert not config.in_asy_scope("repro.protocols.equality")
