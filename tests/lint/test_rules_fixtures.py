"""Every rule code fires on its seeded fixture violation — and only there.

The fixture tree (tests/lint/fixtures) mirrors the real layout so the
default scope patterns apply; each test pins one rule code to the symbol
that seeds it, plus a control that must stay clean.
"""

from tests.lint.conftest import codes_at, findings_at

EXA = "src/repro/exact/exa_cases.py"
SES = "src/repro/protocols/ses_cases.py"
COST = "src/repro/protocols/cost_cases.py"
PLAN = "src/repro/costs/plan.py"
ASY = "src/repro/serve/asy_cases.py"
DET = "src/repro/protocols/det_cases.py"
CACHE = "src/repro/cache/cache_cases.py"
TRACE = "src/repro/trace/trace_cases.py"
ISO = "src/repro/protocols/iso_cases.py"
WIRE = "src/repro/protocols/wire.py"
SERVE = "src/repro/serve/serve_cases.py"


class TestExaFamily:
    def test_float_literal(self, fixture_report):
        assert codes_at(fixture_report, EXA, "half") == {"EXA101"}

    def test_complex_literal(self, fixture_report):
        assert codes_at(fixture_report, EXA, "spin") == {"EXA101"}

    def test_float_conversion(self, fixture_report):
        assert codes_at(fixture_report, EXA, "to_float") == {"EXA102"}

    def test_float_math_member(self, fixture_report):
        assert codes_at(fixture_report, EXA, "log_of") == {"EXA102"}

    def test_integer_math_is_clean(self, fixture_report):
        assert codes_at(fixture_report, EXA, "isqrt_ok") == set()

    def test_float_dtype_kwarg(self, fixture_report):
        assert "EXA103" in codes_at(fixture_report, EXA, "as_float_array")

    def test_astype_string_dtype(self, fixture_report):
        assert "EXA103" in codes_at(fixture_report, EXA, "stringly_typed")

    def test_np_linalg(self, fixture_report):
        assert codes_at(fixture_report, EXA, "numeric_rank") == {"EXA103"}

    def test_tolerance_comparison(self, fixture_report):
        assert codes_at(fixture_report, EXA, "near") == {"EXA104"}

    def test_integer_dtype_is_clean(self, fixture_report):
        assert codes_at(fixture_report, EXA, "uint_ok") == set()

    def test_allowlisted_module_is_skipped(self, fixture_report):
        assert findings_at(fixture_report, "src/repro/exact/modnp.py") == []

    def test_out_of_scope_module_is_skipped(self, fixture_report):
        assert findings_at(fixture_report, "src/repro/util/out_of_scope.py") == []


class TestDetFamily:
    def test_ambient_random_attribute(self, fixture_report):
        assert codes_at(fixture_report, DET, "ambient_coin") == {"DET201"}

    def test_from_random_import(self, fixture_report):
        module_level = findings_at(fixture_report, DET, symbol="", code="DET201")
        assert module_level, "from random import ... must flag at module level"

    def test_numpy_random(self, fixture_report):
        assert codes_at(fixture_report, DET, "np_noise") == {"DET202"}

    def test_wall_clock(self, fixture_report):
        assert codes_at(fixture_report, DET, "wall_clock_deadline") == {"DET203"}

    def test_datetime_now(self, fixture_report):
        assert codes_at(fixture_report, DET, "stamped") == {"DET203"}

    def test_set_iteration_feeding_send(self, fixture_report):
        assert codes_at(fixture_report, DET, "leaks_set_order") == {"DET204"}

    def test_values_view_feeding_send(self, fixture_report):
        assert codes_at(fixture_report, DET, "leaks_values_view") == {"DET204"}

    def test_set_iteration_without_sink_is_clean(self, fixture_report):
        assert codes_at(fixture_report, DET, "harmless_set_iteration") == set()

    def test_sorted_iteration_in_sink_is_clean(self, fixture_report):
        assert codes_at(fixture_report, DET, "canonical_order") == set()


class TestDetOnCache:
    """The DET family watches repro.cache.* (byte-stable record contract)."""

    def test_ambient_random(self, fixture_report):
        assert codes_at(fixture_report, CACHE, "jittered_retry_delay") == {"DET201"}

    def test_wall_clock(self, fixture_report):
        assert codes_at(fixture_report, CACHE, "timestamped_record") == {"DET203"}

    def test_from_time_import(self, fixture_report):
        module_level = findings_at(fixture_report, CACHE, symbol="", code="DET203")
        assert module_level, "from time import time must flag at module level"

    def test_values_view_feeding_encoder(self, fixture_report):
        assert codes_at(fixture_report, CACHE, "leaks_field_order") == {"DET204"}

    def test_set_iteration_feeding_encoder(self, fixture_report):
        assert codes_at(fixture_report, CACHE, "leaks_key_set") == {"DET204"}

    def test_set_without_sink_is_clean(self, fixture_report):
        assert codes_at(fixture_report, CACHE, "harmless_set_membership") == set()

    def test_sorted_encoding_is_clean(self, fixture_report):
        assert codes_at(fixture_report, CACHE, "canonical_encoding") == set()


class TestDetOnTrace:
    """The DET family watches repro.trace.* (byte-stable trace records)."""

    def test_ambient_random(self, fixture_report):
        assert codes_at(fixture_report, TRACE, "jittered_flush_delay") == {"DET201"}

    def test_wall_clock(self, fixture_report):
        assert codes_at(fixture_report, TRACE, "wall_clock_stamp") == {"DET203"}

    def test_undeclared_monotonic_tick(self, fixture_report):
        assert codes_at(fixture_report, TRACE, "bare_monotonic_tick") == {"DET203"}

    def test_pragma_declared_tick_is_suppressed(self, fixture_report):
        found = findings_at(
            fixture_report, TRACE, "pragma_declared_tick", code="DET203"
        )
        assert found and all(f.suppressed == "pragma" for f in found)

    def test_values_view_feeding_encoder(self, fixture_report):
        assert codes_at(fixture_report, TRACE, "leaks_field_order") == {"DET204"}

    def test_sorted_encoding_is_clean(self, fixture_report):
        assert codes_at(fixture_report, TRACE, "canonical_event_encoding") == set()


class TestIsoFamily:
    def test_other_party_view_param_and_read(self, fixture_report):
        found = findings_at(
            fixture_report, ISO, "PeekingProtocol.agent0", code="ISO301"
        )
        assert len(found) >= 2  # the parameter and the read

    def test_mutable_global_touch(self, fixture_report):
        assert codes_at(fixture_report, ISO, "PeekingProtocol.agent1") == {"ISO302"}

    def test_global_statement(self, fixture_report):
        found = findings_at(
            fixture_report, ISO, "PeekingProtocol.alice_sneaky", code="ISO302"
        )
        assert found and "global statement" in found[0].message

    def test_direct_channel_calls(self, fixture_report):
        found = findings_at(fixture_report, ISO, "bob_direct", code="ISO303")
        assert len(found) == 2  # .send() and the constructor

    def test_split_input_in_agent(self, fixture_report):
        assert codes_at(fixture_report, ISO, "agent0") == {"ISO304"}

    def test_neutral_function_is_clean(self, fixture_report):
        assert codes_at(fixture_report, ISO, "neutral_helper") == set()


class TestWireFamily:
    def test_encoder_without_decoder(self, fixture_report):
        found = findings_at(fixture_report, WIRE, "encode_orphan", code="WIRE401")
        assert found and "decode_orphan" in found[0].message

    def test_decoder_without_encoder(self, fixture_report):
        found = findings_at(fixture_report, WIRE, "decode_widow", code="WIRE402")
        assert found and "encode_widow" in found[0].message

    def test_unexercised_pair(self, fixture_report):
        found = findings_at(fixture_report, WIRE, "encode_untested", code="WIRE403")
        assert found

    def test_exercised_pair_is_clean(self, fixture_report):
        assert codes_at(fixture_report, WIRE, "encode_tag") == set()
        assert codes_at(fixture_report, WIRE, "decode_tag") == set()


class TestServeCases:
    """DET/ISO scope extended over repro.serve: handlers stay tick-pure."""

    def test_wall_clock_deadline_flagged(self, fixture_report):
        assert codes_at(
            fixture_report, SERVE, "deadline_from_wall_clock"
        ) == {"DET203"}

    def test_unseeded_backoff_jitter_flagged(self, fixture_report):
        assert codes_at(fixture_report, SERVE, "jittered_backoff") == {"DET201"}

    def test_dict_order_reaching_encoder_flagged(self, fixture_report):
        assert codes_at(fixture_report, SERVE, "leaks_param_order") == {"DET204"}

    def test_pragma_declared_latency_probe_is_suppressed(self, fixture_report):
        found = findings_at(
            fixture_report, SERVE, "latency_probe", code="DET203"
        )
        assert found and all(f.suppressed == "pragma" for f in found)

    def test_sorted_iteration_into_encoder_is_clean(self, fixture_report):
        assert codes_at(fixture_report, SERVE, "canonical_response") == set()

    def test_shared_per_client_state_flagged(self, fixture_report):
        found = findings_at(fixture_report, SERVE, "agent0", code="ISO302")
        assert found  # a party writing a mutable module global

    def test_global_statement_in_party_flagged(self, fixture_report):
        found = findings_at(
            fixture_report, SERVE, "alice_session", code="ISO302"
        )
        assert found and "global statement" in found[0].message

    def test_tick_deadline_control_is_clean(self, fixture_report):
        assert codes_at(fixture_report, SERVE, "tick_deadline") == set()

    def test_asy_fixture_codes_do_not_leak_into_serve_cases(self, fixture_report):
        """serve_cases.py has no coroutines: the ASY family stays silent."""
        assert not any(
            f.code.startswith("ASY")
            for f in findings_at(fixture_report, SERVE)
        )

    def test_real_serve_modules_are_clean(self):
        from pathlib import Path

        from repro.lint import default_config, run_lint

        repo_root = Path(__file__).resolve().parents[2]
        config = default_config(repo_root)
        report = run_lint(config, repo_root=repo_root)
        serve_findings = [
            f for f in report.findings if "/serve/" in f.path.replace("\\", "/")
        ]
        # The only serve findings are the load harness's documented latency
        # probes, each suppressed by an inline pragma; nothing is active.
        assert serve_findings
        assert all(f.suppressed == "pragma" for f in serve_findings)
        assert {f.code for f in serve_findings} == {"DET203"}


class TestSesFamily:
    """Session duality over the seeded fixture protocols."""

    def test_turn_order_mismatch(self, fixture_report):
        assert codes_at(fixture_report, SES, "MismatchedTurnOrder") == {"SES501"}

    def test_unmatched_recv(self, fixture_report):
        found = findings_at(fixture_report, SES, "UnmatchedRecv", code="SES501")
        assert found and "unmatched" in found[0].message

    def test_width_mismatch(self, fixture_report):
        found = findings_at(fixture_report, SES, "WidthMismatch", code="SES502")
        assert len(found) == 1
        assert "width" in found[0].message
        assert codes_at(fixture_report, SES, "WidthMismatch") == {"SES502"}

    def test_loop_bound_mismatch(self, fixture_report):
        found = findings_at(
            fixture_report, SES, "LoopBoundMismatch", code="SES503"
        )
        assert found and "rounds" in found[0].message
        assert codes_at(fixture_report, SES, "LoopBoundMismatch") == {"SES503"}

    def test_well_paired_control_is_clean(self, fixture_report):
        assert codes_at(fixture_report, SES, "WellPaired") == set()

    def test_helper_dispatch_control_is_clean(self, fixture_report):
        assert codes_at(fixture_report, SES, "DispatchedProtocol") == set()

    def test_unbounded_streaming_control_is_clean(self, fixture_report):
        """Data-dependent while loops degrade to UNBOUNDED, not findings."""
        assert codes_at(fixture_report, SES, "StreamingRecv") == set()

    def test_pragma_suppresses_ses(self, fixture_report):
        found = findings_at(
            fixture_report, SES, "SilencedMismatch", code="SES501"
        )
        assert found and all(f.suppressed == "pragma" for f in found)


class TestCostFamily:
    """Plan accounting between cost_cases.py and the fixture plan table."""

    def test_drifted_width(self, fixture_report):
        found = findings_at(fixture_report, COST, "DriftedProtocol", code="COST601")
        assert len(found) == 1
        assert "2*n_bits" in found[0].message and "n_bits" in found[0].message

    def test_undeclared_protocol(self, fixture_report):
        assert codes_at(fixture_report, COST, "UndeclaredProtocol") == {"COST602"}

    def test_orphan_plan_entry(self, fixture_report):
        found = findings_at(
            fixture_report, PLAN, "PROTOCOL_PLANS", code="COST603"
        )
        assert len(found) == 1
        assert "GhostProtocol" in found[0].message

    def test_accounted_control_is_clean(self, fixture_report):
        assert codes_at(fixture_report, COST, "AccountedProtocol") == set()

    def test_pragma_suppresses_cost(self, fixture_report):
        found = findings_at(fixture_report, COST, "SilencedDrift", code="COST601")
        assert found and all(f.suppressed == "pragma" for f in found)


class TestAsyFamily:
    """asyncio hazards in the seeded serve fixture."""

    def test_blocking_call_in_coroutine(self, fixture_report):
        assert codes_at(
            fixture_report, ASY, "BlockingHandler.handle"
        ) == {"ASY701"}

    def test_awaited_sleep_control_is_clean(self, fixture_report):
        assert codes_at(fixture_report, ASY, "BlockingHandler.polite") == set()

    def test_dropped_coroutine(self, fixture_report):
        found = findings_at(
            fixture_report, ASY, "DroppedCoroutine.stop", code="ASY702"
        )
        assert found and "_flush" in found[0].message

    def test_awaited_and_scheduled_controls_are_clean(self, fixture_report):
        assert codes_at(
            fixture_report, ASY, "DroppedCoroutine.stop_properly"
        ) == set()
        assert codes_at(
            fixture_report, ASY, "DroppedCoroutine.stop_scheduled"
        ) == set()

    def test_stale_writeback_across_await(self, fixture_report):
        found = findings_at(
            fixture_report, ASY, "StaleCounter.release", code="ASY703"
        )
        assert len(found) == 1
        assert "_inflight" in found[0].message

    def test_reread_after_await_control_is_clean(self, fixture_report):
        assert codes_at(
            fixture_report, ASY, "StaleCounter.release_fresh"
        ) == set()

    def test_pragma_suppresses_asy(self, fixture_report):
        found = findings_at(
            fixture_report, ASY, "SilencedBlocking.handle", code="ASY701"
        )
        assert found and all(f.suppressed == "pragma" for f in found)
