"""Pragma and baseline suppression semantics."""

import json

import pytest

from repro.lint import (
    BaselineEntry,
    BaselineError,
    load_baseline,
    run_lint,
    write_baseline,
)
from tests.lint.conftest import FIXTURES, findings_at, fixture_config

PRAGMA = "src/repro/exact/pragma_cases.py"
FILEWIDE = "src/repro/exact/filewide_cases.py"


class TestPragmas:
    def test_line_pragma_suppresses(self, fixture_report):
        found = findings_at(fixture_report, PRAGMA, "reported_bits", code="EXA102")
        assert found and all(f.suppressed == "pragma" for f in found)

    def test_def_header_pragma_covers_the_body(self, fixture_report):
        found = findings_at(fixture_report, PRAGMA, "documented_boundary")
        assert {f.code for f in found} == {"EXA101", "EXA102"}
        assert all(f.suppressed == "pragma" for f in found)

    def test_unpragmad_finding_stays_active(self, fixture_report):
        found = findings_at(fixture_report, PRAGMA, "still_flagged", code="EXA101")
        assert found and all(f.active for f in found)

    def test_disable_file_pragma(self, fixture_report):
        found = findings_at(fixture_report, FILEWIDE)
        assert found, "filewide fixture must still produce (suppressed) findings"
        assert all(f.suppressed == "pragma" for f in found)

    def test_suppressed_findings_do_not_fail_the_run(self, fixture_report):
        active_paths = {f.path for f in fixture_report.active_findings}
        assert not any(p.endswith(FILEWIDE) for p in active_paths)


class TestBaseline:
    def test_matching_entry_suppresses(self):
        entries = [
            BaselineEntry(
                code="EXA101",
                path="src/repro/exact/exa_cases.py",
                symbol="half",
                justification="test",
            )
        ]
        report = run_lint(
            fixture_config(), repo_root=FIXTURES, baseline_entries=entries
        )
        found = findings_at(report, "exa_cases.py", "half", code="EXA101")
        assert found and found[0].suppressed == "baseline"
        assert report.stale_baseline == []

    def test_stale_entry_is_reported_and_fails(self):
        entries = [
            BaselineEntry(
                code="EXA101",
                path="src/repro/exact/exa_cases.py",
                symbol="no_such_function",
                justification="paid off long ago",
            )
        ]
        report = run_lint(
            fixture_config(), repo_root=FIXTURES, baseline_entries=entries
        )
        assert len(report.stale_baseline) == 1
        assert report.stale_baseline[0]["symbol"] == "no_such_function"
        assert not report.ok

    def test_baseline_matches_by_symbol_not_line(self):
        # Same identity as test_matching_entry_suppresses: the entry carries
        # no line number at all, so line churn cannot invalidate it.
        entry = BaselineEntry(
            code="EXA101", path="src/repro/exact/exa_cases.py", symbol="half"
        )
        assert entry.key() == ("EXA101", "src/repro/exact/exa_cases.py", "half")

    def test_write_then_load_roundtrip(self, tmp_path, fixture_report):
        path = tmp_path / "baseline.json"
        written = write_baseline(path, fixture_report.findings)
        loaded = load_baseline(path)
        assert [e.key() for e in loaded] == [e.key() for e in written]
        # Every active fixture finding is covered; suppressed ones are not.
        active_keys = {f.baseline_key() for f in fixture_report.active_findings}
        assert {e.key() for e in loaded} == active_keys

    def test_roundtrip_baseline_makes_the_run_clean(self, tmp_path):
        path = tmp_path / "baseline.json"
        first = run_lint(fixture_config(), repo_root=FIXTURES)
        write_baseline(path, first.findings)
        second = run_lint(
            fixture_config(),
            repo_root=FIXTURES,
            baseline_entries=load_baseline(path),
        )
        assert second.ok
        assert second.active_findings == []

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "versioned.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_no_baseline_reports_everything_active(self):
        report = run_lint(
            fixture_config(),
            repo_root=FIXTURES,
            baseline_entries=[
                BaselineEntry(
                    code="EXA101",
                    path="src/repro/exact/exa_cases.py",
                    symbol="half",
                )
            ],
            use_baseline=False,
        )
        found = findings_at(report, "exa_cases.py", "half", code="EXA101")
        assert found and found[0].active
