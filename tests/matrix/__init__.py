"""Tests for the scenario-matrix sweep (:mod:`repro.matrix`)."""
