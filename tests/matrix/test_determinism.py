"""Worker-count and cache-warmth byte-identity of the matrix sweep.

The report must be a pure function of ``(quick, seed)``: same bytes at
workers 1, 2 and 4; same bytes on a cold cache, a warm cache, and no
cache at all; and the rendered RESULTS markdown identical in turn.  The
committed ``docs/RESULTS.md`` is checked against a fresh sweep — the
same gate CI's ``matrix-gate`` job applies via ``--check-render``.
"""

import json
from pathlib import Path

import pytest

from repro import cache
from repro.matrix import render_results, run_sweep, sweep_report

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _canonical(workers=None):
    cells = run_sweep(quick=True, seed=0, workers=workers)
    report = sweep_report(cells, quick=True, seed=0)
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


class TestWorkerIdentity:
    def test_bit_identical_at_1_2_4_workers(self):
        serial = _canonical(workers=1)
        assert serial == _canonical(workers=2)
        assert serial == _canonical(workers=4)

    def test_seed_changes_the_report(self):
        a = sweep_report(run_sweep(quick=True, seed=0), quick=True, seed=0)
        b = sweep_report(run_sweep(quick=True, seed=1), quick=True, seed=1)
        assert a != b
        # ...but both must pass the gate.
        assert a["ok"] and b["ok"]


class TestCacheIdentity:
    def test_cold_warm_and_uncached_agree(self, tmp_path):
        with cache.disabled():
            uncached = _canonical(workers=2)
        with cache.directory(tmp_path) as store:
            cold = _canonical(workers=2)
            cached_docs = store.cell_stats()["entries"]
            warm = _canonical(workers=2)
            # The warm pass answered from the cells tier alone.
            assert store.cell_stats()["entries"] == cached_docs
        assert cached_docs == len(
            json.loads(cold)["cells"]
        ), "every cell document should persist"
        assert uncached == cold == warm

    def test_cell_documents_verify_clean(self, tmp_path):
        with cache.directory(tmp_path) as store:
            run_sweep(quick=True, seed=0)
            assert store.verify_cells() == []
            assert store.verify() == []


class TestRenderedResults:
    def test_render_is_deterministic(self):
        report = sweep_report(run_sweep(quick=True, seed=0), quick=True)
        assert render_results(report) == render_results(
            json.loads(json.dumps(report))
        )

    def test_committed_results_md_matches_fresh_sweep(self):
        committed = REPO_ROOT / "docs" / "RESULTS.md"
        if not committed.exists():
            pytest.fail("docs/RESULTS.md is missing — render and commit it")
        report = sweep_report(run_sweep(quick=True, seed=0), quick=True)
        assert committed.read_text() == render_results(report), (
            "docs/RESULTS.md drifted from the quick sweep; regenerate with "
            "PYTHONPATH=src python -m repro matrix --quick "
            "--render docs/RESULTS.md"
        )
