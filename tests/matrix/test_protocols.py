"""The live one-way and certificate protocols, and the clean-cell property.

Two halves:

* exhaustive correctness of :class:`OneWayTableProtocol` (realizes
  ``one_way_cc`` exactly, answers every (row, col) correctly) and
  :class:`CertificateProtocol` (complete with the honest certificate,
  sound against *every* certificate on non-value cells);
* the Hypothesis property at the heart of the matrix: at any seed,
  every catalogue point's clean cell is a ``MATCH`` — measured equals
  predicted by integer equality, ARQ stats field for field, ground
  truth reproduced.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import one_way_cc, run_protocol
from repro.matrix import (
    CertificateProtocol,
    OneWayTableProtocol,
    catalogue,
    certificate_for,
    equality_truth_matrix,
    run_cell,
)
from repro.matrix.scenarios import index_truth_matrix
from repro.matrix.sweep import regimes
from repro.util.rng import derive_seed

EQ4 = equality_truth_matrix(2)
INDEX4 = index_truth_matrix(2)
CLEAN = regimes(quick=True)[0]


class TestOneWayTableProtocol:
    @pytest.mark.parametrize("tm", [EQ4, INDEX4], ids=["eq4", "index4"])
    def test_answers_every_cell_correctly(self, tm):
        protocol = OneWayTableProtocol(tm)
        rows, cols = tm.shape
        for row in range(rows):
            for col in range(cols):
                result = run_protocol(
                    protocol.agent0, protocol.agent1, row, col
                )
                assert result.agreed_output() == bool(tm.data[row, col])

    @pytest.mark.parametrize("tm", [EQ4, INDEX4], ids=["eq4", "index4"])
    def test_realizes_the_one_way_formula(self, tm):
        protocol = OneWayTableProtocol(tm)
        assert protocol.width == one_way_cc(tm, "0to1")
        result = run_protocol(protocol.agent0, protocol.agent1, 0, 0)
        assert result.transcript.total_bits == protocol.width + 1
        assert result.transcript.bits_from(0) == protocol.width
        assert result.transcript.bits_from(1) == 1

    def test_index_needs_the_whole_table_one_way(self):
        # The classic separation: 16 distinct rows -> 4 forward bits,
        # though two-way D(f) is far smaller.
        assert OneWayTableProtocol(INDEX4).width == 4


class TestCertificateProtocol:
    @pytest.mark.parametrize("value", [0, 1])
    def test_complete_and_sound_on_eq(self, value):
        protocol = CertificateProtocol(EQ4, value)
        rows, cols = EQ4.shape
        for row in range(rows):
            for col in range(cols):
                honest = certificate_for(protocol, row, col)
                result = run_protocol(
                    protocol.agent0, protocol.agent1, (row, honest), col
                )
                assert result.agreed_output() == bool(
                    EQ4.data[row, col] == value
                )

    def test_sound_against_every_certificate(self):
        # No certificate — honest or adversarial — makes the agents
        # accept a non-value cell: the cover rectangles are value-
        # monochromatic, so (row, col) membership implies f = value.
        protocol = CertificateProtocol(EQ4, 1)
        rows, cols = EQ4.shape
        for row in range(rows):
            for col in range(cols):
                if EQ4.data[row, col] == 1:
                    continue
                for certificate in range(len(protocol.cover)):
                    result = run_protocol(
                        protocol.agent0, protocol.agent1,
                        (row, certificate), col,
                    )
                    assert result.agreed_output() is False

    def test_eq_needs_one_rectangle_per_diagonal_one(self):
        # The diagonal is a fooling set: C¹(EQ_m) = m exactly.
        assert len(CertificateProtocol(EQ4, 1).cover) == 4

    def test_cost_is_width_plus_two_audits(self):
        protocol = CertificateProtocol(EQ4, 1)
        result = run_protocol(protocol.agent0, protocol.agent1, (0, 0), 0)
        assert result.transcript.total_bits == protocol.width + 2


class TestCleanCellProperty:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_every_catalogue_point_matches_at_any_seed(self, seed):
        # The tentpole invariant: measured == predicted is not a
        # property of seed 0 but of the protocols themselves.
        for builder, params in catalogue(quick=True):
            instance_seed = derive_seed(
                seed, "matrix", builder.__name__, *sorted(params.items())
            )
            case = builder(instance_seed, **params)
            cell = run_cell(case, instance_seed, CLEAN)
            assert cell["verdict"] == "MATCH", (
                f"{builder.__name__}({params}) at seed {seed}: "
                f"{cell['mismatches']}"
            )
