"""The matrix sweep as a regression gate, plus its frozen JSON schema.

The quick sweep is the CI ``matrix-gate``: zero ``MISMATCH`` cells on
every commit, all four communication models and at least two fault
regimes represented.  Downstream consumers of the ``python -m repro
matrix`` JSON depend on the exact key layout, so the schema is pinned
test-side — any key change must bump ``MATRIX_SCHEMA_VERSION`` *and*
this file, deliberately.
"""

import json

from repro.matrix import (
    MATRIX_SCHEMA_VERSION,
    MODELS,
    regimes,
    run_sweep,
    sweep_report,
)

#: The pinned per-cell key set — schema v1.
CELL_KEYS = [
    "bounds",
    "family",
    "measured",
    "mismatches",
    "model",
    "params",
    "predicted",
    "regime",
    "seed",
    "verdict",
]

#: The pinned top-level key set — schema v1.
REPORT_KEYS = [
    "cells",
    "counts",
    "mismatches",
    "models",
    "ok",
    "quick",
    "regimes",
    "schema",
    "seed",
]

REGIME_KEYS = ["kind", "name", "rate_permille", "runs"]
PREDICTED_KEYS = [
    "arq_ceiling_bits",
    "arq_wire_bits",
    "bits_agent0",
    "bits_agent1",
    "rounds",
    "total_bits",
]
CLEAN_KEYS = [
    "answer",
    "arq_wire_bits",
    "bits_agent0",
    "bits_agent1",
    "rounds",
    "total_bits",
]
FAULTED_KEYS = [
    "faults_injected",
    "loud_failures",
    "recovered",
    "retries",
    "runs",
    "silent_wrong",
    "wire_bits_max",
    "wire_bits_min",
    "wire_bits_total",
]


def _no_floats(value, path="report"):
    assert not isinstance(value, float), f"float at {path}: {value!r}"
    if isinstance(value, dict):
        for key, item in value.items():
            _no_floats(item, f"{path}.{key}")
    elif isinstance(value, list):
        for index, item in enumerate(value):
            _no_floats(item, f"{path}[{index}]")


class TestQuickSweepGate:
    def test_zero_mismatch_all_models_two_fault_regimes(self):
        cells = run_sweep(quick=True, seed=0)
        assert cells, "quick sweep must not be empty"
        bad = [c for c in cells if c["verdict"] == "MISMATCH"]
        detail = "; ".join(m for c in bad for m in c["mismatches"])
        assert not bad, f"matrix contract violated: {detail}"
        assert {c["model"] for c in cells} == set(MODELS)
        faulted = {
            c["regime"]["name"]
            for c in cells
            if c["regime"]["kind"] is not None
        }
        assert len(faulted) >= 2

    def test_verdict_regime_pairing(self):
        # Clean cells judge MATCH, faulted cells WITHIN_BOUND; the
        # measured document mirrors the same split.
        for cell in run_sweep(quick=True, seed=0):
            clean = cell["regime"]["kind"] is None
            assert cell["verdict"] == ("MATCH" if clean else "WITHIN_BOUND")
            assert (cell["measured"]["clean"] is None) != clean
            assert (cell["measured"]["faulted"] is None) == clean

    def test_zero_silent_corruption(self):
        for cell in run_sweep(quick=True, seed=0):
            faulted = cell["measured"]["faulted"]
            if faulted is not None:
                assert faulted["silent_wrong"] == 0


class TestFrozenSchema:
    def test_schema_version_pinned(self):
        assert MATRIX_SCHEMA_VERSION == 1

    def test_report_layout(self):
        cells = run_sweep(quick=True, seed=3)
        report = sweep_report(cells, quick=True, seed=3)
        assert sorted(report) == REPORT_KEYS
        assert report["schema"] == 1
        assert report["quick"] is True
        assert report["seed"] == 3
        assert sorted(report["counts"]) == [
            "MATCH",
            "MISMATCH",
            "WITHIN_BOUND",
        ]
        assert report["models"] == sorted(report["models"])
        assert report["regimes"] == sorted(report["regimes"])
        assert report["mismatches"] == report["counts"]["MISMATCH"]
        assert report["ok"] == (report["mismatches"] == 0)

    def test_cell_layout(self):
        for cell in run_sweep(quick=True, seed=3):
            assert sorted(cell) == CELL_KEYS
            assert sorted(cell["regime"]) == REGIME_KEYS
            assert sorted(cell["predicted"]) == PREDICTED_KEYS
            if cell["measured"]["clean"] is not None:
                assert sorted(cell["measured"]["clean"]) == CLEAN_KEYS
            if cell["measured"]["faulted"] is not None:
                assert sorted(cell["measured"]["faulted"]) == FAULTED_KEYS

    def test_no_floats_anywhere(self):
        # Integer permille rates, integer bits, integer counts: a float
        # in the schema would break byte-determinism guarantees.
        report = sweep_report(run_sweep(quick=True, seed=0), quick=True)
        _no_floats(report)

    def test_json_round_trip(self):
        report = sweep_report(run_sweep(quick=True, seed=0), quick=True)
        assert json.loads(json.dumps(report, sort_keys=True)) == json.loads(
            json.dumps(report, sort_keys=True)
        )

    def test_regimes_quick_has_clean_plus_two(self):
        quick = regimes(quick=True)
        assert quick[0].kind is None and quick[0].name == "clean"
        assert len([r for r in quick if r.kind is not None]) >= 2
        full_kinds = {r.kind for r in regimes(quick=False) if r.kind}
        assert full_kinds == {"flip", "burst", "erase", "duplicate", "delay"}
