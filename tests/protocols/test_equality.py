"""Tests for the equality (identity) protocols."""

import itertools

import pytest

from repro.comm.randomized import estimate_error, worst_input_error
from repro.protocols.equality import (
    DeterministicEquality,
    RabinKarpEquality,
    RandomizedEquality,
    equality_reference,
)


def all_pairs(n_bits):
    strings = list(itertools.product((0, 1), repeat=n_bits))
    return [(x, y) for x in strings for y in strings]


class TestDeterministic:
    def test_exhaustive_correctness(self):
        protocol = DeterministicEquality(3)
        assert protocol.is_correct_on(all_pairs(3), equality_reference)

    def test_cost_n_plus_one(self):
        protocol = DeterministicEquality(5)
        assert protocol.cost((1, 0, 1, 0, 1), (1, 0, 1, 0, 1)) == 6

    def test_input_validation(self):
        protocol = DeterministicEquality(3)
        with pytest.raises(ValueError):
            protocol.output((1, 0), (1, 0, 1))

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            DeterministicEquality(0)


class TestRandomizedParity:
    def test_equal_inputs_never_err(self):
        protocol = RandomizedEquality(4, rounds=8)
        x = (1, 0, 1, 1)
        for seed in range(10):
            assert protocol.output(x, x, seed) is True

    def test_unequal_error_bounded(self):
        protocol = RandomizedEquality(4, rounds=10)
        est = estimate_error(
            protocol, (1, 0, 1, 1), (0, 0, 1, 1), truth=False, trials=200
        )
        assert est.error_rate <= 3 * protocol.error_bound() + 0.02

    def test_cost_rounds_plus_one(self):
        protocol = RandomizedEquality(4, rounds=6)
        result = protocol.run((1, 1, 1, 1), (0, 0, 0, 0), seed=0)
        assert result.bits_exchanged == 7

    def test_error_bound_formula(self):
        assert RandomizedEquality(4, rounds=5).error_bound() == 2**-5

    def test_worst_input_error_small(self):
        protocol = RandomizedEquality(3, rounds=12)
        worst, _ = worst_input_error(
            protocol,
            all_pairs(3)[:20],
            lambda x, y: x == y,
            trials=30,
        )
        assert worst <= 0.15


class TestRabinKarp:
    def test_exhaustive_small(self):
        protocol = RabinKarpEquality(3)
        errors = 0
        for x, y in all_pairs(3):
            for seed in (0, 1):
                if protocol.output(x, y, seed) != (x == y):
                    errors += 1
        # Error rate bounded by (n-1)/p per run — with p > n^2 almost none.
        assert errors <= 2

    def test_equal_never_errs(self):
        protocol = RabinKarpEquality(6)
        x = (1, 0, 1, 1, 0, 0)
        for seed in range(10):
            assert protocol.output(x, x, seed) is True

    def test_logarithmic_cost(self):
        small = RabinKarpEquality(8)
        large = RabinKarpEquality(256)
        # Cost is width of a prime > n²: ~2 log2 n + O(1) bits.
        cost_small = small.run((0,) * 8, (0,) * 8, 0).bits_exchanged
        cost_large = large.run((0,) * 256, (0,) * 256, 0).bits_exchanged
        assert cost_large < 4 * cost_small
        assert cost_large < 256  # far below the deterministic n + 1

    def test_error_bound(self):
        protocol = RabinKarpEquality(10)
        assert 0 < protocol.error_bound() < 0.1
