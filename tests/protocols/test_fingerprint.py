"""Tests for the randomized fingerprint (Leighton) protocol."""

import pytest

from repro.comm.bits import MatrixBitCodec
from repro.comm.partition import pi_zero, random_even_partition
from repro.comm.randomized import estimate_error
from repro.exact.matrix import Matrix
from repro.exact.rank import is_singular
from repro.protocols.fingerprint import (
    FingerprintProtocol,
    default_prime_bits,
    error_upper_bound,
    repetitions_for_error,
)
from repro.util.rng import ReproducibleRNG


def make_protocol(size=6, k=2, **kwargs):
    codec = MatrixBitCodec(size, size, k)
    return codec, FingerprintProtocol(codec, pi_zero(codec), **kwargs)


class TestOneSidedness:
    def test_singular_always_detected(self, rng):
        # Singular over Q => singular mod every prime: zero error this side.
        codec, protocol = make_protocol()
        singular = Matrix([[1, 1, 0, 0, 0, 0], [2, 2, 0, 0, 0, 0]] + [[0] * 6] * 4)
        assert is_singular(singular)
        for seed in range(15):
            assert protocol.decide(singular, seed) is True

    def test_nonsingular_usually_detected(self):
        codec, protocol = make_protocol()
        view0, view1 = _views(codec, protocol, Matrix.identity(6))
        est = estimate_error(protocol, view0, view1, truth=False, trials=30)
        assert est.error_rate == 0.0  # 24+-bit primes never divide det=1

    def test_engineered_false_positive(self):
        # With a tiny prime space, det divisible by the only available
        # primes looks singular — the protocol's documented error mode.
        codec = MatrixBitCodec(2, 2, 3)
        protocol = FingerprintProtocol(codec, pi_zero(codec), prime_bits=2)
        m = Matrix([[6, 0], [0, 1]])  # det 6 = 2*3; 2-bit primes are {2, 3}
        assert not is_singular(m)
        wrong = sum(protocol.decide(m, seed) for seed in range(20))
        assert wrong == 20  # every draw divides 6


def _views(codec, protocol, m):
    bits = codec.encode(m)
    return protocol.partition.split_input(bits)


class TestCost:
    def test_cost_bound_respected(self, rng):
        codec, protocol = make_protocol()
        m = Matrix.random_kbit(rng, 6, 6, 2)
        result = protocol.run_on_matrix(m, seed=3)
        assert result.bits_exchanged <= protocol.cost_bits()

    def test_cost_scales_with_prime_bits(self):
        _, cheap = make_protocol(prime_bits=8)
        _, rich = make_protocol(prime_bits=16)
        assert rich.cost_bits() > cheap.cost_bits()

    def test_beats_trivial_for_large_k(self):
        from repro.protocols.trivial import theoretical_trivial_cost

        n, k = 4, 128
        codec = MatrixBitCodec(2 * n, 2 * n, k)
        protocol = FingerprintProtocol(codec, pi_zero(codec))
        assert protocol.cost_bits() < theoretical_trivial_cost(n, k)


class TestScatteredPartitions:
    def test_partial_residue_trick(self, rng):
        # A random partition scatters entry bits across agents; correctness
        # must not depend on whole-entry ownership.
        codec = MatrixBitCodec(4, 4, 3)
        partition = random_even_partition(rng, codec)
        protocol = FingerprintProtocol(codec, partition)
        singular = Matrix(
            [[1, 2, 3, 4], [2, 4, 6, 0], [1, 2, 3, 4], [0, 0, 0, 1]]
        )
        assert is_singular(singular)
        for seed in range(5):
            assert protocol.decide(singular, seed) is True
        assert protocol.decide(Matrix.identity(4), 0) is False


class TestErrorAnalysis:
    def test_default_prime_bits_grows_with_max(self):
        assert default_prime_bits(1000, 2) > default_prime_bits(4, 2)
        assert default_prime_bits(4, 1 << 20) > default_prime_bits(4, 2)

    def test_error_bound_decreases_with_prime_bits(self):
        small = error_upper_bound(8, 4, 12)
        large = error_upper_bound(8, 4, 24)
        assert large < small

    def test_error_bound_below_half_at_defaults(self):
        for n, k in [(8, 2), (16, 8), (32, 16)]:
            bits = default_prime_bits(n, k)
            assert error_upper_bound(n, k, bits) < 0.5

    def test_repetitions(self):
        assert repetitions_for_error(0.5, 0.001) == 10
        assert repetitions_for_error(0.0, 0.001) == 1
        with pytest.raises(ValueError):
            repetitions_for_error(0.5, 0)
        with pytest.raises(ValueError):
            repetitions_for_error(1.0, 0.5)
