"""Tests for matrix-product verification protocols."""

import pytest

from repro.comm.randomized import estimate_error
from repro.exact.matrix import Matrix
from repro.protocols.matmul_verify import (
    DeterministicMatMulVerify,
    FreivaldsVerify,
    matmul_reference,
)
from repro.util.rng import ReproducibleRNG


def random_triple(rng, n=4, k=2, correct=True):
    a = Matrix.random_kbit(rng, n, n, k)
    b = Matrix.random_kbit(rng, n, n, k)
    c = a @ b
    if not correct:
        c = c.with_entry(
            rng.randrange(n), rng.randrange(n), c[0, 0] + 1 + rng.randrange(3)
        )
    return (a, b), c


class TestDeterministic:
    def test_accepts_true_products(self, rng):
        protocol = DeterministicMatMulVerify(4, 2)
        for _ in range(5):
            input0, c = random_triple(rng)
            assert protocol.output(input0, c) is True

    def test_rejects_false_products(self, rng):
        protocol = DeterministicMatMulVerify(4, 2)
        for _ in range(5):
            input0, c = random_triple(rng, correct=False)
            assert protocol.output(input0, c) is False

    def test_cost_is_2kn2_plus_1(self, rng):
        protocol = DeterministicMatMulVerify(4, 2)
        input0, c = random_triple(rng)
        result = protocol.run(input0, c)
        assert result.bits_exchanged == protocol.exact_cost_bits() == 65


class TestFreivalds:
    def test_accepts_true_products_always(self, rng):
        protocol = FreivaldsVerify(4, 2)
        for seed in range(10):
            input0, c = random_triple(rng)
            assert protocol.output(input0, c, seed) is True

    def test_rejects_false_products_whp(self, rng):
        protocol = FreivaldsVerify(4, 2, rounds=2)
        input0, c = random_triple(rng, correct=False)
        est = estimate_error(protocol, input0, c, truth=False, trials=50)
        assert est.error_rate <= protocol.error_bound() + 0.05

    def test_cost_linear_not_quadratic(self):
        det_cost = DeterministicMatMulVerify(32, 4).exact_cost_bits()
        frei_cost = FreivaldsVerify(32, 4, rounds=2).cost_bits()
        assert frei_cost < det_cost / 4

    def test_cost_bound_matches_run(self, rng):
        protocol = FreivaldsVerify(4, 2, rounds=3)
        input0, c = random_triple(rng)
        result = protocol.run(input0, c, seed=1)
        assert result.bits_exchanged == protocol.cost_bits()

    def test_reference(self, rng):
        input0, c = random_triple(rng)
        assert matmul_reference(input0, c) is True
        input0, c = random_triple(rng, correct=False)
        assert matmul_reference(input0, c) is False

    def test_rounds_validation(self):
        with pytest.raises(ValueError):
            FreivaldsVerify(4, 2, rounds=0)
