"""Tests for the column-basis rank protocol and the solvability protocols."""

import pytest

from repro.exact.matrix import Matrix
from repro.exact.rank import is_singular
from repro.exact.solve import is_solvable
from repro.exact.vector import Vector
from repro.protocols.rank_protocol import ColumnBasisProtocol
from repro.protocols.solvability import (
    FingerprintSolvability,
    TrivialSolvability,
    join_system,
    split_system,
)
from repro.util.rng import ReproducibleRNG


class TestColumnBasis:
    def test_correct_on_random(self, rng):
        protocol = ColumnBasisProtocol()
        for _ in range(10):
            m = Matrix.random_kbit(rng, 6, 6, 2)
            assert protocol.decide(m) == is_singular(m)

    def test_correct_on_singular(self):
        protocol = ColumnBasisProtocol()
        m = Matrix([[1, 1, 0, 0], [2, 2, 0, 0], [0, 0, 1, 0], [0, 0, 0, 1]])
        assert protocol.decide(m) is True

    def test_low_rank_compresses(self, rng):
        # A rank-1 left half ships a 1-row basis: far fewer bits than the
        # raw half — the protocol's honest win case.
        protocol = ColumnBasisProtocol()
        rank1 = Matrix.from_function(6, 6, lambda i, j: (i + 1) if j < 3 else (1 if i == j else 0))
        full = Matrix.random_kbit(rng, 6, 6, 2)
        cost_low = protocol.run_on_matrix(rank1).bits_exchanged
        cost_full = protocol.run_on_matrix(full).bits_exchanged
        assert cost_low < cost_full

    def test_zero_half(self):
        # Left half all-zero: the basis is empty (None on the wire).
        protocol = ColumnBasisProtocol()
        m = Matrix.zeros(4, 4).with_block(0, 2, Matrix.identity(2))
        result = protocol.run_on_matrix(m)
        assert result.agreed_output() is True  # rank <= 2 < 4

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ColumnBasisProtocol().run_on_matrix(Matrix.identity(3))


class TestSolvabilitySplit:
    def test_split_join_roundtrip(self, rng):
        a = Matrix.random_kbit(rng, 4, 4, 2)
        b = Vector([1, 2, 3, 4])
        left, right = split_system(a, b)
        a2, b2 = join_system(left, right)
        assert a2 == a and b2 == b


class TestTrivialSolvability:
    def test_correct_on_random(self, rng):
        protocol = TrivialSolvability(4, 2)
        for _ in range(10):
            a = Matrix.random_kbit(rng, 4, 4, 2)
            b = Vector([rng.kbit_entry(2) for _ in range(4)])
            assert protocol.decide(a, b) == is_solvable(a, b)

    def test_correct_on_unsolvable(self):
        protocol = TrivialSolvability(2, 2)
        a = Matrix([[1, 1], [1, 1]])
        assert protocol.decide(a, Vector([0, 1])) is False

    def test_cost_scales_with_k(self, rng):
        a = Matrix.random_kbit(rng, 4, 4, 2)
        b = Vector([1, 0, 1, 0])
        cost_k2 = TrivialSolvability(4, 2).run_on_system(a, b).bits_exchanged
        cost_k4 = TrivialSolvability(4, 4).run_on_system(a, b).bits_exchanged
        assert cost_k4 > cost_k2


class TestFingerprintSolvability:
    def test_correct_whp_on_random(self, rng):
        protocol = FingerprintSolvability(4, 2)
        wrong = 0
        for seed in range(15):
            a = Matrix.random_kbit(rng, 4, 4, 2)
            b = Vector([rng.kbit_entry(2) for _ in range(4)])
            if protocol.decide(a, b, seed) != is_solvable(a, b):
                wrong += 1
        assert wrong == 0  # large default primes, tiny minors

    def test_solvable_stays_solvable_mod_p(self):
        # One-sided direction: an exactly-solvable *integer-solution* system
        # remains solvable mod p.
        protocol = FingerprintSolvability(3, 2)
        a = Matrix.identity(3)
        b = Vector([1, 2, 3])
        for seed in range(10):
            assert protocol.decide(a, b, seed) is True

    def test_cheaper_than_trivial_for_big_k(self):
        n, k = 4, 48
        rng = ReproducibleRNG(9)
        a = Matrix.random_kbit(rng, n, n, k)
        b = Vector([rng.kbit_entry(k) for _ in range(n)])
        trivial_cost = TrivialSolvability(n, k).run_on_system(a, b).bits_exchanged
        fp_cost = FingerprintSolvability(n, k).run_on_system(a, b, 0).bits_exchanged
        assert fp_cost < trivial_cost
