"""Tests for the trivial send-everything protocol."""

import pytest

from repro.comm.bits import MatrixBitCodec
from repro.comm.partition import pi_zero, random_even_partition, row_split
from repro.exact.matrix import Matrix
from repro.exact.rank import is_singular
from repro.protocols.trivial import TrivialProtocol, theoretical_trivial_cost
from repro.util.rng import ReproducibleRNG


class TestCorrectness:
    def test_singularity_random(self, rng):
        codec = MatrixBitCodec(6, 6, 2)
        protocol = TrivialProtocol(codec, pi_zero(codec))
        for _ in range(10):
            m = Matrix.random_kbit(rng, 6, 6, 2)
            assert protocol.decide(m) == is_singular(m)

    def test_under_scattered_partition(self, rng):
        codec = MatrixBitCodec(4, 4, 2)
        partition = random_even_partition(rng, codec)
        protocol = TrivialProtocol(codec, partition)
        for _ in range(10):
            m = Matrix.random_kbit(rng, 4, 4, 2)
            assert protocol.decide(m) == is_singular(m)

    def test_custom_predicate(self, rng):
        codec = MatrixBitCodec(4, 4, 2)
        protocol = TrivialProtocol(
            codec, row_split(codec), predicate=lambda m: m.trace() == 0
        )
        zero_trace = Matrix.zeros(4, 4)
        assert protocol.decide(zero_trace) is True
        assert protocol.decide(Matrix.identity(4)) is False

    def test_both_agents_agree(self, rng):
        codec = MatrixBitCodec(4, 4, 1)
        protocol = TrivialProtocol(codec, pi_zero(codec))
        m = Matrix.random_kbit(rng, 4, 4, 1)
        result = protocol.run_on_matrix(m)
        assert result.outputs[0] == result.outputs[1]


class TestCost:
    def test_cost_equals_share_plus_answer(self, rng):
        codec = MatrixBitCodec(6, 6, 2)
        partition = pi_zero(codec)
        protocol = TrivialProtocol(codec, partition)
        m = Matrix.random_kbit(rng, 6, 6, 2)
        result = protocol.run_on_matrix(m)
        assert result.bits_exchanged == len(partition.agent0) + 1
        assert result.bits_exchanged == protocol.exact_cost_bits()

    def test_cost_input_independent(self, rng):
        codec = MatrixBitCodec(4, 4, 2)
        protocol = TrivialProtocol(codec, pi_zero(codec))
        costs = {
            protocol.run_on_matrix(Matrix.random_kbit(rng, 4, 4, 2)).bits_exchanged
            for _ in range(5)
        }
        assert len(costs) == 1

    def test_theoretical_formula(self):
        assert theoretical_trivial_cost(7, 2) == 2 * 14 * 14 // 2 + 1

    def test_cost_matches_theory_for_pi0(self):
        n, k = 3, 2
        codec = MatrixBitCodec(2 * n, 2 * n, k)
        protocol = TrivialProtocol(codec, pi_zero(codec))
        assert protocol.exact_cost_bits() == theoretical_trivial_cost(n, k)

    def test_two_rounds(self, rng):
        codec = MatrixBitCodec(4, 4, 1)
        protocol = TrivialProtocol(codec, pi_zero(codec))
        m = Matrix.random_kbit(rng, 4, 4, 1)
        assert protocol.run_on_matrix(m).rounds == 2
