"""Tests for the self-delimiting wire formats."""

from fractions import Fraction

import pytest

from repro.exact.matrix import Matrix
from repro.protocols.wire import (
    HEADER_BITS,
    decode_fraction,
    decode_fraction_matrix,
    decode_varint,
    encode_fraction,
    encode_fraction_matrix,
    encode_varint,
)


class TestVarint:
    def test_roundtrip(self):
        for value in (0, 1, -1, 255, -12345, 2**40):
            bits = encode_varint(value)
            decoded, cursor = decode_varint(bits, 0)
            assert decoded == value
            assert cursor == len(bits)

    def test_concatenation(self):
        bits = encode_varint(7) + encode_varint(-3)
        first, cursor = decode_varint(bits, 0)
        second, cursor = decode_varint(bits, cursor)
        assert (first, second) == (7, -3)
        assert cursor == len(bits)

    def test_huge_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(1 << 70000)


class TestFraction:
    def test_roundtrip(self):
        for value in (Fraction(0), Fraction(-7, 3), Fraction(22, 7)):
            bits = encode_fraction(value)
            decoded, cursor = decode_fraction(bits, 0)
            assert decoded == value
            assert cursor == len(bits)

    def test_corrupt_denominator_detected(self):
        bits = encode_varint(1) + encode_varint(0)
        with pytest.raises(ValueError):
            decode_fraction(bits, 0)


class TestFractionMatrix:
    def test_roundtrip(self):
        m = Matrix([[1, Fraction(1, 2)], [Fraction(-3, 4), 7]])
        bits = encode_fraction_matrix(m, 2)
        assert decode_fraction_matrix(bits, 2) == m

    def test_none_roundtrip(self):
        bits = encode_fraction_matrix(None, 5)
        assert len(bits) == HEADER_BITS
        assert decode_fraction_matrix(bits, 5) is None

    def test_ambient_enforced(self):
        with pytest.raises(ValueError):
            encode_fraction_matrix(Matrix([[1, 2]]), 3)

    def test_length_mismatch_detected(self):
        m = Matrix([[1, 2]])
        bits = encode_fraction_matrix(m, 2)
        with pytest.raises(ValueError):
            decode_fraction_matrix(bits + [0] * 17, 3)
