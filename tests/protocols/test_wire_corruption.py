"""Property-based corruption tests for the wire formats.

The contract under fault injection: a corrupted encoding must either raise
``ValueError`` or decode to a *different* value — never decode silently back
to the original, and never escape with an unrelated exception.  Canonical
encodings (minimal varint lengths, no negative zero, reduced fractions,
consistent matrix headers) are what make the single-bit-flip half of this
provable, so the properties below are exhaustive over flip positions.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact.matrix import Matrix
from repro.protocols.wire import (
    HEADER_BITS,
    decode_fraction,
    decode_fraction_matrix,
    decode_varint,
    encode_fraction,
    encode_fraction_matrix,
    encode_varint,
)

integers = st.integers(min_value=-(2**24), max_value=2**24)
fractions = st.builds(
    Fraction,
    st.integers(min_value=-(2**12), max_value=2**12),
    st.integers(min_value=1, max_value=2**12),
)


def small_matrices(max_dim: int = 2, magnitude: int = 8):
    """Strategy for tiny fraction matrices (rows × cols ≤ 2 × 2)."""
    entry = st.builds(
        Fraction,
        st.integers(min_value=-magnitude, max_value=magnitude),
        st.integers(min_value=1, max_value=magnitude),
    )
    return st.integers(min_value=1, max_value=max_dim).flatmap(
        lambda cols: st.lists(
            st.lists(entry, min_size=cols, max_size=cols),
            min_size=1,
            max_size=max_dim,
        ).map(Matrix)
    )


class TestVarintCorruption:
    @given(integers)
    @settings(max_examples=60)
    def test_every_single_flip_detected_or_changes_value(self, value):
        bits = encode_varint(value)
        for i in range(len(bits)):
            damaged = list(bits)
            damaged[i] ^= 1
            try:
                decoded, _ = decode_varint(damaged, 0)
            except ValueError:
                continue  # detected — the good outcome
            assert decoded != value, f"flip at {i} silently preserved {value}"

    @given(integers)
    @settings(max_examples=60)
    def test_every_truncation_raises(self, value):
        bits = encode_varint(value)
        for cut in range(len(bits)):
            with pytest.raises(ValueError):
                decode_varint(bits[:cut], 0)

    def test_non_canonical_length_rejected(self):
        from repro.comm.bits import int_to_bits

        # length prefix says 4 bits, but the magnitude 5 fits in 3
        oversized = list(int_to_bits(4, 16)) + [0] + [1, 0, 1, 0]
        with pytest.raises(ValueError, match="non-canonical"):
            decode_varint(oversized, 0)

    def test_negative_zero_rejected(self):
        from repro.comm.bits import int_to_bits

        bits = list(int_to_bits(1, 16)) + [1] + [0]
        with pytest.raises(ValueError, match="negative zero"):
            decode_varint(bits, 0)

    def test_zero_length_rejected(self):
        from repro.comm.bits import int_to_bits

        bits = list(int_to_bits(0, 16)) + [0]
        with pytest.raises(ValueError, match="zero-length"):
            decode_varint(bits, 0)


class TestFractionCorruption:
    @given(fractions)
    @settings(max_examples=40)
    def test_roundtrip(self, value):
        bits = encode_fraction(value)
        decoded, cursor = decode_fraction(bits, 0)
        assert decoded == value and cursor == len(bits)

    @given(fractions)
    @settings(max_examples=30)
    def test_every_single_flip_detected_or_changes_value(self, value):
        bits = encode_fraction(value)
        for i in range(len(bits)):
            damaged = list(bits)
            damaged[i] ^= 1
            try:
                decoded, _ = decode_fraction(damaged, 0)
            except ValueError:
                continue
            assert decoded != value, f"flip at {i} silently preserved {value}"

    def test_non_reduced_rejected(self):
        bits = encode_varint(2) + encode_varint(4)  # 2/4 — never emitted
        with pytest.raises(ValueError, match="non-reduced"):
            decode_fraction(bits, 0)

    def test_non_positive_denominator_rejected(self):
        bits = encode_varint(1) + encode_varint(-2)
        with pytest.raises(ValueError, match="corrupt fraction"):
            decode_fraction(bits, 0)


class TestMatrixCorruption:
    @given(small_matrices())
    @settings(max_examples=25)
    def test_roundtrip(self, matrix):
        bits = encode_fraction_matrix(matrix, matrix.num_cols)
        decoded = decode_fraction_matrix(bits, matrix.num_cols)
        assert decoded == matrix

    @given(small_matrices(max_dim=2, magnitude=4))
    @settings(max_examples=10, deadline=None)
    def test_every_single_flip_detected_or_changes_value(self, matrix):
        ambient = matrix.num_cols
        bits = encode_fraction_matrix(matrix, ambient)
        for i in range(len(bits)):
            damaged = list(bits)
            damaged[i] ^= 1
            try:
                decoded = decode_fraction_matrix(damaged, ambient)
            except ValueError:
                continue
            assert decoded != matrix, f"flip at {i} silently preserved the matrix"

    @given(small_matrices(max_dim=2, magnitude=4))
    @settings(max_examples=10, deadline=None)
    def test_every_truncation_raises(self, matrix):
        ambient = matrix.num_cols
        bits = encode_fraction_matrix(matrix, ambient)
        for cut in range(len(bits)):
            with pytest.raises(ValueError):
                decode_fraction_matrix(bits[:cut], ambient)

    def test_empty_basis_roundtrip(self):
        bits = encode_fraction_matrix(None, 3)
        assert decode_fraction_matrix(bits, 3) is None

    def test_truncated_header(self):
        with pytest.raises(ValueError, match="truncated matrix header"):
            decode_fraction_matrix([0] * (HEADER_BITS - 1), 2)

    def test_zero_rows_nonzero_body_rejected(self):
        from repro.comm.bits import int_to_bits

        bits = list(int_to_bits(0, 16)) + list(int_to_bits(8, 32)) + [0] * 8
        with pytest.raises(ValueError, match="zero rows"):
            decode_fraction_matrix(bits, 2)

    def test_positive_rows_empty_body_rejected(self):
        from repro.comm.bits import int_to_bits

        bits = list(int_to_bits(1, 16)) + list(int_to_bits(0, 32))
        with pytest.raises(ValueError, match="empty body"):
            decode_fraction_matrix(bits, 2)

    def test_wrong_ambient_rejected_on_encode(self):
        matrix = Matrix([[Fraction(1)]])
        with pytest.raises(ValueError, match="ambient"):
            encode_fraction_matrix(matrix, 2)
