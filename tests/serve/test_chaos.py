"""Service-layer chaos: frame faults, pipes, and the robustness gate."""

import pytest

from repro.serve.chaos import (
    FRAME_FAULT_KINDS,
    FramePipe,
    ServeChaosPoint,
    chaos_sweep,
    gold_verdict,
    make_frame_fault_model,
    make_workload,
)
from repro.serve.service import ServiceConfig


class TestFrameFaultModel:
    def test_registry_rejects_unknown_kind_and_bad_rate(self):
        with pytest.raises(ValueError):
            make_frame_fault_model("gamma_ray", 0.1, 0)
        with pytest.raises(ValueError):
            make_frame_fault_model("flip", 1.5, 0)

    def test_determinism_per_seed(self):
        for kind in FRAME_FAULT_KINDS:
            a = make_frame_fault_model(kind, 0.5, 7)
            b = make_frame_fault_model(kind, 0.5, 7)
            payload = b"0123456789" * 4
            for _ in range(50):
                assert a.apply(payload) == b.apply(payload)

    def test_kind_semantics(self):
        payload = b"hello-frame-payload"
        seen = {kind: set() for kind in FRAME_FAULT_KINDS}
        for kind in FRAME_FAULT_KINDS:
            model = make_frame_fault_model(kind, 1.0, 3)
            for _ in range(30):
                delivered, hold = model.apply(payload)
                if kind == "drop":
                    assert delivered == [] and hold == 0
                elif kind == "duplicate":
                    assert delivered == [payload, payload]
                elif kind == "delay":
                    assert delivered == [] and 1 <= hold <= 3
                elif kind == "erase":
                    assert len(delivered) == 1
                    assert len(delivered[0]) < len(payload)
                    assert payload.startswith(delivered[0])
                else:  # flip / burst garble without changing length
                    assert len(delivered) == 1
                    assert len(delivered[0]) == len(payload)
                    assert delivered[0] != payload
                seen[kind].add(str((delivered, hold)))
        assert all(seen.values())


class TestFramePipe:
    def test_clean_pipe_is_a_wire(self):
        pipe = FramePipe(None)
        assert pipe.transfer(b"a") == [b"a"]
        assert pipe.transfer(b"b") == [b"b"]
        assert pipe.flush() == []

    def test_delayed_frames_release_on_later_traffic(self):
        model = make_frame_fault_model("delay", 1.0, 0)
        pipe = FramePipe(model)
        first = pipe.transfer(b"one")
        assert first == []  # held
        released = []
        for i in range(6):
            released.extend(
                frame for frame in pipe.transfer(b"tick%d" % i)
                if frame == b"one"
            )
        released.extend(frame for frame in pipe.flush() if frame == b"one")
        assert released == [b"one"]  # exactly once, never lost

    def test_drop_pipe_loses_frames_silently(self):
        pipe = FramePipe(make_frame_fault_model("drop", 1.0, 0))
        assert pipe.transfer(b"gone") == []
        assert pipe.flush() == []


class TestWorkload:
    def test_deterministic_per_seed(self):
        assert make_workload(5, 40) == make_workload(5, 40)
        assert make_workload(5, 40) != make_workload(6, 40)

    def test_mix_covers_every_method_and_error_bait(self):
        jobs = make_workload(0, 200)
        methods = {job["method"] for job in jobs}
        assert methods == {
            "protocol.run", "exhaustive.cc", "partition.search", "cache.stats",
        }
        golds = [
            gold_verdict(job["method"], job["params"], ServiceConfig())
            for job in jobs
        ]
        assert any(g is not None and g[0] == "error" for g in golds)
        assert any(g is not None and g[0] == "ok" for g in golds)

    def test_gold_verdict_excludes_cache_stats(self):
        assert gold_verdict("cache.stats", {}, ServiceConfig()) is None


class TestChaosGate:
    @pytest.mark.parametrize("kind", FRAME_FAULT_KINDS)
    def test_no_silent_corruption_or_hangs_per_kind(self, kind):
        (point,) = chaos_sweep(
            kinds=(kind,), rate=0.08, requests_per_kind=40, clients=4, seed=1
        )
        assert point.silent_wrong == 0
        assert point.hung == 0
        assert point.terminated == point.requests
        assert point.ok > 0  # faults degrade, they don't disable

    def test_sweep_is_deterministic_in_outcomes(self):
        run = lambda: chaos_sweep(  # noqa: E731
            kinds=("flip", "drop"), rate=0.1, requests_per_kind=25,
            clients=5, seed=3,
        )
        first = [p.as_dict() for p in run()]
        second = [p.as_dict() for p in run()]
        assert first == second

    def test_faults_actually_bite(self):
        (point,) = chaos_sweep(
            kinds=("drop",), rate=0.3, requests_per_kind=30, clients=3, seed=0
        )
        assert point.retries > 0  # the pipes really did lose frames
        assert point.silent_wrong == 0
        assert point.hung == 0

    def test_point_serialization(self):
        point = ServeChaosPoint(kind="flip", rate=0.1, requests=10, ok=10)
        as_dict = point.as_dict()
        assert as_dict["kind"] == "flip"
        assert set(as_dict) >= {
            "ok", "expected_errors", "lost", "silent_wrong", "hung", "retries",
        }
