"""The load harness: percentiles, shed accounting, BENCH_SERVE.json."""

import json

import pytest

from repro.serve.load import (
    LoadReport,
    percentile,
    run_bench_serve,
    run_load,
    write_bench_serve,
)
from repro.serve.service import ServiceConfig


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 100.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestRunLoad:
    def test_clean_outcomes_are_deterministic(self):
        a = run_load(clients=8, requests_per_client=3, seed=2)
        b = run_load(clients=8, requests_per_client=3, seed=2)
        assert (a.ok, a.structured_errors, a.lost) == (
            b.ok, b.structured_errors, b.lost,
        )
        assert a.error_codes == b.error_codes
        assert a.lost == 0
        assert a.ok + a.structured_errors == a.requests

    def test_coalescing_pays_under_clean_channels(self):
        report = run_load(clients=20, requests_per_client=4, seed=0)
        saved = report.counters.get("serve.memo_hits", 0) + report.counters.get(
            "serve.coalesced", 0
        )
        assert saved > 0
        assert report.counters["serve.executed"] < report.requests

    def test_faulted_load_still_terminates_everything(self):
        report = run_load(
            clients=10, requests_per_client=3, seed=1,
            fault_kind="drop", rate=0.15,
        )
        assert report.lost == 0
        assert report.ok + report.structured_errors == report.requests
        assert report.retries > 0

    def test_overload_sheds_and_reports_the_rate(self):
        report = run_load(
            clients=30, requests_per_client=2, seed=0,
            config=ServiceConfig(max_queue=2, workers=1),
        )
        assert report.lost == 0
        # With a starved queue the shed path must actually fire …
        assert report.counters.get("serve.shed.overloaded", 0) > 0
        assert report.shed > 0
        # … and the headline rate reflects it.
        assert report.shed_rate > 0

    def test_latencies_cover_every_request(self):
        report = run_load(clients=5, requests_per_client=2, seed=0)
        assert len(report.latencies_ms) == report.requests
        stats = report.latency_percentiles()
        assert stats["p50"] <= stats["p95"] <= stats["p99"]


class TestBenchServe:
    def test_report_shape_and_write(self, tmp_path):
        report = run_bench_serve(
            seed=0, clients=6, requests_per_client=2, rate=0.05
        )
        assert report["schema"] == 1
        for phase in report["phases"].values():
            assert set(phase["latency_ms"]) == {"p50", "p95", "p99"}
            assert phase["lost"] == 0
            assert "shed_rate" in phase
        assert report["gate"]["coalesced_or_memoized"] >= 0
        path = write_bench_serve(report, tmp_path / "BENCH_SERVE.json")
        assert json.loads(path.read_text()) == report

    def test_empty_report_percentiles(self):
        empty = LoadReport(clients=0, requests=0)
        assert empty.latency_percentiles() == {
            "p50": None, "p95": None, "p99": None,
        }
        assert empty.shed_rate == 0.0
