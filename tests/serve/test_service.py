"""The Service: admission, deadlines, shedding, coalescing, budgets."""

import asyncio

import pytest

from repro import obs
from repro.serve import wire
from repro.serve.service import (
    HandlerError,
    Service,
    ServiceConfig,
    coalesce_key,
    execute_method,
    handle_exhaustive_cc,
    handle_partition_search,
    handle_protocol_run,
)
from repro.serve.wire import decode_frame, request_frame, validate_response


def run(coro):
    return asyncio.run(coro)


def response_of(raw: bytes) -> dict:
    return validate_response(decode_frame(raw.rstrip(b"\n")))


async def one_call(data: bytes, config: ServiceConfig | None = None, tenant="t"):
    async with Service(config) as service:
        return response_of(await service.call(data, tenant=tenant))


class TestHandlers:
    def test_protocol_run_equality(self):
        result = handle_protocol_run(
            {"scenario": "equality", "seed": 1}, ServiceConfig()
        )
        assert result["answer"] in (True, False)
        assert result["bits"] > 0

    def test_protocol_run_budget_exceeded(self):
        with pytest.raises(HandlerError) as err:
            handle_protocol_run(
                {"scenario": "equality", "seed": 0, "bit_budget": 1},
                ServiceConfig(),
            )
        assert err.value.code == "budget_exceeded"

    def test_protocol_run_rejects_unknown_scenario_and_params(self):
        with pytest.raises(HandlerError):
            handle_protocol_run({"scenario": "nope"}, ServiceConfig())
        with pytest.raises(HandlerError):
            handle_protocol_run(
                {"scenario": "equality", "bogus": 1}, ServiceConfig()
            )

    def test_exhaustive_cc_identity_matrix(self):
        result = handle_exhaustive_cc(
            {"matrix": [[1, 0], [0, 1]]}, ServiceConfig()
        )
        assert result["d"] == 2
        assert result["leaves"] == 4
        assert len(result["key"]) == 40  # blake2b-20 hex

    def test_exhaustive_cc_too_large(self):
        with pytest.raises(HandlerError) as err:
            handle_exhaustive_cc(
                {"matrix": [[0] * 9 for _ in range(9)]},
                ServiceConfig(exhaustive_limit=8),
            )
        assert err.value.code == "too_large"

    def test_exhaustive_cc_schema_violations(self):
        for bad in ([], [[]], [[2]], [[0], [0, 1]], "nope"):
            with pytest.raises(HandlerError) as err:
                handle_exhaustive_cc({"matrix": bad}, ServiceConfig())
            assert err.value.code == "bad_request"

    def test_partition_search_parity(self):
        result = handle_partition_search(
            {"problem": "parity", "total_bits": 4}, ServiceConfig()
        )
        assert result["best_d"] == result["worst_d"] == 2

    def test_partition_search_limits(self):
        with pytest.raises(HandlerError) as err:
            handle_partition_search(
                {"problem": "parity", "total_bits": 6},
                ServiceConfig(partition_bits_limit=4),
            )
        assert err.value.code == "too_large"
        with pytest.raises(HandlerError):
            handle_partition_search(
                {"problem": "parity", "total_bits": 3}, ServiceConfig()
            )


class TestCoalescing:
    def test_identical_matrices_share_a_key(self):
        params_a = {"matrix": [[1, 0], [0, 1]]}
        params_b = {"matrix": [[1, 0], [0, 1]]}
        assert coalesce_key("exhaustive.cc", params_a) == coalesce_key(
            "exhaustive.cc", params_b
        )
        assert coalesce_key("exhaustive.cc", params_a) != coalesce_key(
            "exhaustive.cc", {"matrix": [[1, 1], [0, 1]]}
        )

    def test_cache_stats_is_never_coalesced(self):
        assert coalesce_key("cache.stats", {}) is None

    def test_duplicate_requests_hit_the_memo(self):
        async def scenario():
            with obs.scoped():
                async with Service() as service:
                    frames = [
                        request_frame(
                            f"r{i}", "exhaustive.cc",
                            {"matrix": [[1, 0], [0, 1]]}, tenant=f"t{i}",
                        )
                        for i in range(4)
                    ]
                    results = [
                        response_of(await service.call(f)) for f in frames
                    ]
                counters = obs.snapshot()["counters"]
            return results, counters

        results, counters = run(scenario())
        assert all(r["ok"] for r in results)
        assert len({wire.canonical_json(r["result"]) for r in results}) == 1
        assert counters["serve.executed"] == 1
        assert counters["serve.memo_hits"] == 3

    def test_concurrent_duplicates_coalesce_in_flight(self):
        async def scenario():
            with obs.scoped():
                async with Service(ServiceConfig(workers=2)) as service:
                    frames = [
                        request_frame(
                            f"c{i}", "protocol.run",
                            {"scenario": "fingerprint", "seed": 7},
                            tenant=f"t{i}",
                        )
                        for i in range(6)
                    ]
                    results = await asyncio.gather(
                        *(service.call(f) for f in frames)
                    )
                counters = obs.snapshot()["counters"]
            return [response_of(r) for r in results], counters

        results, counters = run(scenario())
        assert all(r["ok"] for r in results)
        # One execution total; the rest either joined it in flight or hit
        # the memo after it resolved.
        assert counters["serve.executed"] == 1
        assert (
            counters.get("serve.coalesced", 0)
            + counters.get("serve.memo_hits", 0)
        ) == 5


class TestAdmissionAndShedding:
    def test_tenant_inflight_cap(self):
        async def scenario():
            config = ServiceConfig(max_inflight_per_tenant=1, workers=1)
            async with Service(config) as service:
                slow = service.call(
                    request_frame(
                        "a", "protocol.run",
                        {"scenario": "matmul_verify", "seed": 0},
                        tenant="same",
                    ),
                    tenant="same",
                )
                fast = service.call(
                    request_frame("b", "cache.stats", tenant="same"),
                    tenant="same",
                )
                first, second = await asyncio.gather(slow, fast)
            return response_of(first), response_of(second)

        first, second = run(scenario())
        outcomes = {first["id"]: first, second["id"]: second}
        assert outcomes["a"]["ok"] is True
        rejected = outcomes["b"]
        assert rejected["ok"] is False
        assert rejected["error"]["code"] == "client_limit"
        assert rejected["error"]["retryable"] is True
        assert rejected["error"]["backoff_ticks"] >= 1

    def test_queue_full_sheds_with_overloaded(self):
        async def scenario():
            config = ServiceConfig(max_queue=1, workers=1)
            async with Service(config) as service:
                calls = [
                    service.call(
                        request_frame(
                            f"q{i}", "protocol.run",
                            {"scenario": "equality", "seed": i},
                            tenant=f"t{i}",
                        ),
                        tenant=f"t{i}",
                    )
                    for i in range(6)
                ]
                raws = await asyncio.gather(*calls)
            return [response_of(r) for r in raws]

        responses = run(scenario())
        shed = [
            r for r in responses
            if not r["ok"] and r["error"]["code"] == "overloaded"
        ]
        served = [r for r in responses if r["ok"]]
        assert shed and served  # some shed, some served — and none hung
        for r in shed:
            assert r["error"]["retryable"] is True
            assert r["error"]["backoff_ticks"] >= 1

    def test_unstarted_service_reports_shutting_down(self):
        raw = run(
            Service().call(request_frame("x", "cache.stats"), tenant="t")
        )
        frame = response_of(raw)
        assert frame["error"]["code"] == "shutting_down"


class TestDeadlines:
    def test_deadline_expires_by_ticks_not_wall_clock(self):
        async def scenario():
            config = ServiceConfig(workers=1)
            async with Service(config) as service:
                calls = [
                    service.call(
                        request_frame(
                            f"d{i}", "protocol.run",
                            {"scenario": "equality", "seed": i},
                            tenant=f"t{i}",
                            deadline_ticks=1,
                        ),
                        tenant=f"t{i}",
                    )
                    for i in range(5)
                ]
                raws = await asyncio.gather(*calls)
            return [response_of(r) for r in raws]

        responses = run(scenario())
        expired = [
            r for r in responses
            if not r["ok"] and r["error"]["code"] == "deadline_exceeded"
        ]
        assert expired  # later arrivals waited > 1 tick behind the queue
        for r in expired:
            assert r["error"]["retryable"] is True

    def test_generous_deadline_never_expires(self):
        frame = request_frame(
            "ok-1", "exhaustive.cc", {"matrix": [[1]]}, deadline_ticks=1000
        )
        response = run(one_call(frame))
        assert response["ok"] is True


class TestServiceStats:
    def test_cache_stats_reports_counters_and_memo(self):
        async def scenario():
            with obs.scoped():
                async with Service() as service:
                    await service.call(
                        request_frame(
                            "w", "exhaustive.cc", {"matrix": [[1, 0], [0, 1]]}
                        ),
                        tenant="t",
                    )
                    raw = await service.call(
                        request_frame("s", "cache.stats"), tenant="t"
                    )
            return response_of(raw)

        frame = run(scenario())
        result = frame["result"]
        assert result["memo_entries"] == 1
        assert result["counters"]["serve.executed"] >= 1
        assert result["ticks"] == 1

    def test_internal_errors_are_contained(self, monkeypatch):
        import repro.serve.service as service_module

        def explode(params, config):
            raise RuntimeError("engine on fire")

        monkeypatch.setitem(
            service_module.PURE_HANDLERS, "exhaustive.cc", explode
        )
        response = run(
            one_call(request_frame("x", "exhaustive.cc", {"matrix": [[1]]}))
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "internal"
        assert response["error"]["retryable"] is False


class TestExecuteMethod:
    def test_gold_matches_served_answer(self):
        params = {"matrix": [[1, 0], [0, 1]]}
        gold = execute_method("exhaustive.cc", params, ServiceConfig())
        served = run(one_call(request_frame("g", "exhaustive.cc", params)))
        assert served["result"] == gold

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_queue=0)
        with pytest.raises(ValueError):
            ServiceConfig(workers=0)
        with pytest.raises(ValueError):
            ServiceConfig(default_deadline_ticks=0)


class TestCostEstimate:
    """``cost.estimate`` and the pre-execution pricing it shares with
    ``protocol.run``: predictions are the exact symbolic costs, and an
    over-budget run is rejected before any executor work happens."""

    def test_estimate_matches_the_symbolic_calculus(self):
        from repro.costs import scenario_shape
        from repro.serve.service import handle_cost_estimate

        result = handle_cost_estimate(
            {"scenario": "fingerprint", "seed": 3}, ServiceConfig()
        )
        shape = scenario_shape("fingerprint", 3)
        assert result["bits"] == shape.total_bits
        assert result["bits_agent0"] == shape.bits_from(0)
        assert result["bits_agent1"] == shape.bits_from(1)
        assert result["rounds"] == shape.rounds
        assert result["arq_wire_bits"] == shape.arq_wire_bits()
        assert result["arq_wire_bits"] > result["bits"]  # framing isn't free

    def test_estimate_prices_admission_correctly(self):
        from repro.serve.service import handle_cost_estimate

        priced = handle_cost_estimate(
            {"scenario": "equality", "seed": 0}, ServiceConfig()
        )
        need = max(priced["bits_agent0"], priced["bits_agent1"])
        exact = handle_cost_estimate(
            {"scenario": "equality", "seed": 0, "bit_budget": need},
            ServiceConfig(),
        )
        assert exact["admitted"] is True
        starved = handle_cost_estimate(
            {"scenario": "equality", "seed": 0, "bit_budget": need - 1},
            ServiceConfig(),
        )
        assert starved["admitted"] is False
        # The estimate's verdict is the run's reality, both ways.
        assert (
            handle_protocol_run(
                {"scenario": "equality", "seed": 0, "bit_budget": need},
                ServiceConfig(),
            )["bits"]
            > 0
        )
        with pytest.raises(HandlerError) as err:
            handle_protocol_run(
                {"scenario": "equality", "seed": 0, "bit_budget": need - 1},
                ServiceConfig(),
            )
        assert err.value.code == "budget_exceeded"

    def test_estimate_validates_like_protocol_run(self):
        from repro.serve.service import handle_cost_estimate

        with pytest.raises(HandlerError) as err:
            handle_cost_estimate({"scenario": "nope"}, ServiceConfig())
        assert err.value.code == "bad_request"
        with pytest.raises(HandlerError) as err:
            handle_cost_estimate(
                {"scenario": "equality", "bogus": 1}, ServiceConfig()
            )
        assert err.value.code == "bad_request"

    def test_over_budget_run_rejected_before_execution(self):
        # The pricer fires before the executor: the rejection increments
        # serve.priced_out and the message says so explicitly.
        with obs.scoped():
            with pytest.raises(HandlerError) as err:
                handle_protocol_run(
                    {"scenario": "equality", "seed": 0, "bit_budget": 2},
                    ServiceConfig(),
                )
            counters = obs.snapshot()["counters"]
        assert err.value.code == "budget_exceeded"
        assert "rejected before execution" in str(err.value)
        assert counters.get("serve.priced_out") == 1

    def test_estimate_served_over_the_wire(self):
        frame = request_frame("r1", "cost.estimate", {"scenario": "trivial"})
        response = run(one_call(frame))
        assert response["ok"], response
        assert response["result"]["admitted"] is True
        assert response["result"]["bits"] == response["result"][
            "bits_agent0"
        ] + response["result"]["bits_agent1"]
