"""Wire schema v1: framing, checksums, and the corruption property suite.

The Hypothesis half is the satellite gate: *any* byte-mangled or
truncated request must come back as a structured error response obeying
the pinned error schema v1 — never an exception escaping the service,
never a dropped (unanswered) request.
"""

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import wire
from repro.serve.service import Service
from repro.serve.wire import (
    ERROR_CODES,
    FrameError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    request_frame,
    validate_request,
    validate_response,
)


class TestFraming:
    def test_round_trip(self):
        frame = decode_frame(
            request_frame("r1", "cache.stats", {}, tenant="t").rstrip(b"\n")
        )
        request = validate_request(frame)
        assert request.id == "r1"
        assert request.method == "cache.stats"
        assert request.tenant == "t"
        assert request.deadline_ticks is None

    def test_encoding_is_canonical_and_crc_stamped(self):
        data = encode_frame({"v": 1, "id": "x", "ok": True, "result": {}})
        text = data.decode().rstrip("\n")
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )
        obj = json.loads(text)
        assert obj["crc"] == wire.frame_crc(obj)

    def test_single_bit_garble_fails_the_checksum(self):
        data = bytearray(request_frame("r1", "cache.stats"))
        data[len(data) // 2] ^= 0x10
        with pytest.raises(FrameError) as err:
            decode_frame(bytes(data))
        assert err.value.code == "bad_frame"

    def test_oversized_frame_rejected(self):
        with pytest.raises(FrameError):
            decode_frame(b"x" * (wire.MAX_FRAME_BYTES + 1))

    def test_unknown_fields_rejected(self):
        frame = decode_frame(
            encode_frame({
                "v": 1, "id": "r", "method": "cache.stats", "params": {},
                "tenant": "t", "extra": 1,
            })
        )
        with pytest.raises(FrameError) as err:
            validate_request(frame)
        assert err.value.code == "bad_request"
        assert err.value.frame_id == "r"

    def test_foreign_version_rejected(self):
        frame = decode_frame(
            encode_frame({"v": 2, "id": "r", "method": "cache.stats"})
        )
        with pytest.raises(FrameError) as err:
            validate_request(frame)
        assert err.value.code == "unsupported_version"


class TestErrorSchemaV1:
    def test_every_code_produces_a_valid_payload(self):
        for code in ERROR_CODES:
            frame = decode_frame(error_response("r", code, "msg").rstrip(b"\n"))
            checked = validate_response(frame)
            error = checked["error"]
            assert error["schema"] == 1
            assert error["code"] == code
            assert isinstance(error["retryable"], bool)
            assert ("backoff_ticks" in error) == error["retryable"]

    def test_retryable_default_follows_the_taxonomy(self):
        for code, (retryable, _meaning) in ERROR_CODES.items():
            frame = decode_frame(error_response(None, code, "m").rstrip(b"\n"))
            assert frame["error"]["retryable"] is retryable

    def test_unknown_code_refused_at_build_time(self):
        with pytest.raises(ValueError):
            error_response("r", "no_such_code", "m")

    def test_validate_response_pins_the_schema(self):
        bad = decode_frame(error_response("r", "overloaded", "m").rstrip(b"\n"))
        bad["error"]["schema"] = 2
        with pytest.raises(FrameError):
            validate_response(bad)
        missing_backoff = decode_frame(
            error_response("r", "overloaded", "m").rstrip(b"\n")
        )
        del missing_backoff["error"]["backoff_ticks"]
        with pytest.raises(FrameError):
            validate_response(missing_backoff)

    def test_ok_response_round_trip(self):
        frame = validate_response(
            decode_frame(ok_response("r", {"d": 2}).rstrip(b"\n"))
        )
        assert frame["ok"] is True and frame["result"] == {"d": 2}


def _call(data: bytes) -> bytes:
    """One service call on a fresh (unstarted) service — pure decode path.

    Corrupted frames never reach the queue, so an unstarted service
    exercises exactly the containment boundary the property gates on; a
    frame that *survives* decoding gets a structured ``shutting_down``.
    """
    return asyncio.run(Service().call(data, tenant="hypothesis"))


def _assert_structured(raw: bytes) -> dict:
    """The response must decode and validate under the pinned schema."""
    frame = validate_response(decode_frame(raw.rstrip(b"\n")))
    if not frame["ok"]:
        assert frame["error"]["code"] in ERROR_CODES
    return frame


class TestCorruptionProperties:
    @settings(max_examples=150, deadline=None)
    @given(st.binary(min_size=0, max_size=400))
    def test_arbitrary_bytes_get_a_structured_response(self, blob):
        _assert_structured(_call(blob))

    @settings(max_examples=150, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=7),
    )
    def test_single_bit_mangle_never_escapes(self, position, bit):
        frame = bytearray(
            request_frame("h-1", "exhaustive.cc", {"matrix": [[1, 0], [0, 1]]})
        )
        frame[position % len(frame)] ^= 1 << bit
        response = _assert_structured(_call(bytes(frame)))
        # A flipped bit cannot silently alter the request: either the
        # checksum catches it (bad_frame) or — vanishingly rarely — the
        # flip lands in ignorable whitespace semantics and still parses
        # identically.  It must never execute as a *different* request.
        if not response["ok"]:
            assert response["error"]["code"] in ERROR_CODES

    @settings(max_examples=150, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_truncation_never_escapes(self, cut):
        frame = request_frame("h-2", "protocol.run", {"scenario": "equality"})
        truncated = frame[: cut % len(frame)]
        response = _assert_structured(_call(truncated))
        assert response["ok"] is False  # a prefix is never a valid frame

    @settings(max_examples=100, deadline=None)
    @given(st.binary(min_size=1, max_size=40), st.integers(0, 10_000))
    def test_random_insertion_never_escapes(self, insert, where):
        frame = request_frame("h-3", "cache.stats")
        index = where % len(frame)
        _assert_structured(_call(frame[:index] + insert + frame[index:]))

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=200))
    def test_arbitrary_json_text_never_escapes(self, text):
        _assert_structured(_call(text.encode("utf-8", errors="replace")))
