"""Tests for the design-choice ablations."""

import pytest

from repro.exact.span import Subspace
from repro.singularity.ablations import (
    ablate_anchor_row,
    ablate_d_width,
    ablate_evenness,
    ablate_prime_bits,
    ablate_unit_diagonal,
    build_a_without_diagonal,
)
from repro.singularity.family import RestrictedFamily
from repro.util.rng import ReproducibleRNG


class TestUnitDiagonalAblation:
    def test_collision_exhibited(self, family_7_2, rng):
        c1, c2 = ablate_unit_diagonal(family_7_2, rng)
        assert c1 != c2
        a1 = build_a_without_diagonal(family_7_2, c1)
        a2 = build_a_without_diagonal(family_7_2, c2)
        assert Subspace.column_space(a1) == Subspace.column_space(a2)
        # And the restriction really prevents it:
        assert family_7_2.span_a(c1) != family_7_2.span_a(c2)


class TestAnchorAblation:
    def test_anchor_is_load_bearing(self, family_7_2):
        # The function raises if the anchor turns out not to matter.
        ablate_anchor_row(family_7_2)


class TestDWidthAblation:
    def test_paper_width_never_fails(self, family_7_2):
        rng = ReproducibleRNG(0)
        results = ablate_d_width(family_7_2, rng, trials=20)
        by_width = {r.width: r for r in results}
        assert by_width[family_7_2.d_width].failures == 0

    def test_width_one_fails_often(self, family_7_2):
        rng = ReproducibleRNG(1)
        results = ablate_d_width(family_7_2, rng, trials=30)
        by_width = {r.width: r for r in results}
        assert by_width[1].failure_rate > 0.2

    def test_failure_rate_monotone_ish(self, family_7_2):
        rng = ReproducibleRNG(2)
        results = ablate_d_width(family_7_2, rng, trials=30)
        # Narrower widths never fail less than the paper's width.
        paper = next(r for r in results if r.width == family_7_2.d_width)
        for r in results:
            assert r.failures >= paper.failures


class TestPrimeBitsAblation:
    def test_error_drops_with_prime_length(self):
        curve = ablate_prime_bits(3, 3, [2, 8, 16], trials=8)
        rates = dict(curve)
        assert rates[2] > rates[16]
        assert rates[16] == 0.0

    def test_tiny_primes_always_fooled(self):
        # det divisible by 2 and 3 — the only 2-bit primes.
        curve = ablate_prime_bits(3, 3, [2], trials=6)
        assert curve[0][1] == 1.0


class TestEvennessAblation:
    def test_even_succeeds_extreme_fails(self, family_7_2):
        rng = ReproducibleRNG(3)
        outcomes = dict(
            ablate_evenness(family_7_2, rng, [0.5, 0.0])
        )
        assert outcomes[0.5] is True
        assert outcomes[0.0] is False
