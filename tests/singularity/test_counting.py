"""Tests for the Section 3 bound calculators."""

import math
from fractions import Fraction

import pytest

from repro.singularity.counting import (
    QPower,
    TheoremBounds,
    randomized_upper_bound_bits,
    theorem_ratio,
    trivial_upper_bound_bits,
)
from repro.singularity.family import RestrictedFamily


class TestQPower:
    def test_log2(self):
        p = QPower(3, 7, Fraction(4))
        assert p.log2() == pytest.approx(4 * math.log2(3))

    def test_log_q(self):
        p = QPower(3, 7, Fraction(4), Fraction(2))
        assert p.log_q() == pytest.approx(4 + 2 * math.log(7) / math.log(3))

    def test_arithmetic(self):
        a = QPower(3, 7, Fraction(2))
        b = QPower(3, 7, Fraction(5), Fraction(1))
        assert (a * b).q_exp == 7
        assert (a / b).n_exp == -1

    def test_incompatible(self):
        with pytest.raises(ValueError):
            QPower(3, 7, Fraction(1)) * QPower(5, 7, Fraction(1))

    def test_exact_value(self):
        assert QPower(3, 7, Fraction(2), Fraction(1)).exact_value() == 63
        with pytest.raises(ValueError):
            QPower(3, 7, Fraction(1, 2)).exact_value()
        with pytest.raises(ValueError):
            QPower(3, 7, Fraction(-1)).exact_value()


class TestTheoremBounds:
    def test_rows_match_family_count(self, family_7_2):
        tb = TheoremBounds(family_7_2)
        assert tb.exact_rows() == family_7_2.count_c_instances()
        assert tb.rows().exact_value() == family_7_2.count_c_instances()

    def test_ones_bounds_ordering(self, family_7_2):
        tb = TheoremBounds(family_7_2)
        assert tb.ones_per_row_lower().log2() <= tb.ones_per_row_upper().log2()

    def test_ones_lower_matches_e_count(self, family_7_2):
        tb = TheoremBounds(family_7_2)
        assert tb.ones_per_row_lower().exact_value() == family_7_2.count_e_instances()

    def test_proper_variant_halves_exponents(self, family_7_2):
        pi0 = TheoremBounds(family_7_2, "pi0")
        proper = TheoremBounds(family_7_2, "proper")
        assert proper.rows().q_exp == pi0.rows().q_exp / 2
        assert proper.many_rows_column_cap().q_exp == pi0.many_rows_column_cap().q_exp / 2

    def test_variant_validation(self, family_7_2):
        with pytest.raises(ValueError):
            TheoremBounds(family_7_2, "bogus")

    def test_exact_rows_pi0_only(self, family_7_2):
        with pytest.raises(ValueError):
            TheoremBounds(family_7_2, "proper").exact_rows()

    def test_covered_fraction_negative_log(self):
        # For large n the max covered fraction must be << 1.
        tb = TheoremBounds(RestrictedFamily(101, 4))
        assert tb.max_covered_fraction_log2() < 0

    def test_yao_bound_grows_like_kn2(self):
        ratios = [theorem_ratio(n, 4) for n in (101, 201, 401)]
        # Ratio must be positive, bounded, and non-vanishing (Θ(k n²)).
        assert all(r > 0.01 for r in ratios)
        assert all(r < 1.0 for r in ratios)
        # And converging: successive differences shrink.
        assert abs(ratios[2] - ratios[1]) < abs(ratios[1] - ratios[0])

    def test_ratio_improves_with_k(self):
        assert theorem_ratio(201, 8) > theorem_ratio(201, 2)


class TestUpperBounds:
    def test_trivial_dominates_lower(self):
        for n, k in [(63, 2), (101, 4)]:
            tb = TheoremBounds(RestrictedFamily(n, k))
            assert trivial_upper_bound_bits(n, k) >= tb.yao_lower_bound_bits()

    def test_trivial_value(self):
        assert trivial_upper_bound_bits(7, 2) == 2 * 196 // 2 + 1

    def test_randomized_smaller_for_large_k(self):
        n = 63
        assert randomized_upper_bound_bits(n, 64) < trivial_upper_bound_bits(n, 64)

    def test_randomized_scaling_in_k_is_logarithmic(self):
        n = 63
        cost_k4 = randomized_upper_bound_bits(n, 4)
        cost_k256 = randomized_upper_bound_bits(n, 256)
        # 256 = 4^4 but cost grows only ~ log k: far less than 64x.
        assert cost_k256 < 8 * cost_k4
