"""Tests for the restricted family construction (Figures 1 and 3).

Every structural fact the lemma proofs rely on is asserted here against the
assembled matrices, so a layout bug cannot hide behind a passing lemma test.
"""

import pytest

from repro.exact.rank import rank
from repro.exact.vector import Vector
from repro.singularity.family import FamilyInstance, RestrictedFamily, ceil_log
from repro.util.rng import ReproducibleRNG


class TestCeilLog:
    def test_known(self):
        assert ceil_log(3, 7) == 2
        assert ceil_log(3, 9) == 2
        assert ceil_log(3, 10) == 3
        assert ceil_log(2, 1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ceil_log(1, 5)
        with pytest.raises(ValueError):
            ceil_log(3, 0)


class TestParameterValidation:
    def test_even_n_rejected(self):
        with pytest.raises(ValueError):
            RestrictedFamily(6, 2)

    def test_k1_rejected(self):
        with pytest.raises(ValueError):
            RestrictedFamily(7, 1)

    def test_too_small_n_rejected(self):
        with pytest.raises(ValueError):
            RestrictedFamily(3, 2)  # e_width would be negative

    def test_dimension_bookkeeping(self):
        fam = RestrictedFamily(9, 2)
        assert fam.q == 3
        assert fam.h == 4
        assert fam.d_width + fam.e_width == fam.n - 1
        assert fam.m_size == 18

    def test_minimal_viable_family(self):
        fam = RestrictedFamily(5, 3)  # q=7, log term 1, e_width 1
        assert fam.e_width == 1


class TestVectors:
    def test_u_is_geometric(self, family_7_2):
        u = family_7_2.u()
        q = family_7_2.q
        assert len(u) == 6
        assert u[-1] == 1
        assert u[-2] == -q
        assert u[0] == (-q) ** 5

    def test_w_matches_u_tail(self, family_7_2):
        # w must equal the last e_width components of u.
        u = family_7_2.u()
        w = family_7_2.w()
        assert list(w) == list(u)[-family_7_2.e_width :]

    def test_w_undefined_when_e_empty(self):
        fam = RestrictedFamily(5, 2)  # q=3, log=2, e_width=0
        assert fam.e_width == 0
        with pytest.raises(ValueError):
            fam.w()

    def test_projection_indices(self, family_7_2):
        assert family_7_2.projection_indices() == [3, 4, 5]


class TestBlockValidation:
    def test_c_shape_and_range(self, family_7_2, rng):
        good = family_7_2.random_c(rng)
        assert family_7_2.check_c(good) == good
        with pytest.raises(ValueError):
            family_7_2.check_c([[0] * 2] * 3)
        bad = [list(row) for row in good]
        bad[0][0] = family_7_2.q  # q itself is out of the free range
        with pytest.raises(ValueError):
            family_7_2.check_c(bad)

    def test_y_validation(self, family_7_2, rng):
        y = family_7_2.random_y(rng)
        assert family_7_2.check_y(y) == y
        with pytest.raises(ValueError):
            family_7_2.check_y(y[:-1])
        with pytest.raises(ValueError):
            family_7_2.check_y((family_7_2.q,) * (family_7_2.n - 1))


class TestAStructure:
    def test_unit_diagonal(self, family_7_2, rng):
        a = family_7_2.build_a(family_7_2.random_c(rng))
        for j in range(family_7_2.n - 1):
            assert a[j, j] == 1

    def test_superdiagonal_q_in_first_half(self, family_7_2, rng):
        a = family_7_2.build_a(family_7_2.random_c(rng))
        q, h = family_7_2.q, family_7_2.h
        for i in range(h - 1):
            assert a[i, i + 1] == q

    def test_c_block_placement(self, family_7_2, rng):
        c = family_7_2.random_c(rng)
        a = family_7_2.build_a(c)
        h = family_7_2.h
        for i in range(h):
            for j in range(h):
                assert a[i, h + j] == c[i][j]

    def test_anchor_row(self, family_7_2, rng):
        a = family_7_2.build_a(family_7_2.random_c(rng))
        n = family_7_2.n
        assert a[n - 1, 0] == 1
        assert all(a[n - 1, j] == 0 for j in range(1, n - 1))

    def test_middle_rows_are_unit_vectors(self, family_7_2, rng):
        # Rows h..n-2 carry only their diagonal 1 — the proof of Lemma 3.5
        # needs a_i·x = x_i there.
        a = family_7_2.build_a(family_7_2.random_c(rng))
        n, h = family_7_2.n, family_7_2.h
        for i in range(h, n - 1):
            for j in range(n - 1):
                assert a[i, j] == (1 if i == j else 0)

    def test_full_column_rank_for_every_c(self, family_7_2, rng):
        for _ in range(10):
            a = family_7_2.build_a(family_7_2.random_c(rng))
            assert rank(a) == family_7_2.n - 1

    def test_first_h_columns_project_to_zero(self, family_7_2, rng):
        a = family_7_2.build_a(family_7_2.random_c(rng))
        for j in range(family_7_2.h):
            for i in family_7_2.projection_indices():
                assert a[i, j] == 0


class TestBStructure:
    def test_block_placement(self, family_7_2, rng):
        d = family_7_2.random_d(rng)
        e = family_7_2.random_e(rng)
        y = family_7_2.random_y(rng)
        b = family_7_2.build_b(d, e, y)
        fam = family_7_2
        for i in range(fam.h):
            for j in range(fam.d_width):
                assert b[i, j] == d[i][j]
        offset = (fam.n - 1) - fam.e_width
        for i in range(fam.h):
            for j in range(fam.e_width):
                assert b[fam.h + i, offset + j] == e[i][j]
        for j in range(fam.n - 1):
            assert b[fam.n - 1, j] == y[j]

    def test_zeros_outside_blocks(self, family_7_2, rng):
        fam = family_7_2
        b = fam.build_b(fam.random_d(rng), fam.random_e(rng), fam.random_y(rng))
        # Top rows beyond D's width are zero.
        for i in range(fam.h):
            for j in range(fam.d_width, fam.n - 1):
                assert b[i, j] == 0
        # E rows before the E offset are zero.
        offset = (fam.n - 1) - fam.e_width
        for i in range(fam.h, fam.n - 1):
            for j in range(offset):
                assert b[i, j] == 0

    def test_free_entry_count_identity(self, family_7_2):
        # (n-1)^2/2 + (n-1) == (n^2-1)/2 — the paper's upper-bound count.
        fam = family_7_2
        free = len(fam.d_cells()) + len(fam.e_cells()) + len(fam.y_cells())
        assert free == (fam.n**2 - 1) // 2


class TestMStructure:
    def test_shape_and_entry_bounds(self, family_7_2, rng):
        inst = FamilyInstance.random(family_7_2, rng)
        m = inst.m_matrix()
        assert m.shape == (14, 14)
        limit = (1 << family_7_2.k) - 1
        assert all(
            0 <= m[i, j] <= limit for i in range(14) for j in range(14)
        )

    def test_column_zero_is_e1(self, family_7_2, rng):
        m = FamilyInstance.random(family_7_2, rng).m_matrix()
        col = m.col(0)
        assert col[0] == 1 and all(x == 0 for x in col[1:])

    def test_column_n_is_en(self, family_7_2, rng):
        fam = family_7_2
        m = FamilyInstance.random(fam, rng).m_matrix()
        col = m.col(fam.n)
        assert col[fam.n - 1] == 1
        assert sum(1 for x in col if x != 0) == 1

    def test_antidiagonal_pattern(self, family_7_2, rng):
        fam = family_7_2
        m = FamilyInstance.random(fam, rng).m_matrix()
        size = fam.m_size
        for i in range(fam.n):
            for j in range(fam.n, size):
                expected = 1 if i + j == size - 1 else (fam.q if i + j == size else 0)
                assert m[i, j] == expected

    def test_top_left_zero(self, family_7_2, rng):
        fam = family_7_2
        m = FamilyInstance.random(fam, rng).m_matrix()
        for i in range(fam.n):
            for j in range(1, fam.n):
                assert m[i, j] == 0

    def test_b_times_u_identity(self, family_7_2, rng):
        inst = FamilyInstance.random(family_7_2, rng)
        bu = inst.b_times_u()
        manual = inst.b_matrix().matvec(list(family_7_2.u()))
        assert bu == Vector(list(manual))

    def test_p_bu_equals_ew(self, family_7_2, rng):
        # Lemma 3.7's identity, structurally.
        inst = FamilyInstance.random(family_7_2, rng)
        bu = inst.b_times_u()
        assert bu.project(family_7_2.projection_indices()) == family_7_2.e_dot_w(
            inst.e
        )


class TestCountsAndCells:
    def test_count_c(self, family_7_2):
        assert family_7_2.count_c_instances() == 3**9

    def test_count_b(self, family_7_2):
        assert family_7_2.count_b_instances() == 3 ** ((49 - 1) // 2)

    def test_enumerate_c_matches_count(self):
        fam = RestrictedFamily(5, 2)  # h=2 -> 3^4 = 81 C's
        assert sum(1 for _ in fam.enumerate_c()) == fam.count_c_instances() == 81

    def test_free_cells_disjoint(self, family_7_2):
        cells = family_7_2.free_cells()
        assert len(cells) == len(set(cells))

    def test_free_bits_theta_kn2(self, family_7_2):
        # The free information is at least k·n²/4 (C + E + D + y cells).
        fam = family_7_2
        assert fam.free_bit_count() >= fam.k * fam.n**2 // 4

    def test_free_cells_are_free(self, family_7_2, rng):
        # Changing any free cell changes the assembled matrix.
        fam = family_7_2
        inst = FamilyInstance.random(fam, rng)
        m = inst.m_matrix()
        c2 = [list(r) for r in inst.c]
        c2[0][0] = (c2[0][0] + 1) % fam.q
        m2 = fam.build_m(fam.build_a(c2), inst.b_matrix())
        (i, j) = fam.c_cells()[0]
        assert m[i, j] != m2[i, j]

    def test_codec_dimensions(self, family_7_2):
        codec = family_7_2.codec()
        assert codec.rows == codec.cols == 14
        assert codec.k == 2
