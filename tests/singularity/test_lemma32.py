"""Tests for Lemma 3.2: M singular ⇔ B·u ∈ Span(A)."""

import pytest

from repro.exact.rank import is_singular
from repro.singularity.family import FamilyInstance, RestrictedFamily
from repro.singularity.lemma32 import (
    check_equivalence,
    dependence_witness,
    forced_coefficients,
    span_a_has_full_dimension,
    verify_witness,
)
from repro.singularity.lemma35 import complete_and_check_singular
from repro.util.rng import ReproducibleRNG


class TestPremise:
    def test_span_always_full_dimension(self, family_7_2, rng):
        for _ in range(15):
            assert span_a_has_full_dimension(family_7_2, family_7_2.random_c(rng))

    def test_holds_at_other_parameters(self):
        rng = ReproducibleRNG(1)
        for n, k in [(5, 3), (9, 2), (7, 4)]:
            fam = RestrictedFamily(n, k)
            assert span_a_has_full_dimension(fam, fam.random_c(rng))


class TestEquivalence:
    def test_on_random_instances(self, family_7_2, rng):
        # Random instances are almost always nonsingular; the equivalence
        # must hold in that direction too.
        for _ in range(20):
            assert check_equivalence(FamilyInstance.random(family_7_2, rng))

    def test_on_singular_instances(self, family_7_2, rng):
        # Singular members built by the completion: both sides True.
        for _ in range(5):
            c = family_7_2.random_c(rng)
            e = family_7_2.random_e(rng)
            inst = complete_and_check_singular(family_7_2, c, e)
            assert check_equivalence(inst)

    def test_at_minimal_parameters(self):
        rng = ReproducibleRNG(2)
        fam = RestrictedFamily(5, 3)
        for _ in range(10):
            assert check_equivalence(FamilyInstance.random(fam, rng))


class TestForcedCoefficients:
    def test_equal_u(self, family_7_2):
        assert forced_coefficients(family_7_2) == family_7_2.u()

    def test_equal_u_other_families(self):
        for n, k in [(5, 3), (9, 2), (11, 2)]:
            fam = RestrictedFamily(n, k)
            assert forced_coefficients(fam) == fam.u()


class TestWitness:
    def test_witness_on_singular(self, family_7_2, rng):
        c = family_7_2.random_c(rng)
        e = family_7_2.random_e(rng)
        inst = complete_and_check_singular(family_7_2, c, e)
        z = dependence_witness(inst)
        assert z is not None
        assert verify_witness(inst, z)

    def test_witness_none_on_nonsingular(self, family_7_2, rng):
        for _ in range(10):
            inst = FamilyInstance.random(family_7_2, rng)
            if not is_singular(inst.m_matrix()):
                assert dependence_witness(inst) is None
                break
        else:
            pytest.skip("no nonsingular sample drawn (astronomically unlikely)")

    def test_witness_carries_u(self, family_7_2, rng):
        c = family_7_2.random_c(rng)
        e = family_7_2.random_e(rng)
        inst = complete_and_check_singular(family_7_2, c, e)
        z = dependence_witness(inst)
        assert z is not None
        n = family_7_2.n
        u = family_7_2.u()
        assert list(z)[n + 1 :] == list(u)

    def test_zero_vector_is_not_a_witness(self, family_7_2, rng):
        from repro.exact.vector import Vector

        inst = FamilyInstance.random(family_7_2, rng)
        assert not verify_witness(inst, Vector([0] * family_7_2.m_size))
