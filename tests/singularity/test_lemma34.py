"""Tests for Lemma 3.4: distinct C ⇒ distinct Span(A)."""

import pytest

from repro.exact.span import Subspace
from repro.singularity.family import RestrictedFamily
from repro.singularity.lemma34 import (
    count_distinct_spans_sampled,
    distinctness_counterexample_without_restrictions,
    recover_c_from_span,
    span_dimension_is_full,
    spans_are_distinct,
    verify_recovery,
)
from repro.util.rng import ReproducibleRNG


class TestExhaustiveDistinctness:
    def test_all_c_instances_small_family(self):
        # n=5, k=2 has e_width 0 but C still exists: h=2, 81 instances —
        # fully enumerable distinctness check.
        fam = RestrictedFamily(5, 2)
        all_c = list(fam.enumerate_c())
        assert len(all_c) == 81
        assert spans_are_distinct(fam, all_c)
        assert span_dimension_is_full(fam, all_c)

    def test_sampled_distinctness_larger_family(self, family_7_2, rng):
        distinct, samples = count_distinct_spans_sampled(family_7_2, rng, 40)
        assert distinct <= samples


class TestRecovery:
    def test_roundtrip_random(self, family_7_2, rng):
        for _ in range(15):
            assert verify_recovery(family_7_2, family_7_2.random_c(rng))

    def test_roundtrip_exhaustive_small(self):
        fam = RestrictedFamily(5, 2)
        for c in fam.enumerate_c():
            assert verify_recovery(fam, c)

    def test_roundtrip_other_parameters(self):
        rng = ReproducibleRNG(0)
        for n, k in [(5, 3), (9, 2), (7, 3)]:
            fam = RestrictedFamily(n, k)
            for _ in range(5):
                assert verify_recovery(fam, fam.random_c(rng))

    def test_rejects_non_family_span(self, family_7_2):
        # A span missing the rigid structure must be refused.
        with pytest.raises(ValueError):
            recover_c_from_span(
                family_7_2, Subspace.full(family_7_2.n - 1)
            )  # wrong ambient

    def test_rejects_wrong_dimension(self, family_7_2):
        with pytest.raises(ValueError):
            recover_c_from_span(family_7_2, Subspace.zero(family_7_2.n))

    def test_rejects_generic_span(self, family_7_2, rng):
        # A random (n-1)-dim span of k-bit vectors is (almost surely) not of
        # family form: either no rigid-tail member or head out of range.
        from repro.exact.vector import Vector

        vectors = [
            Vector([rng.kbit_entry(4) for _ in range(family_7_2.n)])
            for _ in range(family_7_2.n - 1)
        ]
        span = Subspace.span(vectors)
        if span.dimension != family_7_2.n - 1:
            pytest.skip("degenerate draw")
        with pytest.raises(ValueError):
            recover_c_from_span(family_7_2, span)


class TestAblation:
    def test_unrestricted_blocks_can_collide(self, family_7_2):
        a1, a2 = distinctness_counterexample_without_restrictions(family_7_2)
        assert a1 != a2
        assert Subspace.column_space(a1) == Subspace.column_space(a2)

    def test_collision_raises_in_sampler(self, family_7_2, rng):
        # The sampler itself enforces the lemma: feed it a violation and it
        # must raise.  We simulate by monkey-checking the raise path via the
        # exhaustive checker on a constructed duplicate list.
        c = family_7_2.random_c(rng)
        assert not spans_are_distinct(family_7_2, [c, c])
