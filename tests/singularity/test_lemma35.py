"""Tests for Lemma 3.5: the constructive completion and claim (2a)."""

import pytest

from repro.exact.rank import is_singular
from repro.singularity.family import RestrictedFamily
from repro.singularity.lemma35 import (
    complete,
    complete_and_check_singular,
    count_singular_columns_exhaustive,
    count_singular_columns_sampled,
    distinct_e_give_distinct_columns,
    ones_lower_bound,
    ones_upper_bound,
)
from repro.util.rng import ReproducibleRNG


class TestCompletion:
    def test_random_instances_many_parameters(self):
        rng = ReproducibleRNG(0)
        for n, k in [(5, 3), (7, 2), (7, 3), (9, 2), (11, 2), (9, 4)]:
            fam = RestrictedFamily(n, k)
            for _ in range(5):
                c = fam.random_c(rng)
                e = fam.random_e(rng)
                inst = complete_and_check_singular(fam, c, e)
                assert is_singular(inst.m_matrix())

    def test_completion_preserves_c_and_e(self, family_7_2, rng):
        c = family_7_2.random_c(rng)
        e = family_7_2.random_e(rng)
        inst = complete_and_check_singular(family_7_2, c, e)
        assert inst.c == c
        assert inst.e == e

    def test_d_and_y_in_range(self, family_7_2, rng):
        c = family_7_2.random_c(rng)
        e = family_7_2.random_e(rng)
        completion = complete(family_7_2, c, e)
        q = family_7_2.q
        assert all(0 <= x <= q - 1 for row in completion.d for x in row)
        assert all(0 <= x <= q - 1 for x in completion.y)

    def test_witness_equation(self, family_7_2, rng):
        # A·x == B·u — the witness returned with the completion.
        from repro.exact.vector import Vector

        c = family_7_2.random_c(rng)
        e = family_7_2.random_e(rng)
        completion = complete(family_7_2, c, e)
        a = family_7_2.build_a(c)
        b = family_7_2.build_b(completion.d, e, completion.y)
        assert Vector(list(a.matvec(list(completion.x)))) == family_7_2.b_times_u(b)

    def test_deterministic(self, family_7_2, rng):
        c = family_7_2.random_c(rng)
        e = family_7_2.random_e(rng)
        first = complete(family_7_2, c, e)
        second = complete(family_7_2, c, e)
        assert first.d == second.d and first.y == second.y

    def test_empty_e_family(self):
        # n=5, k=2: e_width = 0 — completion must still work (all-zero tail).
        fam = RestrictedFamily(5, 2)
        rng = ReproducibleRNG(1)
        c = fam.random_c(rng)
        e = tuple(tuple() for _ in range(fam.h))
        inst = complete_and_check_singular(fam, c, e)
        assert is_singular(inst.m_matrix())

    def test_extreme_c_values(self, family_7_2):
        # All-zero and all-max C blocks.
        q, h = family_7_2.q, family_7_2.h
        zeros = tuple(tuple(0 for _ in range(h)) for _ in range(h))
        maxed = tuple(tuple(q - 1 for _ in range(h)) for _ in range(h))
        rng = ReproducibleRNG(2)
        e = family_7_2.random_e(rng)
        for c in (zeros, maxed):
            complete_and_check_singular(family_7_2, c, e)

    def test_extreme_e_values(self, family_7_2, rng):
        q, h, ew = family_7_2.q, family_7_2.h, family_7_2.e_width
        c = family_7_2.random_c(rng)
        for fill in (0, q - 1):
            e = tuple(tuple(fill for _ in range(ew)) for _ in range(h))
            complete_and_check_singular(family_7_2, c, e)


class TestClaim2aCounting:
    def test_bounds_ordering(self, family_7_2):
        assert 1 <= ones_lower_bound(family_7_2) <= ones_upper_bound(family_7_2)

    def test_lower_bound_value(self, family_7_2):
        # q^{h*e_width} = 3^6.
        assert ones_lower_bound(family_7_2) == 3**6

    def test_upper_bound_value(self, family_7_2):
        assert ones_upper_bound(family_7_2) == 3**24

    def test_distinct_e_distinct_columns(self, family_7_2, rng):
        c = family_7_2.random_c(rng)
        es = {family_7_2.random_e(rng) for _ in range(15)}
        assert distinct_e_give_distinct_columns(family_7_2, c, list(es))

    def test_sampled_count_runs(self, family_7_2, rng):
        c = family_7_2.random_c(rng)
        hits, samples = count_singular_columns_sampled(family_7_2, c, rng, 30)
        assert samples == 30
        assert 0 <= hits <= 30

    def test_exhaustive_guard(self, family_7_2, rng):
        # 3^24 B instances — must refuse.
        with pytest.raises(ValueError):
            count_singular_columns_exhaustive(
                family_7_2, family_7_2.random_c(rng), limit=1000
            )


class TestExactColumnCount:
    """The polynomial-time exact counter (left-null-vector convolution)."""

    def test_matches_brute_force_pinned(self):
        # The 143-second brute force over all 3^12 B instances was run once
        # (seed 0) and gave 2124; the fast counter must reproduce it.  Set
        # REPRO_SLOW=1 to re-run the brute force itself.
        import os

        from repro.singularity.lemma35 import (
            count_singular_columns_exact,
            count_singular_columns_exhaustive,
        )

        fam = RestrictedFamily(5, 2)
        rng = ReproducibleRNG(0)
        c = fam.random_c(rng)
        fast = count_singular_columns_exact(fam, c)
        assert fast == 2124
        if os.environ.get("REPRO_SLOW") == "1":  # pragma: no cover
            assert fast == count_singular_columns_exhaustive(fam, c)

    def test_z_criterion_agrees_with_rank(self):
        # The counter rests on: M singular <=> z·(B·u) = 0 with z the left
        # null vector of A.  Validate the criterion itself against exact
        # rank on random instances.
        from math import lcm

        from repro.exact.rank import is_singular
        from repro.exact.solve import nullspace

        fam = RestrictedFamily(7, 2)
        rng = ReproducibleRNG(4)
        c = fam.random_c(rng)
        a = fam.build_a(c)
        (z_frac,) = nullspace(a.transpose())
        denominator = lcm(*(f.denominator for f in z_frac))
        z = [int(f * denominator) for f in z_frac]
        for _ in range(8):
            d, e, y = fam.random_d(rng), fam.random_e(rng), fam.random_y(rng)
            bu = fam.b_times_u_from_blocks(d, e, y)
            criterion = sum(zi * int(v) for zi, v in zip(z, bu)) == 0
            m = fam.build_m(a, fam.build_b(d, e, y))
            assert criterion == is_singular(m)

    def test_within_paper_bounds_at_scale(self):
        from repro.singularity.lemma35 import count_singular_columns_exact

        fam = RestrictedFamily(7, 2)
        rng = ReproducibleRNG(1)
        for _ in range(3):
            c = fam.random_c(rng)
            count = count_singular_columns_exact(fam, c)
            assert ones_lower_bound(fam) <= count <= ones_upper_bound(fam)

    def test_known_value_n7(self):
        # Counted over all 3^24 B instances: exactly 3^16 are singular
        # (measured exponent 16 vs the n^2/2 = 24.5 ceiling — the paper's
        # O(n log_q n) correction, concretely).
        from repro.singularity.lemma35 import count_singular_columns_exact

        fam = RestrictedFamily(7, 2)
        rng = ReproducibleRNG(2)
        c = fam.random_c(rng)
        assert count_singular_columns_exact(fam, c) == 3**16

    def test_counts_agree_with_completions(self):
        # Every completed (C, E) is one of the counted columns, so the count
        # is at least the number of distinct E blocks (claim 2a's engine).
        from repro.singularity.lemma35 import count_singular_columns_exact

        fam = RestrictedFamily(5, 3)
        rng = ReproducibleRNG(3)
        c = fam.random_c(rng)
        count = count_singular_columns_exact(fam, c)
        assert count >= fam.count_e_instances()
