"""Tests for Lemmas 3.3, 3.6, 3.7: intersections, projections, column caps."""

import pytest

from repro.exact.span import Subspace
from repro.singularity.family import RestrictedFamily
from repro.singularity.lemma35 import complete
from repro.singularity.lemma36 import (
    count_ew_vectors_in_subspace,
    intersection_dimension,
    intersection_dimension_profile,
    lemma33_containment,
    lemma36_row_threshold_log2,
    lemma37_column_bound_log2,
    one_rectangle_column_cap,
    projected_intersection_dimension,
    verify_column_cap_on_rectangle,
)
from repro.util.rng import ReproducibleRNG


class TestLemma33:
    def test_single_row_rectangle(self, family_7_2, rng):
        c = family_7_2.random_c(rng)
        e = family_7_2.random_e(rng)
        comp = complete(family_7_2, c, e)
        assert lemma33_containment(family_7_2, [c], [(comp.d, e, comp.y)])

    def test_non_rectangle_detected(self, family_7_2, rng):
        # A column that is NOT singular against the row: premise fails.
        c = family_7_2.random_c(rng)
        d = family_7_2.random_d(rng)
        e = family_7_2.random_e(rng)
        y = family_7_2.random_y(rng)
        from repro.exact.rank import is_singular

        m = family_7_2.build_m(
            family_7_2.build_a(c), family_7_2.build_b(d, e, y)
        )
        if is_singular(m):
            pytest.skip("random draw was singular (essentially impossible)")
        assert not lemma33_containment(family_7_2, [c], [(d, e, y)])


class TestLemma36Intersections:
    def test_profile_monotone_decreasing(self, family_7_2, rng):
        cs = [family_7_2.random_c(rng) for _ in range(6)]
        profile = intersection_dimension_profile(family_7_2, cs)
        assert all(a >= b for a, b in zip(profile, profile[1:]))
        assert profile[0] == family_7_2.n - 1

    def test_intersection_contains_fixed_columns(self, family_7_2, rng):
        # The first h columns of A are C-independent, so they survive every
        # intersection: dim >= h always.
        cs = [family_7_2.random_c(rng) for _ in range(5)]
        assert intersection_dimension(family_7_2, cs) >= family_7_2.h

    def test_distinct_rows_drop_dimension(self, family_7_2, rng):
        c1 = family_7_2.random_c(rng)
        c2 = family_7_2.random_c(rng)
        if c1 == c2:
            pytest.skip("collision")
        pair_dim = intersection_dimension(family_7_2, [c1, c2])
        assert pair_dim < family_7_2.n - 1

    def test_threshold_formula(self, family_7_2):
        import math

        expected = (49 / 16) * math.log2(3) + 7 * math.log2(7)
        assert lemma36_row_threshold_log2(family_7_2) == pytest.approx(expected)


class TestLemma37Projection:
    def test_projection_kills_h_dimensions(self, family_7_2, rng):
        cs = [family_7_2.random_c(rng) for _ in range(3)]
        full = intersection_dimension(family_7_2, cs)
        projected = projected_intersection_dimension(family_7_2, cs)
        assert projected <= full - family_7_2.h

    def test_single_row_projection(self, family_7_2, rng):
        c = family_7_2.random_c(rng)
        # Span(A) has dim n-1 = 6; projection to h=3 coords has dim <= 3.
        assert projected_intersection_dimension(family_7_2, [c]) <= family_7_2.h

    def test_column_bound_formula(self, family_7_2):
        import math

        assert lemma37_column_bound_log2(family_7_2) == pytest.approx(
            (3 * 49 / 8) * math.log2(3)
        )

    def test_ew_count_in_full_projected_space(self, family_7_2):
        # All q^{h*e_width} vectors E·w lie in the full ambient Q^h.
        full = Subspace.full(family_7_2.h)
        count = count_ew_vectors_in_subspace(family_7_2, full)
        assert count == family_7_2.count_e_instances()

    def test_ew_count_in_zero_space(self, family_7_2):
        zero = Subspace.zero(family_7_2.h)
        # Only the all-zero E maps to the zero vector (negabase injectivity).
        assert count_ew_vectors_in_subspace(family_7_2, zero) == 1

    def test_ew_count_monotone_in_dimension(self, family_7_2):
        from repro.exact.vector import Vector

        line = Subspace.span([Vector([1, 0, 0])])
        plane = Subspace.span([Vector([1, 0, 0]), Vector([0, 1, 0])])
        count_line = count_ew_vectors_in_subspace(family_7_2, line)
        count_plane = count_ew_vectors_in_subspace(family_7_2, plane)
        assert count_line <= count_plane

    def test_ambient_check(self, family_7_2):
        with pytest.raises(ValueError):
            count_ew_vectors_in_subspace(family_7_2, Subspace.full(5))

    def test_empty_e_guard(self):
        fam = RestrictedFamily(5, 2)
        with pytest.raises(ValueError):
            count_ew_vectors_in_subspace(fam, Subspace.full(fam.h))


class TestColumnCap:
    def test_cap_for_explicit_rows(self, family_7_2, rng):
        cs = [family_7_2.random_c(rng) for _ in range(3)]
        cap = one_rectangle_column_cap(family_7_2, cs)
        assert cap >= 1
        # cap = (q^e_width)^projected_dim
        projected = projected_intersection_dimension(family_7_2, cs)
        assert cap == (family_7_2.q ** family_7_2.e_width) ** projected

    def test_mechanism_on_rectangles(self, family_7_2, rng):
        cs = [family_7_2.random_c(rng) for _ in range(2)]
        es = [family_7_2.random_e(rng) for _ in range(5)]
        assert verify_column_cap_on_rectangle(family_7_2, cs, es)

    def test_cap_exact_against_enumeration(self, family_7_2, rng):
        # For a single row, the E·w vectors inside p(Span(A)) are at most
        # the cap (usually far fewer).
        c = family_7_2.random_c(rng)
        span = family_7_2.span_a(c)
        projected = span.project(family_7_2.projection_indices())
        count = count_ew_vectors_in_subspace(family_7_2, projected)
        cap = one_rectangle_column_cap(family_7_2, [c])
        assert count <= cap
