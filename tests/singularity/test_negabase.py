"""Tests for negative-base representations (the completion's engine)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.singularity.negabase import (
    fits_in_negabase,
    negabase_digits,
    negabase_range,
    negabase_value,
)


class TestRoundTrip:
    def test_known_values(self):
        assert negabase_value(negabase_digits(0, 3), 3) == 0
        assert negabase_value(negabase_digits(100, 3), 3) == 100
        assert negabase_value(negabase_digits(-100, 3), 3) == -100

    def test_digits_in_range(self):
        for value in range(-50, 51):
            digits = negabase_digits(value, 3)
            assert all(0 <= d <= 2 for d in digits)

    def test_uniqueness_by_exhaustion(self):
        # Every integer in the 4-digit coverage interval has exactly one
        # 4-digit representation.
        q, width = 3, 4
        seen = {}
        import itertools

        for digits in itertools.product(range(q), repeat=width):
            value = negabase_value(list(digits), q)
            assert value not in seen, "duplicate representation"
            seen[value] = digits
        lo, hi = negabase_range(q, width)
        assert set(seen) == set(range(lo, hi + 1))

    def test_width_padding(self):
        digits = negabase_digits(5, 3, width=6)
        assert len(digits) == 6
        assert negabase_value(digits, 3) == 5

    def test_width_overflow_returns_none(self):
        lo, hi = negabase_range(3, 2)
        assert negabase_digits(hi + 1, 3, width=2) is None
        assert negabase_digits(lo - 1, 3, width=2) is None

    def test_rejects_small_base(self):
        with pytest.raises(ValueError):
            negabase_digits(5, 1)


class TestRange:
    def test_zero_width(self):
        assert negabase_range(3, 0) == (0, 0)

    def test_known_ranges(self):
        # width 1: digits {0,1,2} -> [0, 2]; width 2: -6..2; width 3: -6..20.
        assert negabase_range(3, 1) == (0, 2)
        assert negabase_range(3, 2) == (-6, 2)
        assert negabase_range(3, 3) == (-6, 20)

    def test_fits_predicate(self):
        assert fits_in_negabase(2, 3, 1)
        assert not fits_in_negabase(3, 3, 1)
        assert fits_in_negabase(-6, 3, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            negabase_range(1, 3)
        with pytest.raises(ValueError):
            negabase_range(3, -1)


@settings(max_examples=150, deadline=None)
@given(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.integers(min_value=2, max_value=16),
)
def test_roundtrip_property(value, q):
    digits = negabase_digits(value, q)
    assert all(0 <= d < q for d in digits)
    assert negabase_value(digits, q) == value


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=2, max_value=9),
    st.integers(min_value=0, max_value=8),
)
def test_range_is_exactly_representable_interval(q, width):
    lo, hi = negabase_range(q, width)
    # Endpoints representable, just-outside not.
    if width:
        assert negabase_digits(lo, q, width) is not None
        assert negabase_digits(hi, q, width) is not None
    assert negabase_digits(hi + 1, q, width) is None
    assert negabase_digits(lo - 1, q, width) is None
