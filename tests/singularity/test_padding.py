"""Tests for the m×m → 2n×2n padding reduction."""

import pytest

from repro.exact.matrix import Matrix
from repro.singularity.padding import (
    has_identity_tail,
    pad,
    padding_parameters,
    padding_preserves_singularity,
    padding_rank_identity,
    unpad,
)
from repro.util.rng import ReproducibleRNG


class TestParameters:
    def test_n_always_odd(self):
        for m in range(2, 40):
            n, d = padding_parameters(m)
            assert n % 2 == 1
            assert 2 * n + d == m
            assert 0 <= d <= 3

    def test_known_values(self):
        assert padding_parameters(14) == (7, 0)
        assert padding_parameters(15) == (7, 1)
        assert padding_parameters(16) == (7, 2)
        assert padding_parameters(17) == (7, 3)
        assert padding_parameters(18) == (9, 0)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            padding_parameters(1)


class TestPadUnpad:
    def test_roundtrip(self):
        rng = ReproducibleRNG(0)
        for m_size in (15, 16, 17):
            n, d = padding_parameters(m_size)
            block = Matrix.random_kbit(rng, 2 * n, 2 * n, 2)
            padded = pad(block, m_size)
            assert padded.shape == (m_size, m_size)
            assert has_identity_tail(padded, d)
            assert unpad(padded) == block

    def test_d_zero_identity_op(self):
        rng = ReproducibleRNG(1)
        block = Matrix.random_kbit(rng, 14, 14, 2)
        assert pad(block, 14) == block

    def test_pad_shape_check(self):
        with pytest.raises(ValueError):
            pad(Matrix.identity(4), 15)

    def test_unpad_rejects_broken_tail(self):
        rng = ReproducibleRNG(2)
        block = Matrix.random_kbit(rng, 14, 14, 2)
        padded = pad(block, 15)
        corrupted = padded.with_entry(14, 14, 0)
        with pytest.raises(ValueError):
            unpad(corrupted)

    def test_unpad_rejects_non_square(self):
        with pytest.raises(ValueError):
            unpad(Matrix([[1, 2]]))


class TestReductionCorrectness:
    def test_preserves_singularity_random(self):
        rng = ReproducibleRNG(3)
        for m_size in (15, 16, 17):
            n, _ = padding_parameters(m_size)
            for _ in range(5):
                block = Matrix.random_kbit(rng, 2 * n, 2 * n, 2)
                assert padding_preserves_singularity(block, m_size)

    def test_preserves_singularity_on_singular_blocks(self):
        rng = ReproducibleRNG(4)
        n, _ = padding_parameters(15)
        block = Matrix.random_kbit(rng, 2 * n, 2 * n, 2)
        # Force singularity: duplicate a column.
        cols = list(range(2 * n))
        cols[1] = 0
        singular = block.permute_cols(list(range(2 * n))).submatrix(
            range(2 * n), cols
        )
        assert padding_preserves_singularity(singular, 15)

    def test_rank_identity(self):
        rng = ReproducibleRNG(5)
        for m_size in (15, 16, 17):
            n, _ = padding_parameters(m_size)
            block = Matrix.random_kbit(rng, 2 * n, 2 * n, 1)
            assert padding_rank_identity(block, m_size)

    def test_identity_tail_check(self):
        assert has_identity_tail(Matrix.identity(5), 2)
        assert has_identity_tail(Matrix.identity(5), 0)
        broken = Matrix.identity(5).with_entry(0, 4, 1)
        assert not has_identity_tail(broken, 2)
