"""Tests for Definition 3.8 (proper partitions) and Lemma 3.9."""

import pytest

from repro.comm.partition import (
    Partition,
    checkerboard,
    interleaved,
    pi_zero,
    random_even_partition,
    row_split,
)
from repro.singularity.proper import (
    ProperizationError,
    is_proper,
    make_proper,
    required_c_bits,
    required_e_row_bits,
)
from repro.util.rng import ReproducibleRNG


class TestThresholds:
    def test_c_threshold(self, family_7_2):
        assert required_c_bits(family_7_2) == 2 * 36 // 8

    def test_e_threshold(self, family_7_2):
        assert required_e_row_bits(family_7_2) == (2 * 2 + 1) // 2


class TestIsProper:
    def test_pi_zero_is_proper(self, family_7_2):
        # π₀ gives agent 0 the left columns: C sits in the left half (cols
        # h+1..n-1 < n), E in the right half — the canonical proper split.
        assert is_proper(family_7_2, pi_zero(family_7_2.codec()))

    def test_swapped_pi_zero_not_proper(self, family_7_2):
        # With the agents renamed, agent 0 holds the RIGHT half: it reads
        # none of C, so the C threshold fails.
        assert not is_proper(family_7_2, pi_zero(family_7_2.codec()).swapped())

    def test_all_to_agent1_not_proper(self, family_7_2):
        codec = family_7_2.codec()
        p = Partition(codec.total_bits, frozenset())
        assert not is_proper(family_7_2, p)

    def test_all_to_agent0_fails_e_rows(self, family_7_2):
        codec = family_7_2.codec()
        p = Partition(codec.total_bits, frozenset(range(codec.total_bits)))
        assert not is_proper(family_7_2, p)


class TestMakeProper:
    def test_pi_zero_trivial(self, family_7_2):
        p = pi_zero(family_7_2.codec())
        cert = make_proper(family_7_2, p)
        assert cert.verify(p)

    def test_interleaved(self, family_7_2):
        p = interleaved(family_7_2.codec())
        cert = make_proper(family_7_2, p)
        assert cert.verify(p)

    def test_checkerboard(self, family_7_2):
        p = checkerboard(family_7_2.codec())
        cert = make_proper(family_7_2, p)
        assert cert.verify(p)

    def test_row_split(self, family_7_2):
        p = row_split(family_7_2.codec())
        cert = make_proper(family_7_2, p)
        assert cert.verify(p)

    def test_random_even_partitions(self, family_7_2):
        rng = ReproducibleRNG(0)
        codec = family_7_2.codec()
        for trial in range(8):
            p = random_even_partition(rng, codec)
            cert = make_proper(family_7_2, p)
            assert cert.verify(p)

    def test_swapped_partitions_normalize(self, family_7_2):
        # Renaming agents is one of the lemma's moves but not mandatory —
        # column permutation alone can cast the swapped π₀ properly.
        p = pi_zero(family_7_2.codec()).swapped()
        cert = make_proper(family_7_2, p)
        assert cert.verify(p)

    def test_certificate_weights_meet_thresholds(self, family_7_2):
        rng = ReproducibleRNG(1)
        p = random_even_partition(rng, family_7_2.codec())
        cert = make_proper(family_7_2, p)
        assert cert.c_weight >= required_c_bits(family_7_2)
        for w in cert.e_row_weights:
            assert w >= required_e_row_bits(family_7_2)

    def test_permutations_are_permutations(self, family_7_2):
        rng = ReproducibleRNG(2)
        p = random_even_partition(rng, family_7_2.codec())
        cert = make_proper(family_7_2, p)
        size = family_7_2.m_size
        assert sorted(cert.row_perm) == list(range(size))
        assert sorted(cert.col_perm) == list(range(size))

    def test_grossly_uneven_partition_fails(self, family_7_2):
        # Agent 0 reads nothing: no casting can dominate C.  (Lemma 3.9 only
        # claims even partitions — this guards the claim's hypothesis.)
        codec = family_7_2.codec()
        p = Partition(codec.total_bits, frozenset())
        with pytest.raises(ProperizationError):
            make_proper(family_7_2, p, restarts=10)

    def test_other_family_parameters(self):
        fam_key = [(5, 3), (9, 2)]
        rng = ReproducibleRNG(3)
        from repro.singularity.family import RestrictedFamily

        for n, k in fam_key:
            fam = RestrictedFamily(n, k)
            p = random_even_partition(rng, fam.codec())
            cert = make_proper(fam, p)
            assert cert.verify(p)
