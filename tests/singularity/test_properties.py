"""Property-based tests on the restricted family and its lemma chain.

Hypothesis drives the free blocks over their full ranges; the invariants are
exactly the paper's, so any shrunk counterexample here would be a finding
about the paper (or about our reading of its figures).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exact.rank import column_space_contains, is_singular, rank
from repro.singularity.family import RestrictedFamily
from repro.singularity.lemma34 import recover_c_from_span
from repro.singularity.lemma35 import complete

FAMILY = RestrictedFamily(7, 2)
SMALL = RestrictedFamily(5, 3)


def blocks(family, rows, cols):
    return st.lists(
        st.lists(
            st.integers(min_value=0, max_value=family.q - 1),
            min_size=cols,
            max_size=cols,
        ),
        min_size=rows,
        max_size=rows,
    ).map(lambda b: tuple(tuple(r) for r in b))


def c_blocks(family):
    return blocks(family, family.h, family.h)


def e_blocks(family):
    return blocks(family, family.h, family.e_width)


def d_blocks(family):
    return blocks(family, family.h, family.d_width)


def y_rows(family):
    return st.lists(
        st.integers(min_value=0, max_value=family.q - 1),
        min_size=family.n - 1,
        max_size=family.n - 1,
    ).map(tuple)


@settings(max_examples=25, deadline=None)
@given(c_blocks(FAMILY))
def test_span_a_always_full_rank(c):
    assert rank(FAMILY.build_a(c)) == FAMILY.n - 1


@settings(max_examples=25, deadline=None)
@given(c_blocks(FAMILY))
def test_c_recovery_roundtrip(c):
    assert recover_c_from_span(FAMILY, FAMILY.span_a(c)) == c


@settings(max_examples=20, deadline=None)
@given(c_blocks(FAMILY), d_blocks(FAMILY), e_blocks(FAMILY), y_rows(FAMILY))
def test_lemma32_equivalence(c, d, e, y):
    a = FAMILY.build_a(c)
    b = FAMILY.build_b(d, e, y)
    m = FAMILY.build_m(a, b)
    assert is_singular(m) == column_space_contains(a, FAMILY.b_times_u(b))


@settings(max_examples=20, deadline=None)
@given(c_blocks(FAMILY), e_blocks(FAMILY))
def test_completion_always_singular(c, e):
    completion = complete(FAMILY, c, e)
    m = FAMILY.build_m(
        FAMILY.build_a(c), FAMILY.build_b(completion.d, e, completion.y)
    )
    assert is_singular(m)


@settings(max_examples=20, deadline=None)
@given(c_blocks(SMALL), e_blocks(SMALL))
def test_completion_small_family(c, e):
    completion = complete(SMALL, c, e)
    m = SMALL.build_m(
        SMALL.build_a(c), SMALL.build_b(completion.d, e, completion.y)
    )
    assert is_singular(m)


@settings(max_examples=20, deadline=None)
@given(c_blocks(FAMILY), e_blocks(FAMILY))
def test_projection_identity(c, e):
    # p(B·u) = E·w for every block choice (D and y don't affect the middle).
    rngless_d = tuple(tuple(0 for _ in range(FAMILY.d_width)) for _ in range(FAMILY.h))
    zero_y = tuple(0 for _ in range(FAMILY.n - 1))
    bu = FAMILY.b_times_u_from_blocks(rngless_d, e, zero_y)
    assert bu.project(FAMILY.projection_indices()) == FAMILY.e_dot_w(e)


@settings(max_examples=15, deadline=None)
@given(c_blocks(FAMILY), c_blocks(FAMILY))
def test_lemma34_pairwise(c1, c2):
    if c1 == c2:
        assert FAMILY.span_a(c1) == FAMILY.span_a(c2)
    else:
        assert FAMILY.span_a(c1) != FAMILY.span_a(c2)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=40))
def test_padding_preserves_singularity_property(m_size):
    from repro.exact.matrix import Matrix
    from repro.singularity.padding import (
        pad,
        padding_parameters,
    )
    from repro.util.rng import ReproducibleRNG

    n, d = padding_parameters(m_size)
    rng = ReproducibleRNG(m_size)
    block = Matrix.random_kbit(rng, 2 * n, 2 * n, 1)
    assert is_singular(block) == is_singular(pad(block, m_size))
