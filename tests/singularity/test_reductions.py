"""Tests for the Corollary 1.2/1.3 reductions and the product-rank bridge."""

import pytest

from repro.exact.matrix import Matrix
from repro.exact.rank import is_singular, rank
from repro.singularity.family import FamilyInstance
from repro.singularity.lemma35 import complete_and_check_singular
from repro.singularity.reductions import (
    all_corollary_12_reductions,
    corollary_13_holds,
    corollary_13_instance,
    corollary_13_requires_family,
    determinant_reduction,
    half_rank_instance,
    lup_reduction,
    product_equals_via_rank,
    product_verification_matrix,
    qr_reduction,
    rank_identity_holds,
    rank_reduction,
    svd_reduction,
)
from repro.util.rng import ReproducibleRNG


class TestCorollary12:
    def test_all_reductions_on_random(self, rng):
        reductions = all_corollary_12_reductions()
        assert len(reductions) == 5
        for _ in range(10):
            m = Matrix.random_kbit(rng, 5, 5, 2)
            for red in reductions:
                assert red.agrees_with_ground_truth(m), red.name

    def test_all_reductions_on_singular(self, family_7_2, rng):
        c = family_7_2.random_c(rng)
        e = family_7_2.random_e(rng)
        inst = complete_and_check_singular(family_7_2, c, e)
        m = inst.m_matrix()
        for red in all_corollary_12_reductions():
            assert red.decide_singularity(m) is True, red.name

    def test_reduction_names(self):
        names = {red.name for red in all_corollary_12_reductions()}
        assert names == {
            "corollary-1.2a-determinant",
            "corollary-1.2b-rank",
            "corollary-1.2c-qr-structure",
            "corollary-1.2d-svd-structure",
            "corollary-1.2e-lup-structure",
        }

    def test_structure_only_extraction(self, rng):
        # The QR/SVD/LUP extractors must work from structure sets alone.
        singular = Matrix([[1, 2, 0], [2, 4, 0], [0, 0, 1]])
        for red in (qr_reduction(), svd_reduction(), lup_reduction()):
            assert red.decide_singularity(singular) is True
        nonsingular = Matrix.identity(3)
        for red in (qr_reduction(), svd_reduction(), lup_reduction()):
            assert red.decide_singularity(nonsingular) is False

    def test_det_and_rank_reductions(self):
        m = Matrix([[2, 0], [0, 3]])
        assert determinant_reduction().decide_singularity(m) is False
        assert rank_reduction().decide_singularity(m) is False


class TestCorollary13:
    def test_holds_on_family_instances(self, family_7_2, rng):
        for _ in range(10):
            inst = FamilyInstance.random(family_7_2, rng)
            assert corollary_13_holds(inst)

    def test_holds_on_singular_family_instances(self, family_7_2, rng):
        c = family_7_2.random_c(rng)
        e = family_7_2.random_e(rng)
        inst = complete_and_check_singular(family_7_2, c, e)
        assert corollary_13_holds(inst)
        # On a singular instance: the system must be solvable.
        reduced = corollary_13_instance(inst.m_matrix())
        from repro.exact.solve import is_solvable

        assert is_solvable(reduced.a_prime, reduced.b)

    def test_instance_transport(self, family_7_2, rng):
        inst = FamilyInstance.random(family_7_2, rng)
        m = inst.m_matrix()
        reduced = corollary_13_instance(m)
        assert list(reduced.b) == list(m.col(0))
        assert all(reduced.a_prime[i, 0] == 0 for i in range(m.num_rows))

    def test_ablation_outside_family(self, family_7_2):
        m, singular, solvable = corollary_13_requires_family(family_7_2)
        # Outside the family the biconditional direction can fail:
        # singular matrix whose system is NOT solvable.
        assert singular and not solvable


class TestProductRankBridge:
    def test_equality_detected(self, rng):
        a = Matrix.random_kbit(rng, 4, 4, 2)
        b = Matrix.random_kbit(rng, 4, 4, 2)
        assert product_equals_via_rank(a, b, a @ b)

    def test_inequality_detected(self, rng):
        a = Matrix.random_kbit(rng, 4, 4, 2)
        b = Matrix.random_kbit(rng, 4, 4, 2)
        c = (a @ b).with_entry(2, 3, (a @ b)[2, 3] + 1)
        assert not product_equals_via_rank(a, b, c)

    def test_rank_identity(self, rng):
        for _ in range(10):
            a = Matrix.random_kbit(rng, 3, 3, 2)
            b = Matrix.random_kbit(rng, 3, 3, 2)
            c = Matrix.random_kbit(rng, 3, 3, 4)
            assert rank_identity_holds(a, b, c)

    def test_block_structure(self, rng):
        a = Matrix.random_kbit(rng, 3, 3, 2)
        b = Matrix.random_kbit(rng, 3, 3, 2)
        c = Matrix.random_kbit(rng, 3, 3, 2)
        m = product_verification_matrix(a, b, c)
        assert m.shape == (6, 6)
        assert m.slice(0, 3, 0, 3) == Matrix.identity(3)
        assert m.slice(0, 3, 3, 6) == b
        assert m.slice(3, 6, 0, 3) == a
        assert m.slice(3, 6, 3, 6) == c

    def test_rank_range(self, rng):
        # rank always in [n, 2n].
        a = Matrix.random_kbit(rng, 3, 3, 2)
        b = Matrix.random_kbit(rng, 3, 3, 2)
        c = Matrix.random_kbit(rng, 3, 3, 2)
        r = rank(half_rank_instance(a, b, c))
        assert 3 <= r <= 6

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            product_verification_matrix(
                Matrix.identity(2), Matrix.identity(3), Matrix.identity(3)
            )
