"""Tests for the vector space span problem and its singularity bridge."""

import pytest

from repro.exact.matrix import Matrix
from repro.exact.span import Subspace
from repro.exact.vector import Vector
from repro.singularity.span_problem import (
    SpanInstance,
    enumerate_l,
    kbit_span_universe_log2,
    lovasz_saks_bound_bits,
    matrix_to_span_instance,
    span_instance_agrees_with_singularity,
    spans_union,
)
from repro.util.rng import ReproducibleRNG


class TestDecision:
    def test_complementary_spans(self):
        v1 = Subspace.span([Vector([1, 0])])
        v2 = Subspace.span([Vector([0, 1])])
        assert spans_union(v1, v2)

    def test_same_line_does_not_span(self):
        v = Subspace.span([Vector([1, 1])])
        assert not spans_union(v, v)

    def test_overlapping_planes(self):
        v1 = Subspace.span([Vector([1, 0, 0]), Vector([0, 1, 0])])
        v2 = Subspace.span([Vector([0, 1, 0]), Vector([0, 0, 1])])
        assert spans_union(v1, v2)

    def test_ambient_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SpanInstance(Subspace.full(2), Subspace.full(3))


class TestLatticeEnumeration:
    def test_basis_vectors(self):
        # X = {e1, e2}: L = {0, span e1, span e2, Q^2} -> 4 subspaces.
        xs = [Vector([1, 0]), Vector([0, 1])]
        assert len(enumerate_l(xs)) == 4
        assert lovasz_saks_bound_bits(xs) == pytest.approx(2.0)

    def test_dependent_vectors_collapse(self):
        xs = [Vector([1, 0]), Vector([2, 0])]
        # Subsets: {}, {x1}, {x2}, {x1,x2} -> spans: 0 and the line -> 2.
        assert len(enumerate_l(xs)) == 2

    def test_guards(self):
        with pytest.raises(ValueError):
            enumerate_l([])
        with pytest.raises(ValueError):
            enumerate_l([Vector([1])] * 17)


class TestSingularityBridge:
    def test_agrees_on_random(self, rng):
        for _ in range(15):
            m = Matrix.random_kbit(rng, 4, 4, 2)
            assert span_instance_agrees_with_singularity(m)

    def test_agrees_on_singular(self):
        m = Matrix([[1, 1, 0, 0], [2, 2, 0, 0], [0, 0, 1, 0], [0, 0, 0, 1]])
        assert span_instance_agrees_with_singularity(m)

    def test_instance_halves(self, rng):
        m = Matrix.random_kbit(rng, 4, 4, 2)
        inst = matrix_to_span_instance(m)
        assert inst.v1.ambient == 4
        assert inst.v2.ambient == 4

    def test_rejects_odd_size(self):
        with pytest.raises(ValueError):
            matrix_to_span_instance(Matrix.identity(3))

    def test_universe_size(self):
        assert kbit_span_universe_log2(7, 2) == 14.0
