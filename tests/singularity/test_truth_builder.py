"""Tests for the restricted-truth-matrix pipeline."""

import pytest

from repro.exact.rank import is_singular
from repro.singularity.family import RestrictedFamily
from repro.singularity.truth_builder import (
    build_and_measure,
    completed_columns,
    random_columns,
    restricted_truth_matrix,
    sample_distinct_rows,
)
from repro.util.rng import ReproducibleRNG


@pytest.fixture
def fam53():
    return RestrictedFamily(5, 3)


class TestSampling:
    def test_rows_distinct(self, fam53):
        rng = ReproducibleRNG(0)
        rows = sample_distinct_rows(fam53, rng, 25)
        assert len(set(rows)) == 25

    def test_row_count_guard(self):
        fam = RestrictedFamily(5, 2)  # 81 C instances
        rng = ReproducibleRNG(1)
        with pytest.raises(ValueError):
            sample_distinct_rows(fam, rng, 100)

    def test_completed_columns_are_singular_on_their_row(self, fam53):
        rng = ReproducibleRNG(2)
        rows = sample_distinct_rows(fam53, rng, 3)
        columns = completed_columns(fam53, rows, rng, per_row=2)
        assert len(columns) == 6
        for c, (d, e, y) in zip([r for r in rows for _ in range(2)], columns):
            m = fam53.build_m(fam53.build_a(c), fam53.build_b(d, e, y))
            assert is_singular(m)

    def test_random_columns_count(self, fam53):
        rng = ReproducibleRNG(3)
        assert len(random_columns(fam53, rng, 7)) == 7


class TestTruthMatrix:
    def test_matrix_agrees_with_exact_singularity(self, fam53):
        rng = ReproducibleRNG(4)
        rows = sample_distinct_rows(fam53, rng, 4)
        columns = completed_columns(fam53, rows[:2], rng) + random_columns(
            fam53, rng, 4
        )
        tm = restricted_truth_matrix(fam53, rows, columns)
        for i, c in enumerate(rows):
            for j, (d, e, y) in enumerate(columns):
                m = fam53.build_m(fam53.build_a(c), fam53.build_b(d, e, y))
                assert bool(tm.data[i, j]) == is_singular(m)

    def test_ones_at_least_completions(self, fam53):
        rng = ReproducibleRNG(5)
        rows = sample_distinct_rows(fam53, rng, 6)
        columns = completed_columns(fam53, rows[:3], rng)
        tm = restricted_truth_matrix(fam53, rows, columns)
        assert tm.ones_count() >= 3


class TestPipeline:
    def test_report_shape(self, fam53):
        report = build_and_measure(fam53, seed=6, n_rows=10, n_random_columns=8)
        assert report.shape[0] == 10
        assert report.ones >= 5  # the completions
        assert 0 < report.max_rectangle_fraction <= 1.0

    def test_nondegenerate_with_e(self, fam53):
        report = build_and_measure(fam53, seed=7, n_rows=12, n_random_columns=10)
        assert not report.is_degenerate

    def test_degenerate_without_e(self):
        # e_width = 0: one shared singular column covers everything.
        fam = RestrictedFamily(5, 2)
        report = build_and_measure(fam, seed=8, n_rows=10, n_random_columns=5)
        assert report.is_degenerate
