"""Resume-to-byte-identity for the sharded truth-matrix builder.

The streamed builder's whole contract is one sentence: however a build is
cut into blocks, killed, resumed, or fanned out, the reassembled
TruthMatrix is byte-for-byte the single-pass matrix.  Hypothesis drives
the kill point and block grid; the fixed tests pin worker fan-out, the
fraction engine, and the resume counters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cache, obs
from repro.singularity.family import RestrictedFamily
from repro.singularity.truth_builder import (
    TruthBuildInterrupted,
    completed_columns,
    random_columns,
    restricted_truth_matrix,
    sample_distinct_rows,
    sharded_truth_matrix,
)
from repro.util.rng import ReproducibleRNG


def workload(seed=3, n_rows=10, n_cols=26):
    family = RestrictedFamily(5, 3)
    rng = ReproducibleRNG(seed)
    rows = sample_distinct_rows(family, rng, n_rows)
    cols = completed_columns(family, rows[:4], rng, 2)
    cols += random_columns(family, rng, n_cols - len(cols))
    return family, rows, cols


@pytest.fixture(scope="module")
def baseline():
    family, rows, cols = workload()
    return family, rows, cols, restricted_truth_matrix(family, rows, cols)


class TestShardedEqualsSinglePass:
    def test_no_store_needed(self, baseline):
        family, rows, cols, base = baseline
        tm = sharded_truth_matrix(family, rows, cols, block_size=7)
        assert tm.data.tobytes() == base.data.tobytes()
        assert tm.row_labels == base.row_labels
        assert tm.col_labels == base.col_labels

    @pytest.mark.parametrize("block_size", [1, 5, 8, 100])
    def test_block_grid_never_changes_bytes(self, baseline, block_size):
        family, rows, cols, base = baseline
        tm = sharded_truth_matrix(family, rows, cols, block_size=block_size)
        assert tm.data.tobytes() == base.data.tobytes()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_count_never_changes_bytes(self, baseline, workers):
        family, rows, cols, base = baseline
        tm = restricted_truth_matrix(
            family, rows, cols, workers=workers, block_size=6
        )
        assert tm.data.tobytes() == base.data.tobytes()

    def test_fraction_engine_streams_too(self, baseline):
        family, rows, cols, base = baseline
        tm = sharded_truth_matrix(
            family, rows, cols, engine="fraction", block_size=9
        )
        assert tm.data.tobytes() == base.data.tobytes()


class TestResume:
    @given(
        kill=st.integers(min_value=1, max_value=5),
        block=st.integers(min_value=3, max_value=11),
    )
    @settings(max_examples=10, deadline=None)
    def test_kill_then_resume_is_byte_identical(
        self, tmp_path_factory, baseline, kill, block
    ):
        family, rows, cols, base = baseline
        # A kill point at/past the block count would just finish the build.
        kill = min(kill, len(cache.block_ranges(len(cols), block)) - 1)
        scratch = tmp_path_factory.mktemp("shards")
        with cache.directory(scratch) as store:
            with pytest.raises(TruthBuildInterrupted) as exc:
                sharded_truth_matrix(
                    family, rows, cols, block_size=block,
                    interrupt_after=kill,
                )
            assert exc.value.blocks_done == kill
            assert store.shard_stats()["partial_builds"] == 1
            with obs.scoped() as reg:
                tm = sharded_truth_matrix(
                    family, rows, cols, block_size=block
                )
                counters = reg.snapshot()["counters"]
            assert tm.data.tobytes() == base.data.tobytes()
            assert counters["truth_builder.shards_resumed"] == kill
            stats = store.shard_stats()
            assert stats["complete_builds"] == 1
            assert store.verify_shards() == []

    def test_completed_build_is_all_hits(self, baseline, tmp_path):
        family, rows, cols, base = baseline
        with cache.directory(tmp_path):
            sharded_truth_matrix(family, rows, cols, block_size=6)
            with obs.scoped() as reg:
                tm = sharded_truth_matrix(family, rows, cols, block_size=6)
                counters = reg.snapshot()["counters"]
            assert tm.data.tobytes() == base.data.tobytes()
            assert "truth_builder.shards_built" not in counters

    def test_engines_do_not_share_shards(self, baseline, tmp_path):
        family, rows, cols, base = baseline
        with cache.directory(tmp_path) as store:
            sharded_truth_matrix(family, rows, cols, block_size=6)
            tm = sharded_truth_matrix(
                family, rows, cols, engine="fraction", block_size=6
            )
            assert tm.data.tobytes() == base.data.tobytes()
            assert store.shard_stats()["builds"] == 2

    def test_interrupt_reports_progress(self, baseline, tmp_path):
        family, rows, cols, _base = baseline
        with cache.directory(tmp_path):
            with pytest.raises(TruthBuildInterrupted) as exc:
                sharded_truth_matrix(
                    family, rows, cols, block_size=4, interrupt_after=2
                )
        err = exc.value
        assert err.blocks_done == 2
        assert err.blocks_total == len(cache.block_ranges(len(cols), 4))
        assert err.key is not None


class TestValidation:
    def test_bad_block_size(self, baseline):
        family, rows, cols, _base = baseline
        with pytest.raises(ValueError):
            sharded_truth_matrix(family, rows, cols, block_size=0)

    def test_empty_columns_fall_back(self):
        family, rows, _cols = workload()
        tm = sharded_truth_matrix(family, rows, [], block_size=4)
        assert tm.shape == (len(rows), 0)

    def test_build_and_dtype(self, baseline):
        _family, _rows, _cols, base = baseline
        assert base.data.dtype == np.uint8
