"""Tests for the vectorized 2×2 singularity truth matrices."""

import pytest

from repro.comm.bits import MatrixBitCodec
from repro.comm.partition import pi_zero
from repro.comm.truth_matrix import truth_matrix_from_matrix_predicate
from repro.exact.rank import is_singular
from repro.singularity.two_by_two import (
    count_divisor_pairs,
    exact_singular_count_2x2,
    measured_rank_bound_sweep,
    singularity_2x2_truth_matrix,
)


class TestTruthMatrix:
    def test_shape_and_count_k1(self):
        tm = singularity_2x2_truth_matrix(1)
        assert tm.shape == (4, 4)
        assert tm.ones_count() == 10

    def test_matches_generic_enumerator_k1(self):
        # Labels differ (our builder: row = a*2^k + c; generic: bit tuples),
        # so compare entries after mapping labels explicitly.
        fast = singularity_2x2_truth_matrix(1)
        codec = MatrixBitCodec(2, 2, 1)
        slow = truth_matrix_from_matrix_predicate(is_singular, codec, pi_zero(codec))
        assert fast.ones_count() == slow.ones_count()
        assert sorted(fast.data.sum(axis=1)) == sorted(slow.data.sum(axis=1))

    def test_counts_match_closed_form(self):
        for k in (1, 2, 3):
            tm = singularity_2x2_truth_matrix(k)
            assert tm.ones_count() == exact_singular_count_2x2(k)

    def test_entries_spot_check(self):
        from repro.exact.matrix import Matrix

        k = 2
        q = 1 << k
        tm = singularity_2x2_truth_matrix(k)
        for a, b, c, d in [(1, 2, 2, 3), (1, 2, 2, 4 % q), (0, 0, 0, 0), (3, 3, 1, 1)]:
            expected = is_singular(Matrix([[a, b], [c, d]]))
            assert bool(tm.data[a * q + c, b * q + d]) == expected

    def test_k_range_guard(self):
        with pytest.raises(ValueError):
            singularity_2x2_truth_matrix(0)
        with pytest.raises(ValueError):
            singularity_2x2_truth_matrix(7)


class TestCounting:
    def test_divisor_pairs(self):
        # value 4 over [0, 8): (1,4),(4,1),(2,2) -> 3.
        assert count_divisor_pairs(4, 8) == 3
        # value 0 over [0, q): 2q - 1 pairs.
        assert count_divisor_pairs(0, 4) == 7

    def test_singular_count_growth(self):
        counts = [exact_singular_count_2x2(k) for k in (1, 2, 3, 4)]
        assert counts == [10, 64, 336, 1664]
        # Roughly q^2 * polylog growth: each step multiplies by ~4-6.5
        # (the ratio drifts down toward 4 as the polylog correction fades).
        assert all(4 < b / a < 6.5 for a, b in zip(counts, counts[1:]))


class TestRankSweep:
    def test_log_rank_linear_in_k(self):
        rows = measured_rank_bound_sweep([1, 2, 3, 4])
        log_ranks = [r["log2_rank"] for r in rows]
        increments = [b - a for a, b in zip(log_ranks, log_ranks[1:])]
        # ~2 bits of lower bound per extra k bit: linear growth in k.
        assert all(1.5 < inc < 2.5 for inc in increments)

    def test_bound_below_trivial(self):
        for r in measured_rank_bound_sweep([1, 2, 3]):
            assert r["log2_rank"] <= 2 * r["kn2"]
