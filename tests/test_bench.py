"""Tests for the pinned perf harness (repro.bench, `python -m repro bench`)."""

import json

import pytest

from repro.bench import SPEEDUP_TARGET, bench_engines, render_summary, run_bench


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_PERF.json"
    report = run_bench(quick=True, workers=2, out_path=out)
    return report, out


class TestRunBench:
    def test_writes_valid_json(self, quick_report):
        report, out = quick_report
        on_disk = json.loads(out.read_text())
        assert on_disk["engines"] == report["engines"]
        assert on_disk["quick"] is True

    def test_byte_identity_everywhere(self, quick_report):
        report, _ = quick_report
        assert report["engines"]["byte_identical"] is True
        assert report["parallel"]["truth_matrix"]["byte_identical"] is True
        assert report["parallel"]["chaos"]["verdicts_identical"] is True
        assert report["ok"] is True

    def test_speedup_measured(self, quick_report):
        report, _ = quick_report
        e = report["engines"]
        assert e["speedup"] > 0
        assert e["speedup_target"] == SPEEDUP_TARGET
        assert e["fraction_seconds"] > 0 and e["modnp_seconds"] > 0

    def test_obs_snapshot_attached(self, quick_report):
        report, _ = quick_report
        counters = report["obs"]["counters"]
        # The modnp fast path must actually have filtered something.
        assert counters.get("truth_builder.modnp_filtered", 0) > 0
        assert "truth_builder.fraction" in report["obs"]["timers"]
        assert "truth_builder.modnp" in report["obs"]["timers"]

    def test_summary_renders(self, quick_report):
        report, _ = quick_report
        text = render_summary(report)
        assert "speedup" in text
        assert "ok = True" in text


class TestCli:
    def test_bench_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "perf.json"
        rc = main(["bench", "--quick", "--workers", "2", "--out", str(out)])
        assert rc == 0
        assert json.loads(out.read_text())["ok"] is True
        assert "speedup" in capsys.readouterr().out


def test_full_mode_targets_5x():
    # The acceptance bar itself — full mode must gate on >= 5x.
    assert SPEEDUP_TARGET == 5.0


@pytest.mark.slow
def test_full_bench_meets_target(tmp_path):
    report = run_bench(quick=False, workers=4, out_path=tmp_path / "full.json")
    assert report["engines"]["meets_target"]
    assert report["ok"]
