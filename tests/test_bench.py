"""Tests for the pinned perf harness (repro.bench, `python -m repro bench`)."""

import json

import pytest

from repro.bench import (
    CACHE_SPEEDUP_TARGET,
    EXACT_SPEEDUP_TARGET,
    SPEEDUP_TARGET,
    bench_engines,
    render_summary,
    run_bench,
)


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_PERF.json"
    report = run_bench(quick=True, workers=2, out_path=out)
    return report, out


class TestRunBench:
    def test_writes_valid_json(self, quick_report):
        report, out = quick_report
        on_disk = json.loads(out.read_text())
        assert on_disk["engines"] == report["engines"]
        assert on_disk["quick"] is True

    def test_byte_identity_everywhere(self, quick_report):
        report, _ = quick_report
        assert report["engines"]["byte_identical"] is True
        assert report["parallel"]["truth_matrix"]["byte_identical"] is True
        assert report["parallel"]["chaos"]["verdicts_identical"] is True
        assert report["ok"] is True

    def test_speedup_measured(self, quick_report):
        report, _ = quick_report
        e = report["engines"]
        assert e["speedup"] > 0
        assert e["speedup_target"] == SPEEDUP_TARGET
        assert e["fraction_seconds"] > 0 and e["modnp_seconds"] > 0

    def test_obs_snapshot_attached(self, quick_report):
        report, _ = quick_report
        counters = report["obs"]["counters"]
        # The modnp fast path must actually have filtered something.
        assert counters.get("truth_builder.modnp_filtered", 0) > 0
        assert "truth_builder.fraction" in report["obs"]["timers"]
        assert "truth_builder.modnp" in report["obs"]["timers"]

    def test_summary_renders(self, quick_report):
        report, _ = quick_report
        text = render_summary(report)
        assert "speedup" in text
        assert "exact D(f) search" in text
        assert "persistent cache" in text
        assert "ok = True" in text

    def test_exact_search_section(self, quick_report):
        report, _ = quick_report
        x = report["exact_search"]
        assert x["values_identical"] is True
        assert x["speedup"] > 0
        assert x["speedup_target"] == EXACT_SPEEDUP_TARGET
        assert {c["name"] for c in x["cases"]} == {"EQ6", "GT6", "RAND6"}
        assert all(c["values_identical"] for c in x["cases"])

    def test_cache_section(self, quick_report):
        report, _ = quick_report
        c = report["cache"]
        assert c["results_identical"] is True
        assert c["cold_seconds"] > 0 and c["warm_seconds"] > 0
        assert c["speedup_target"] == CACHE_SPEEDUP_TARGET
        # Every partition's deduped matrix landed one record with a d field.
        assert c["store"]["entries"] == c["partitions"]
        assert c["store"]["fields"]["d"] == c["partitions"]

    def test_no_cache_skips_the_roundtrip(self, tmp_path):
        report = run_bench(
            quick=True, workers=2, out_path=tmp_path / "nc.json", no_cache=True
        )
        assert report["cache"] is None
        assert report["ok"] is True
        assert "persistent cache" not in render_summary(report)


class TestCli:
    def test_bench_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "perf.json"
        rc = main(["bench", "--quick", "--workers", "2", "--out", str(out)])
        assert rc == 0
        assert json.loads(out.read_text())["ok"] is True
        assert "speedup" in capsys.readouterr().out


def test_full_mode_targets_5x():
    # The acceptance bars themselves — full mode must gate on >= 5x for
    # both engine comparisons and >= 10x for the warm cache.
    assert SPEEDUP_TARGET == 5.0
    assert EXACT_SPEEDUP_TARGET == 5.0
    assert CACHE_SPEEDUP_TARGET == 10.0


@pytest.mark.slow
def test_full_bench_meets_target(tmp_path):
    report = run_bench(quick=False, workers=4, out_path=tmp_path / "full.json")
    assert report["engines"]["meets_target"]
    assert report["exact_search"]["meets_target"]
    assert report["cache"]["meets_target"]
    assert report["ok"]
