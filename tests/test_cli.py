"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["family"])
        assert args.n == 7 and args.k == 2


class TestCommands:
    def test_family(self, capsys):
        assert main(["family", "--n", "7", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "free information" in out
        assert "q = 3" in out

    def test_singular(self, capsys):
        assert main(["singular", "--n", "5", "--k", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "singular = True" in out
        assert "det = 0" in out

    def test_protocols(self, capsys):
        assert main(["protocols", "--n", "3", "--k", "2", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "trivial" in out and "fingerprint" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "--n", "63", "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1.1 lower bound" in out
        assert "A*T^2" in out

    def test_check(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "E16" in out and "E17" in out

    def test_invalid_family_rejected(self):
        with pytest.raises(ValueError):
            main(["family", "--n", "6", "--k", "2"])  # even n

    def test_chaos_quick(self, capsys):
        assert main(["chaos", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "chaos sweep" in out
        assert "no silent corruption" in out

    def test_chaos_json(self, capsys):
        import json

        assert main(["chaos", "--quick", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data
        assert all(point["silent_wrong"] == 0 for point in data)

    def test_chaos_custom_cell(self, capsys):
        assert main([
            "chaos",
            "--protocols", "equality",
            "--kinds", "flip",
            "--rates", "0.0,0.01",
            "--runs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "equality" in out
