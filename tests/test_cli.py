"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["family"])
        assert args.n == 7 and args.k == 2


class TestCommands:
    def test_family(self, capsys):
        assert main(["family", "--n", "7", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "free information" in out
        assert "q = 3" in out

    def test_singular(self, capsys):
        assert main(["singular", "--n", "5", "--k", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "singular = True" in out
        assert "det = 0" in out

    def test_protocols(self, capsys):
        assert main(["protocols", "--n", "3", "--k", "2", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "trivial" in out and "fingerprint" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "--n", "63", "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1.1 lower bound" in out
        assert "A*T^2" in out

    def test_check(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "E16" in out and "E17" in out

    def test_invalid_family_rejected(self):
        with pytest.raises(ValueError):
            main(["family", "--n", "6", "--k", "2"])  # even n

    def test_chaos_quick(self, capsys):
        assert main(["chaos", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "chaos sweep" in out
        assert "no silent corruption" in out

    def test_chaos_json(self, capsys):
        import json

        assert main(["chaos", "--quick", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data
        assert all(point["silent_wrong"] == 0 for point in data)

    def test_chaos_custom_cell(self, capsys):
        assert main([
            "chaos",
            "--protocols", "equality",
            "--kinds", "flip",
            "--rates", "0.0,0.01",
            "--runs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "equality" in out


class TestCacheCommand:
    def _warm(self, cache_dir):
        import numpy as np

        from repro import cache
        from repro.comm.exhaustive import (
            clear_search_cache,
            communication_complexity,
        )
        from repro.comm.truth_matrix import TruthMatrix

        tm = TruthMatrix(
            np.eye(4, dtype=np.uint8), tuple(range(4)), tuple(range(4))
        )
        clear_search_cache()
        with cache.directory(cache_dir):
            communication_complexity(tm)
        clear_search_cache()

    def test_no_store_configured(self, monkeypatch, capsys):
        from repro import cache

        monkeypatch.delenv(cache.ENV_VAR, raising=False)
        cache.unconfigure()
        assert main(["cache", "stats"]) == 2
        assert "no cache configured" in capsys.readouterr().err

    def test_stats_text_and_json(self, tmp_path, capsys):
        import json

        self._warm(tmp_path)
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        assert "entries : 1" in capsys.readouterr().out
        assert main([
            "cache", "stats", "--dir", str(tmp_path), "--format", "json",
        ]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["fields"]["d"] == 1

    def test_stats_reads_env_store(self, tmp_path, monkeypatch, capsys):
        from repro import cache

        self._warm(tmp_path)
        cache.unconfigure()
        monkeypatch.setenv(cache.ENV_VAR, str(tmp_path))
        assert main(["cache", "stats"]) == 0
        assert "entries : 1" in capsys.readouterr().out

    def test_verify_clean_then_corrupted(self, tmp_path, capsys):
        self._warm(tmp_path)
        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 0
        assert "verified" in capsys.readouterr().out
        victim = next((tmp_path / "objects").glob("*.json"))
        victim.write_text("{broken")
        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 1
        assert "unparseable" in capsys.readouterr().out

    def test_clear(self, tmp_path, capsys):
        self._warm(tmp_path)
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "removed 1 record(s)" in capsys.readouterr().out
        assert main([
            "cache", "stats", "--dir", str(tmp_path), "--format", "json",
        ]) == 0
        import json

        assert json.loads(capsys.readouterr().out)["entries"] == 0
