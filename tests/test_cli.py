"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["family"])
        assert args.n == 7 and args.k == 2


class TestCommands:
    def test_family(self, capsys):
        assert main(["family", "--n", "7", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "free information" in out
        assert "q = 3" in out

    def test_singular(self, capsys):
        assert main(["singular", "--n", "5", "--k", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "singular = True" in out
        assert "det = 0" in out

    def test_protocols(self, capsys):
        assert main(["protocols", "--n", "3", "--k", "2", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "trivial" in out and "fingerprint" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "--n", "63", "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1.1 lower bound" in out
        assert "A*T^2" in out

    def test_check(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "E16" in out and "E17" in out

    def test_invalid_family_rejected(self):
        with pytest.raises(ValueError):
            main(["family", "--n", "6", "--k", "2"])  # even n

    def test_chaos_quick(self, capsys):
        assert main(["chaos", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "chaos sweep" in out
        assert "no silent corruption" in out

    def test_chaos_json(self, capsys):
        import json

        assert main(["chaos", "--quick", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data
        assert all(point["silent_wrong"] == 0 for point in data)

    def test_chaos_custom_cell(self, capsys):
        assert main([
            "chaos",
            "--protocols", "equality",
            "--kinds", "flip",
            "--rates", "0.0,0.01",
            "--runs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "equality" in out


class TestMatrixCommand:
    def test_matrix_quick_table(self, capsys):
        assert main(["matrix", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "scenario matrix" in out
        assert "0 MISMATCH" in out

    def test_matrix_json_out_and_render(self, tmp_path, capsys):
        import json

        out = tmp_path / "MATRIX.json"
        rendered = tmp_path / "RESULTS.md"
        assert main([
            "matrix", "--quick", "--json",
            "--out", str(out), "--render", str(rendered),
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == 1 and report["ok"]
        assert json.loads(out.read_text()) == report
        assert rendered.read_text().startswith("<!-- AUTO-GENERATED")

    def test_matrix_check_render_catches_drift(self, tmp_path, capsys):
        stale = tmp_path / "RESULTS.md"
        stale.write_text("# stale\n")
        assert main([
            "matrix", "--quick", "--check-render", str(stale),
        ]) == 1
        captured = capsys.readouterr()
        assert "RENDER DRIFT" in captured.err


class TestServeCommands:
    def test_serve_load_bench(self, tmp_path, capsys):
        out = tmp_path / "BENCH_SERVE.json"
        assert main([
            "serve-load", "--clients", "6", "--requests", "2",
            "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "clean" in text and "p50=" in text
        import json

        report = json.loads(out.read_text())
        assert report["schema"] == 1
        for phase in report["phases"].values():
            assert set(phase["latency_ms"]) == {"p50", "p95", "p99"}
            assert "shed_rate" in phase

    def test_serve_load_chaos_gate(self, capsys):
        assert main([
            "serve-load", "--chaos", "--kinds", "erase,duplicate",
            "--chaos-requests", "20", "--clients", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "no silent corruption" in out

    def test_serve_load_chaos_json(self, capsys):
        import json

        assert main([
            "serve-load", "--chaos", "--kinds", "flip",
            "--chaos-requests", "15", "--clients", "3", "--json",
        ]) == 0
        points = json.loads(capsys.readouterr().out)
        assert points[0]["silent_wrong"] == 0
        assert points[0]["hung"] == 0

    def test_serve_bounded_run(self, capsys):
        import asyncio

        from repro.serve import decode_frame, request_frame, validate_response
        from repro.serve.server import serve_tcp

        async def drive():
            loop = asyncio.get_running_loop()
            ready = loop.create_future()
            server = asyncio.ensure_future(
                serve_tcp(port=0, max_requests=1, ready=ready)
            )
            host, port = await ready
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(request_frame("t-0", "cache.stats"))
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await asyncio.wait_for(server, 10)
            return validate_response(decode_frame(line.rstrip(b"\n")))

        frame = asyncio.run(drive())
        assert frame["ok"] is True
        assert frame["result"]["ticks"] == 0  # stats never consumes a tick


class TestCacheCommand:
    def _warm(self, cache_dir):
        import numpy as np

        from repro import cache
        from repro.comm.exhaustive import (
            clear_search_cache,
            communication_complexity,
        )
        from repro.comm.truth_matrix import TruthMatrix

        tm = TruthMatrix(
            np.eye(4, dtype=np.uint8), tuple(range(4)), tuple(range(4))
        )
        clear_search_cache()
        with cache.directory(cache_dir):
            communication_complexity(tm)
        clear_search_cache()

    def test_no_store_configured(self, monkeypatch, capsys):
        from repro import cache

        monkeypatch.delenv(cache.ENV_VAR, raising=False)
        cache.unconfigure()
        assert main(["cache", "stats"]) == 2
        assert "no cache configured" in capsys.readouterr().err

    def test_stats_text_and_json(self, tmp_path, capsys):
        import json

        self._warm(tmp_path)
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        assert "entries : 1" in capsys.readouterr().out
        assert main([
            "cache", "stats", "--dir", str(tmp_path), "--format", "json",
        ]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["fields"]["d"] == 1

    def test_stats_reads_env_store(self, tmp_path, monkeypatch, capsys):
        from repro import cache

        self._warm(tmp_path)
        cache.unconfigure()
        monkeypatch.setenv(cache.ENV_VAR, str(tmp_path))
        assert main(["cache", "stats"]) == 0
        assert "entries : 1" in capsys.readouterr().out

    def test_verify_clean_then_corrupted(self, tmp_path, capsys):
        self._warm(tmp_path)
        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 0
        assert "verified" in capsys.readouterr().out
        victim = next((tmp_path / "objects").glob("*.json"))
        victim.write_text("{broken")
        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 1
        assert "unparseable" in capsys.readouterr().out

    def test_sweep_tmp(self, tmp_path, capsys):
        self._warm(tmp_path)
        orphan = tmp_path / "objects" / "deadbeef.json.123.456.tmp"
        orphan.write_text("{half-written")
        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 1
        assert "orphaned tmp" in capsys.readouterr().out
        assert main(["cache", "sweep-tmp", "--dir", str(tmp_path)]) == 0
        assert "swept 1 orphaned tmp file(s)" in capsys.readouterr().out
        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 0

    def test_clear(self, tmp_path, capsys):
        self._warm(tmp_path)
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "removed 1 record(s)" in capsys.readouterr().out
        assert main([
            "cache", "stats", "--dir", str(tmp_path), "--format", "json",
        ]) == 0
        import json

        assert json.loads(capsys.readouterr().out)["entries"] == 0
