"""Documentation coverage: every public item carries a docstring.

A release-quality gate: the public API (everything importable from the
package `__init__`s plus every module's module-docstring) must be
documented.  Fails with the exact list of undocumented names.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.exact",
    "repro.comm",
    "repro.singularity",
    "repro.protocols",
    "repro.vlsi",
    "repro.baselines",
    "repro.util",
    "repro.cache",
    "repro.lint",
    "repro.trace",
    "repro.serve",
    "repro.costs",
    "repro.matrix",
]


def _all_modules():
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                if info.name == "__main__":  # importing it runs the CLI
                    continue
                names.append(f"{package_name}.{info.name}")
    return sorted(set(names))


class TestDocCoverage:
    def test_every_module_has_a_docstring(self):
        undocumented = []
        for name in _all_modules():
            module = importlib.import_module(name)
            if not (module.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_exported_item_documented(self):
        undocumented = []
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            for item_name in getattr(package, "__all__", []):
                item = getattr(package, item_name, None)
                if item is None:
                    undocumented.append(f"{package_name}.{item_name} (missing!)")
                    continue
                if inspect.isfunction(item) or inspect.isclass(item):
                    if not (inspect.getdoc(item) or "").strip():
                        undocumented.append(f"{package_name}.{item_name}")
        assert not undocumented, f"exports without docstrings: {undocumented}"

    def test_public_methods_documented(self):
        """Every public method of every exported class is documented."""
        undocumented = []
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            for item_name in getattr(package, "__all__", []):
                item = getattr(package, item_name, None)
                if not inspect.isclass(item):
                    continue
                for method_name, method in inspect.getmembers(item):
                    if method_name.startswith("_"):
                        continue
                    static = inspect.getattr_static(item, method_name, None)
                    if static is not None and static is inspect.getattr_static(
                        tuple, method_name, None
                    ):
                        # Inherited unchanged from tuple (namedtuple
                        # count/index) — documented upstream, not ours.
                        continue
                    if not (
                        inspect.isfunction(method)
                        or isinstance(
                            inspect.getattr_static(item, method_name, None),
                            (property, staticmethod, classmethod),
                        )
                    ):
                        continue
                    target = (
                        inspect.getattr_static(item, method_name).fget
                        if isinstance(
                            inspect.getattr_static(item, method_name, None), property
                        )
                        else method
                    )
                    if target is None:
                        continue
                    if not (inspect.getdoc(target) or "").strip():
                        undocumented.append(
                            f"{package_name}.{item_name}.{method_name}"
                        )
        real = sorted(set(undocumented))
        assert not real, f"public methods without docstrings: {real}"
