"""Smoke test: every worked example runs clean, start to finish.

The examples double as living documentation (the README points users at
them before anything else), so a broken example is a broken doc.  Each
one is executed in a fresh interpreter — examples are scripts, not
importable modules, and a subprocess also catches missing-`PYTHONPATH`
style breakage that an in-process exec would paper over.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    """The glob really found the suite (guards against a moved directory)."""
    assert "quickstart.py" in EXAMPLES
    assert "tracing_tour.py" in EXAMPLES
    assert "scenario_matrix_tour.py" in EXAMPLES
    assert len(EXAMPLES) >= 10


def _run_example(name: str, extra_env: dict | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    # Keep examples hermetic regardless of the invoking shell's setup.
    env.pop("REPRO_CACHE_DIR", None)
    env.pop("REPRO_TRACE_DIR", None)
    env.pop("REPRO_WORKERS", None)
    if extra_env:
        env.update(extra_env)
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        cwd=str(REPO_ROOT),
    )


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name):
    proc = _run_example(name)
    assert proc.returncode == 0, (
        f"{name} exited {proc.returncode}\n"
        f"stdout:\n{proc.stdout[-2000:]}\nstderr:\n{proc.stderr[-2000:]}"
    )
    assert "Traceback" not in proc.stderr


def test_tracing_tour_verifies_bit_for_bit():
    """The tour's own assertions passed and it printed the verification."""
    proc = _run_example("tracing_tour.py")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "2/2 runs verified bit-for-bit" in proc.stdout
    assert "reproduced exactly" in proc.stdout
