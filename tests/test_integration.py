"""Integration tests: the paper's full argument chains, end to end.

Each test walks one complete story from the paper across package
boundaries — family construction → lemma chain → truth matrix → bound, or
chip → cut → partition → protocol — so regressions in the glue (not just
the parts) get caught.
"""

import pytest

from repro.comm import (
    MatrixBitCodec,
    communication_complexity,
    counting_bound,
    pi_zero,
    truth_matrix_from_family,
    truth_matrix_from_matrix_predicate,
    yao_bound,
)
from repro.comm.rectangles import max_one_rectangle
from repro.exact import Matrix, is_singular, rank
from repro.protocols import FingerprintProtocol, TrivialProtocol
from repro.singularity import (
    FamilyInstance,
    RestrictedFamily,
    TheoremBounds,
    complete,
    complete_and_check_singular,
    make_proper,
    pad,
    randomized_upper_bound_bits,
    trivial_upper_bound_bits,
)
from repro.util.rng import ReproducibleRNG
from repro.vlsi import VLSIBounds, row_major_layout, thompson_cut


class TestTheoremPipelineSmall:
    """Theorem 1.1 executed end-to-end at enumerable scale."""

    def test_restricted_truth_matrix_pipeline(self):
        # n=5, k=3 (the smallest family with a nonempty E — with E empty
        # every completion degenerates to B = 0 and claim (2b) fails, which
        # is exactly why the paper's construction needs E): rows = sampled
        # C's; columns = completions (singular hits) plus varied E blocks.
        fam = RestrictedFamily(5, 3)
        rng = ReproducibleRNG(0)
        rows = []
        seen = set()
        while len(rows) < 30:
            c = fam.random_c(rng)
            if c not in seen:
                seen.add(c)
                rows.append(c)
        columns = []
        for c in rows[:15]:
            e = fam.random_e(rng)
            comp = complete(fam, c, e)
            columns.append((comp.d, e, comp.y))
        for _ in range(30):
            columns.append(
                (fam.random_d(rng), fam.random_e(rng), fam.random_y(rng))
            )
        spans = {c: fam.span_a(c) for c in rows}

        def predicate(c, col):
            return fam.b_times_u_from_blocks(*col) in spans[c]

        tm = truth_matrix_from_family(predicate, rows, columns)
        # Claim (2a) flavor: every completed column is singular on its row.
        assert tm.ones_count() >= 15
        # Claim (2b) flavor: the largest 1-rectangle covers only a sliver.
        area, _, _ = max_one_rectangle(tm)
        fraction = area / max(1, tm.ones_count())
        assert fraction < 1.0
        # Yao-style bound from the counts is consistent.
        assert counting_bound(tm.ones_count(), max(1, area)) >= 0.0

    def test_empty_e_degeneracy_is_real(self):
        # The ablation behind the parameter guard above: with e_width = 0
        # the unique completion is B = 0, singular against EVERY row — a
        # full 1-rectangle, so no rectangle bound is possible.
        fam = RestrictedFamily(5, 2)
        assert fam.e_width == 0
        empty_e = tuple(tuple() for _ in range(fam.h))
        rng = ReproducibleRNG(1)
        comps = {
            complete(fam, fam.random_c(rng), empty_e) for _ in range(5)
        }
        assert len({(c.d, c.y) for c in comps}) == 1

    def test_exact_cc_of_tiny_singularity(self):
        # 2x2 1-bit singularity: exact D(f) sits between the rank bound and
        # the trivial cost, and Yao's bound is valid against it.
        codec = MatrixBitCodec(2, 2, 1)
        tm = truth_matrix_from_matrix_predicate(is_singular, codec, pi_zero(codec))
        d = communication_complexity(tm)
        assert 1 <= d <= codec.total_bits // 2 + 1
        from repro.comm import partition_number

        assert d >= yao_bound(partition_number(tm))


class TestUpperVsLowerBounds:
    def test_sandwich_at_scale(self):
        # lower(Yao, asymptotic calculators) <= trivial upper for all sizes.
        for n, k in [(63, 8), (127, 16), (255, 32)]:
            tb = TheoremBounds(RestrictedFamily(n, k))
            assert tb.yao_lower_bound_bits() <= trivial_upper_bound_bits(n, k)

    def test_randomized_crossover_shape(self):
        # The paper's contrast: deterministic Θ(k n²) vs randomized
        # O(n² max(log n, log k)) — randomized wins iff k >> log n, loses
        # at small k.  Both directions are part of the shape.
        n = 63
        assert randomized_upper_bound_bits(n, 8) > trivial_upper_bound_bits(n, 8)
        assert randomized_upper_bound_bits(n, 256) < trivial_upper_bound_bits(n, 256)

    def test_measured_protocol_costs_bracket_theory(self):
        rng = ReproducibleRNG(1)
        n, k = 3, 4
        codec = MatrixBitCodec(2 * n, 2 * n, k)
        partition = pi_zero(codec)
        trivial = TrivialProtocol(codec, partition)
        m = Matrix.random_kbit(rng, 2 * n, 2 * n, k)
        measured = trivial.run_on_matrix(m).bits_exchanged
        assert measured == trivial_upper_bound_bits(n, k)
        fingerprint = FingerprintProtocol(codec, partition)
        fp_measured = fingerprint.run_on_matrix(m, seed=0).bits_exchanged
        assert fp_measured <= fingerprint.cost_bits()


class TestSingularInstanceFullChain:
    def test_complete_then_reduce_then_pad(self, family_7_2, rng):
        # One singular instance pushed through every reduction and the
        # padding, all answers consistent.
        c = family_7_2.random_c(rng)
        e = family_7_2.random_e(rng)
        inst = complete_and_check_singular(family_7_2, c, e)
        m = inst.m_matrix()
        from repro.singularity import all_corollary_12_reductions, corollary_13_holds

        for red in all_corollary_12_reductions():
            assert red.decide_singularity(m) is True
        assert corollary_13_holds(inst)
        padded = pad(m, family_7_2.m_size + 3)
        assert is_singular(padded)

    def test_protocols_agree_on_family_instances(self, family_7_2, rng):
        codec = family_7_2.codec()
        partition = pi_zero(codec)
        trivial = TrivialProtocol(codec, partition)
        fingerprint = FingerprintProtocol(codec, partition)
        c = family_7_2.random_c(rng)
        e = family_7_2.random_e(rng)
        singular = complete_and_check_singular(family_7_2, c, e).m_matrix()
        nonsingular = FamilyInstance.random(family_7_2, rng).m_matrix()
        assert trivial.decide(singular) is True
        assert fingerprint.decide(singular, 0) is True
        if not is_singular(nonsingular):
            assert trivial.decide(nonsingular) is False
            assert fingerprint.decide(nonsingular, 0) is False


class TestChipToProtocolBridge:
    def test_cut_partition_feeds_protocol(self):
        # Lay the 2n x 2n x k input on a chip, cut it, and run the trivial
        # protocol under the induced partition: Thompson's T >= Comm/wires.
        n, k = 3, 2
        codec = MatrixBitCodec(2 * n, 2 * n, k)
        chip = row_major_layout(codec.total_bits)
        cut = thompson_cut(chip)
        partition = cut.partition()
        assert partition.is_even(tolerance=1)
        protocol = TrivialProtocol(codec, partition)
        rng = ReproducibleRNG(2)
        m = Matrix.random_kbit(rng, 2 * n, 2 * n, k)
        assert protocol.decide(m) == is_singular(m)
        # The chip inequality with the measured cost.
        time_bound = protocol.exact_cost_bits() / cut.wires_cut
        assert time_bound > 1

    def test_cut_partition_normalizes_to_proper(self, family_7_2):
        chip = row_major_layout(family_7_2.codec().total_bits)
        cut = thompson_cut(chip)
        cert = make_proper(family_7_2, cut.partition())
        assert cert.verify(cut.partition())

    def test_vlsi_bounds_consistent_with_comm(self):
        bounds = VLSIBounds(63, 8)
        assert bounds.at2() == pytest.approx(bounds.comm_bits**2)
        assert bounds.at() >= bounds.comm_bits
