"""Coverage for small helpers not exercised elsewhere."""

import subprocess
import sys

import pytest

from repro.exact.gf2 import gf2_row_space_size_log2, pack_rows
from repro.singularity import RestrictedFamily
from repro.singularity.lemma36 import lemma36_enumeration_capacity_log2
from repro.util.fmt import format_pow, format_si


class TestLemma36Capacity:
    def test_capacity_below_threshold(self):
        # The proof's punchline: with a shared 7n/8-1 subspace, the
        # enumerable spans are fewer than r — capacity log2 < threshold log2
        # asymptotically.  At n=101 the gap is already visible.
        from repro.singularity.lemma36 import lemma36_row_threshold_log2

        fam = RestrictedFamily(101, 2)
        shared = 7 * fam.n // 8 - 1
        capacity = lemma36_enumeration_capacity_log2(fam, shared)
        threshold = lemma36_row_threshold_log2(fam)
        assert capacity < threshold

    def test_full_shared_space_zero_capacity(self, family_7_2):
        assert lemma36_enumeration_capacity_log2(family_7_2, family_7_2.n) == 0.0

    def test_capacity_monotone_in_freedom(self, family_7_2):
        low = lemma36_enumeration_capacity_log2(family_7_2, family_7_2.n - 2)
        high = lemma36_enumeration_capacity_log2(family_7_2, 1)
        assert high > low


class TestGF2Helpers:
    def test_row_space_log2_is_rank(self):
        packed, _ = pack_rows([[1, 0], [0, 1], [1, 1]])
        assert gf2_row_space_size_log2(packed) == 2


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "experiments"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "E16" in result.stdout

    def test_python_dash_m_repro_bad_args(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode != 0
