"""Tests for the counters/timers registry (repro.obs)."""

import threading

from repro import obs


class TestCounters:
    def test_inc_and_snapshot(self):
        with obs.scoped():
            obs.counter("a").inc()
            obs.counter("a").inc(4)
            obs.counter("b").inc(0)
            snap = obs.snapshot()
        assert snap["counters"] == {"a": 5, "b": 0}

    def test_same_name_same_counter(self):
        with obs.scoped():
            c1 = obs.counter("x")
            c2 = obs.counter("x")
            assert c1 is c2

    def test_reset(self):
        with obs.scoped():
            obs.counter("x").inc()
            obs.reset()
            assert obs.snapshot()["counters"] == {}

    def test_thread_safety(self):
        with obs.scoped():
            def worker():
                for _ in range(1000):
                    obs.counter("hits").inc()

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert obs.snapshot()["counters"]["hits"] == 4000


class TestTimers:
    def test_time_block_records(self):
        with obs.scoped():
            with obs.time_block("phase"):
                pass
            snap = obs.snapshot()["timers"]["phase"]
        assert snap["calls"] == 1
        assert snap["seconds"] >= 0.0

    def test_observe_accumulates(self):
        with obs.scoped():
            obs.timer("t").observe(0.5)
            obs.timer("t").observe(1.5)
            snap = obs.snapshot()["timers"]["t"]
        assert snap["calls"] == 2
        assert abs(snap["seconds"] - 2.0) < 1e-9


class TestScoped:
    def test_isolates_default_registry(self):
        obs.reset()
        obs.counter("outer").inc()
        with obs.scoped():
            obs.counter("inner").inc()
            assert "outer" not in obs.snapshot()["counters"]
        assert obs.snapshot()["counters"].get("outer") == 1
        assert "inner" not in obs.snapshot()["counters"]
        obs.reset()

    def test_snapshot_sorted(self):
        with obs.scoped():
            obs.counter("zz").inc()
            obs.counter("aa").inc()
            names = list(obs.snapshot()["counters"])
        assert names == sorted(names)
