"""The claims certificate: one test per statement of the paper.

A reviewer-facing suite — each test is named after the claim it certifies
and composes the library's pieces exactly the way the paper's text does.
Everything here is also covered by the per-module suites; this file exists
so that `pytest tests/test_paper_claims.py -v` reads as a checklist of the
paper.
"""

import math

import pytest

from repro.util.rng import ReproducibleRNG


@pytest.fixture
def rng():
    return ReproducibleRNG(1989)


# ----------------------------------------------------------------------
# Theorem 1.1
# ----------------------------------------------------------------------
class TestTheorem11:
    def test_lower_bound_is_omega_kn2(self):
        """The Yao-counting lower bound divided by k n² converges to a
        positive constant along both axes."""
        from repro.singularity import theorem_ratio

        ratios_n = [theorem_ratio(n, 8) for n in (127, 255, 511)]
        assert all(r > 0.05 for r in ratios_n)
        assert ratios_n[-1] > ratios_n[0] * 0.9  # non-vanishing

    def test_upper_bound_is_o_kn2(self, rng):
        """The trivial protocol realizes O(k n²) on the wire, exactly."""
        from repro.comm import MatrixBitCodec, pi_zero
        from repro.exact import Matrix
        from repro.protocols import TrivialProtocol

        n, k = 4, 3
        codec = MatrixBitCodec(2 * n, 2 * n, k)
        protocol = TrivialProtocol(codec, pi_zero(codec))
        m = Matrix.random_kbit(rng, 2 * n, 2 * n, k)
        assert protocol.run_on_matrix(m).bits_exchanged == k * (2 * n) ** 2 // 2 + 1

    def test_bound_survives_the_partition_minimum(self):
        """Yao's definition minimizes over partitions; the measured minimum
        stays positive (exact at the enumerable size)."""
        from repro.comm import min_partition_singularity

        assert min_partition_singularity(1).best_cost >= 2

    def test_measured_lower_bound_linear_in_k(self):
        """GF(2) log-rank on 2×2 truth matrices: ~2 more bits per extra k."""
        from repro.singularity import measured_rank_bound_sweep

        rows = measured_rank_bound_sweep([1, 3, 5])
        assert rows[1]["log2_rank"] - rows[0]["log2_rank"] > 3
        assert rows[2]["log2_rank"] - rows[1]["log2_rank"] > 3


# ----------------------------------------------------------------------
# The probabilistic contrast (Leighton)
# ----------------------------------------------------------------------
class TestProbabilisticContrast:
    def test_randomized_cost_is_n2_log(self):
        from repro.comm import MatrixBitCodec, pi_zero
        from repro.protocols import FingerprintProtocol

        codec = MatrixBitCodec(6, 6, 128)
        protocol = FingerprintProtocol(codec, pi_zero(codec))
        # Cost scales with max(log n, log k), not with k.
        assert protocol.cost_bits() < 36 * 128 / 2

    def test_one_sided_error(self, rng):
        from repro.comm import MatrixBitCodec, pi_zero
        from repro.exact import Matrix
        from repro.protocols import FingerprintProtocol

        codec = MatrixBitCodec(4, 4, 2)
        protocol = FingerprintProtocol(codec, pi_zero(codec))
        singular = Matrix([[1, 1, 0, 0], [2, 2, 0, 0], [0, 0, 1, 0], [0, 0, 0, 1]])
        assert all(protocol.decide(singular, seed) for seed in range(10))


# ----------------------------------------------------------------------
# Corollary 1.2
# ----------------------------------------------------------------------
class TestCorollary12:
    def test_every_decomposition_decides_singularity(self, rng):
        from repro.exact import Matrix
        from repro.singularity import all_corollary_12_reductions

        for _ in range(5):
            m = Matrix.random_kbit(rng, 6, 6, 2)
            for reduction in all_corollary_12_reductions():
                assert reduction.agrees_with_ground_truth(m)

    def test_nonzero_structure_suffices(self):
        """The strengthened form: QR/SVD/LUP extractors consume only the
        structure sets, never factor values."""
        from repro.exact import Matrix
        from repro.singularity import lup_reduction, qr_reduction, svd_reduction

        singular = Matrix([[1, 2], [2, 4]])
        for reduction in (qr_reduction(), svd_reduction(), lup_reduction()):
            assert reduction.decide_singularity(singular) is True


# ----------------------------------------------------------------------
# Corollary 1.3
# ----------------------------------------------------------------------
class TestCorollary13:
    def test_solvability_biconditional_on_family(self, rng):
        from repro.singularity import FamilyInstance, RestrictedFamily, corollary_13_holds

        fam = RestrictedFamily(7, 2)
        for _ in range(5):
            assert corollary_13_holds(FamilyInstance.random(fam, rng))


# ----------------------------------------------------------------------
# Section 2 (techniques) and Section 3 (the lemma chain)
# ----------------------------------------------------------------------
class TestLemmaChain:
    def test_lemma_3_2(self, rng):
        from repro.singularity import FamilyInstance, RestrictedFamily, check_equivalence

        fam = RestrictedFamily(7, 2)
        assert all(
            check_equivalence(FamilyInstance.random(fam, rng)) for _ in range(5)
        )

    def test_lemma_3_4(self):
        from repro.singularity import RestrictedFamily, spans_are_distinct

        fam = RestrictedFamily(5, 2)
        assert spans_are_distinct(fam, list(fam.enumerate_c()))

    def test_lemma_3_5(self, rng):
        from repro.exact import is_singular
        from repro.singularity import RestrictedFamily, complete_and_check_singular

        fam = RestrictedFamily(9, 2)
        inst = complete_and_check_singular(fam, fam.random_c(rng), fam.random_e(rng))
        assert is_singular(inst.m_matrix())

    def test_lemma_3_6_and_3_7(self, rng):
        from repro.singularity import (
            RestrictedFamily,
            intersection_dimension_profile,
            one_rectangle_column_cap,
        )

        fam = RestrictedFamily(7, 2)
        cs = [fam.random_c(rng) for _ in range(5)]
        profile = intersection_dimension_profile(fam, cs)
        assert profile[-1] <= profile[0]
        assert one_rectangle_column_cap(fam, cs) >= 1

    def test_lemma_3_9(self, rng):
        from repro.comm import random_even_partition
        from repro.singularity import RestrictedFamily, make_proper

        fam = RestrictedFamily(7, 2)
        partition = random_even_partition(rng, fam.codec())
        assert make_proper(fam, partition).verify(partition)

    def test_padding(self, rng):
        from repro.exact import Matrix
        from repro.singularity import padding_preserves_singularity

        block = Matrix.random_kbit(rng, 14, 14, 2)
        assert padding_preserves_singularity(block, 17)


# ----------------------------------------------------------------------
# VLSI corollaries and the span problem
# ----------------------------------------------------------------------
class TestVLSICorollaries:
    def test_at2_at_t_exponents(self):
        from repro.vlsi import VLSIBounds, empirical_exponent

        ns = [64, 128, 256]
        assert empirical_exponent(
            [VLSIBounds(n, 8).at2() for n in ns], ns
        ) == pytest.approx(4.0, abs=1e-9)
        assert empirical_exponent(
            [VLSIBounds(n, 8).at() for n in ns], ns
        ) == pytest.approx(3.0, abs=1e-9)
        assert empirical_exponent(
            [VLSIBounds(n, 8).min_time() for n in ns], ns
        ) == pytest.approx(1.0, abs=1e-9)

    def test_sharper_than_chazelle_monier(self):
        from repro.vlsi import Comparison

        rows = {name: factor for name, _, _, factor in Comparison(256, 16).rows()}
        assert rows["T"] > 1.0
        assert rows["A*T"] > 1000.0


class TestSpanProblem:
    def test_bridge_to_singularity(self, rng):
        from repro.exact import Matrix
        from repro.singularity import span_instance_agrees_with_singularity

        for _ in range(5):
            assert span_instance_agrees_with_singularity(
                Matrix.random_kbit(rng, 6, 6, 2)
            )

    def test_lovasz_saks_bound(self):
        from repro.baselines import fixed_partition_bound_bits
        from repro.exact import Vector

        xs = [Vector([1, 0]), Vector([0, 1])]
        assert fixed_partition_bound_bits(xs) == pytest.approx(2.0)
