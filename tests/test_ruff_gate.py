"""The ruff side of the static-analysis story: pinned, scoped, optional.

Ruff is a CI-side tool (installed pinned in the lint job), deliberately
not a runtime or test dependency — so the actual `ruff check` test skips
wherever the binary is absent.  The config-shape tests always run: they
keep the pyproject scope and the CI pin from drifting apart.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
RUFF = shutil.which("ruff")


def _load_pyproject() -> dict:
    try:
        import tomllib
    except ImportError:  # Python 3.10
        pytest.skip("tomllib requires Python 3.11+")
    return tomllib.loads((REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8"))


def test_ruff_config_is_scoped_to_fatal_errors():
    config = _load_pyproject()
    ruff = config["tool"]["ruff"]
    assert ruff["target-version"] == "py310"
    assert "tests/lint/fixtures" in ruff["extend-exclude"]
    select = ruff["lint"]["select"]
    assert select == ["E9", "F63", "F7", "F82"], (
        "widening the ruff rule set must be a conscious, CI-verified change"
    )


def test_ci_pins_the_ruff_version():
    workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text(
        encoding="utf-8"
    )
    assert "ruff==" in workflow, "CI must install an exact ruff version"
    assert "ruff check ." in workflow


@pytest.mark.skipif(RUFF is None, reason="ruff not installed (CI-only tool)")
def test_ruff_check_is_clean():
    proc = subprocess.run(
        [RUFF, "check", "."],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"ruff findings:\n{proc.stdout}\n{proc.stderr}"


def test_fixture_tree_is_syntactically_valid():
    """The excluded fixture tree must still parse — violations are semantic,
    not syntax errors (the linter needs an AST to find them)."""
    import ast

    fixtures = REPO_ROOT / "tests" / "lint" / "fixtures"
    files = sorted(fixtures.rglob("*.py"))
    assert files, "fixture tree went missing"
    for path in files:
        ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


def test_repo_tree_compiles():
    """Approximates ruff's E9 (syntax) locally where ruff is unavailable."""
    proc = subprocess.run(
        [sys.executable, "-m", "compileall", "-q", "src", "tests", "examples"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
