"""Tests for the structured-tracing layer (:mod:`repro.trace`)."""
