"""Trace core: the ring, spans, canonical JSONL, and activation rules.

Everything here tests :mod:`repro.trace.core` in isolation — no protocol
runs, no subprocesses.  The invariants under test are the ones the docs
promise (docs/observability.md): bounded memory with counted drops,
canonical byte-stable JSONL written atomically, and an activation order
where explicit :func:`configure` beats the ``REPRO_TRACE_DIR``
environment variable.
"""

import json
import os

import pytest

from repro import obs
from repro.trace import core
from repro.trace.core import (
    TraceEvent,
    Tracer,
    decode_event,
    encode_event,
    load_jsonl,
)


@pytest.fixture(autouse=True)
def _clean_activation(monkeypatch):
    """Each test starts from the disabled fast path and leaves it so."""
    monkeypatch.delenv(core.ENV_VAR, raising=False)
    core.unconfigure()
    yield
    core.unconfigure()


class TestEventCodec:
    def test_round_trip_is_lossless(self):
        event = TraceEvent(7, 123456789, "event", "wire.send", 3, None,
                           {"agent": 1, "payload": "0110", "bits": 4})
        again = decode_event(encode_event(event))
        assert again.as_dict() == event.as_dict()

    def test_encoding_is_canonical(self):
        """Sorted keys, compact separators, one trailing newline."""
        event = TraceEvent(0, 1, "event", "x", None, None, {"b": 2, "a": 1})
        line = encode_event(event)
        assert line.endswith("\n") and "\n" not in line[:-1]
        assert ": " not in line and ", " not in line
        keys = list(json.loads(line))
        assert keys == sorted(keys)
        # Field insertion order must not leak into the bytes.
        flipped = TraceEvent(0, 1, "event", "x", None, None, {"a": 1, "b": 2})
        assert encode_event(flipped) == line

    @pytest.mark.parametrize("line", [
        "not json",
        "[1, 2, 3]",
        '{"kind": "nonsense", "seq": 0}',
        '{"kind": "event"}',  # missing required fields
    ])
    def test_malformed_lines_decode_to_none(self, line):
        assert decode_event(line) is None


class TestRing:
    def test_overflow_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.event("tick", i=i)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        survivors = [ev.fields["i"] for ev in tracer.events()]
        assert survivors == [6, 7, 8, 9]  # oldest evicted first

    def test_sequence_numbers_survive_eviction(self):
        tracer = Tracer(capacity=2)
        for _ in range(5):
            tracer.event("tick")
        assert [ev.seq for ev in tracer.events()] == [3, 4]


class TestSpans:
    def test_span_id_is_start_seq_and_nesting_links_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("leaf")
        events = tracer.events()
        start_outer, start_inner, leaf, end_inner, end_outer = events
        assert start_outer.kind == "span_start" and start_outer.span == 0
        assert start_inner.parent == start_outer.span
        assert leaf.span == start_inner.span  # attributed to innermost
        assert end_inner.kind == "span_end"
        assert end_inner.span == start_inner.span
        assert end_outer.span == start_outer.span
        assert end_outer.fields["duration_ns"] >= 0

    def test_span_end_carries_counter_deltas(self):
        tracer = Tracer()
        counter = obs.counter("test.trace.delta")
        with tracer.span("work"):
            counter.inc(3)
        end = tracer.events()[-1]
        assert end.fields["counters"]["test.trace.delta"] == 3

    def test_unchanged_counters_stay_out_of_the_delta(self):
        tracer = Tracer()
        obs.counter("test.trace.quiet")  # exists, never moves
        with tracer.span("work"):
            pass
        end = tracer.events()[-1]
        assert "test.trace.quiet" not in end.fields.get("counters", {})

    def test_annotate_lands_on_span_end_without_mutating_caller(self):
        tracer = Tracer()
        shared = {"static": 1}
        with tracer.span("work", **shared) as span:
            span.annotate(result=42)
        start, end = tracer.events()
        assert start.fields == {"static": 1}
        assert end.fields["result"] == 42
        assert shared == {"static": 1}

    def test_exception_records_error_and_still_closes(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        end = tracer.events()[-1]
        assert end.kind == "span_end" and end.fields["error"] == "ValueError"


class TestFlush:
    def test_flush_is_atomic_and_lossless(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            tracer.event("e", payload="01")
        path = tracer.flush(tmp_path / "t.jsonl")
        assert path == tmp_path / "t.jsonl"
        assert not list(tmp_path.glob("*.tmp"))  # temp file replaced away
        loaded = load_jsonl(path)
        assert [e.as_dict() for e in loaded] == [
            e.as_dict() for e in tracer.events()
        ]

    def test_flush_twice_is_byte_identical(self, tmp_path):
        tracer = Tracer()
        tracer.event("e", b=2, a=1)
        first = tracer.flush(tmp_path / "t.jsonl").read_bytes()
        second = tracer.flush(tmp_path / "t.jsonl").read_bytes()
        assert first == second

    def test_default_sink_is_per_process(self, tmp_path):
        tracer = Tracer(sink_dir=tmp_path, label="lbl")
        assert tracer.default_sink_path() == (
            tmp_path / f"lbl-{os.getpid()}.jsonl"
        )

    def test_flush_without_sink_is_a_noop(self):
        tracer = Tracer()
        tracer.event("e")
        assert tracer.flush() is None

    def test_loader_skips_malformed_lines(self, tmp_path):
        tracer = Tracer()
        tracer.event("good")
        path = tracer.flush(tmp_path / "t.jsonl")
        path.write_text(path.read_text() + "garbage line\n\n")
        assert [e.name for e in load_jsonl(path)] == ["good"]


class TestActivation:
    def test_fast_path_is_none_when_nothing_is_active(self):
        assert core.active_tracer() is None

    def test_env_var_activates_a_sink_tracer(self, monkeypatch, tmp_path):
        monkeypatch.setenv(core.ENV_VAR, str(tmp_path))
        tracer = core.active_tracer()
        assert tracer is not None and tracer.sink_dir == tmp_path
        assert core.active_tracer() is tracer  # cached per directory

    def test_blank_env_var_means_disabled(self, monkeypatch):
        monkeypatch.setenv(core.ENV_VAR, "  ")
        assert core.active_tracer() is None

    def test_configure_beats_the_environment(self, monkeypatch, tmp_path):
        monkeypatch.setenv(core.ENV_VAR, str(tmp_path / "env"))
        configured = core.configure(tmp_path / "explicit")
        assert core.active_tracer() is configured
        assert configured.sink_dir == tmp_path / "explicit"

    def test_configure_none_disables_despite_environment(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(core.ENV_VAR, str(tmp_path))
        assert core.configure(None) is None
        assert core.active_tracer() is None
        core.unconfigure()
        assert core.active_tracer() is not None  # the environment rules again

    def test_capture_scopes_and_restores(self):
        before = core.active_tracer()
        with core.capture() as tracer:
            assert core.active_tracer() is tracer
            core.event("inside")
        assert core.active_tracer() is before
        assert [e.name for e in tracer.events()] == ["inside"]

    def test_capture_nests(self):
        with core.capture() as outer:
            with core.capture() as inner:
                core.event("deep")
            assert core.active_tracer() is outer
        assert [e.name for e in inner.events()] == ["deep"]
        assert outer.events() == []

    def test_directory_flushes_on_exit(self, tmp_path):
        with core.directory(tmp_path, label="run") as tracer:
            core.event("persisted")
        files = list(tmp_path.glob("run-*.jsonl"))
        assert len(files) == 1
        assert [e.name for e in load_jsonl(files[0])] == ["persisted"]
        assert core.active_tracer() is None
        assert tracer.dropped == 0

    def test_disabled_scopes_off_an_active_tracer(self):
        with core.capture() as tracer:
            with core.disabled():
                assert core.active_tracer() is None
                core.event("swallowed")
            core.event("kept")
        assert [e.name for e in tracer.events()] == ["kept"]

    def test_module_helpers_are_noops_when_off(self):
        with core.span("ignored") as span:
            assert span is None
        core.event("ignored")  # must not raise
