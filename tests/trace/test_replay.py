"""Transcript replay: traces are faithful, replayable artifacts of runs.

The acceptance bar from the issue: for each of the six chaos-suite
protocols, replaying the recorded trace of a clean-channel run must
reproduce the run's gold leaf bit for bit.  On top of that, faulty
ARQ-protected runs must replay too (the transcript records what the
sender paid for, not what the faults delivered), and tampering with a
recorded trace must be *detected*, not silently accepted.
"""

import pytest

from repro import trace
from repro.comm.agents import run_protocol, run_supervised
from repro.comm.chaos import SCENARIOS, make_fault_model, run_case
from repro.comm.faults import FaultyChannel
from repro.comm.transport import reliable_pair
from repro.util.rng import ReproducibleRNG


def _run_scenario_clean(name: str, seed: int = 0):
    """One clean-channel gold run of a registered chaos scenario."""
    case = SCENARIOS[name](seed)
    coins = ReproducibleRNG(seed) if case.randomized else None
    return run_protocol(
        case.protocol.agent0,
        case.protocol.agent1,
        case.input0,
        case.input1,
        public_randomness=coins,
    )


class TestGoldLeafReplay:
    """Every chaos-suite protocol's trace replays to its gold leaf."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_clean_run_replays_bit_for_bit(self, name):
        with trace.capture() as tracer:
            result = _run_scenario_clean(name)
        gold_leaf = result.transcript.as_bit_string()

        replays = trace.replay_all(tracer.events())
        assert len(replays) == 1
        replay = replays[0]
        assert replay.verified, replay.problems
        assert replay.leaf == gold_leaf
        assert replay.transcript.total_bits == result.transcript.total_bits
        assert replay.transcript.rounds == result.transcript.rounds
        assert replay.runner == "run_protocol"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_distinct_instances_replay_to_distinct_leaves(self, seed):
        """The replay tracks the *instance*, not some fixed transcript."""
        with trace.capture() as tracer:
            result = _run_scenario_clean("equality", seed=seed)
        replay = trace.replay_all(tracer.events())[0]
        assert replay.verified
        assert replay.leaf == result.transcript.as_bit_string()


class TestFaultyReplay:
    def test_arq_run_under_faults_still_replays(self):
        """Faults corrupt deliveries, never the recorded transcript."""
        case = SCENARIOS["trivial"](3)
        model = make_fault_model("flip", 0.002, seed=5)
        with trace.capture() as tracer:
            inner0 = case.protocol.agent0(case.input0)
            inner1 = case.protocol.agent1(case.input1)
            wrapped0, wrapped1, e0, e1 = reliable_pair(inner0, inner1)
            report = run_supervised(
                lambda _: wrapped0,
                lambda _: wrapped1,
                None,
                None,
                channel=FaultyChannel(model),
            )
        assert report.ok
        replay = trace.replay_all(tracer.events())[0]
        assert replay.verified, replay.problems
        assert replay.runner == "run_supervised"
        assert replay.leaf == report.transcript.as_bit_string()

    def test_run_case_traces_gold_and_faulty_runs(self):
        """run_case produces two runs per call; both replay verified."""
        case = SCENARIOS["matmul_verify"](1)
        with trace.capture() as tracer:
            outcome = run_case(case, make_fault_model("erase", 0.01, seed=2))
        replays = trace.replay_all(tracer.events())
        assert len(replays) == 2  # the gold run, then the faulty run
        assert all(r.verified for r in replays), [r.problems for r in replays]
        assert replays[1].leaf == outcome.report.transcript.as_bit_string()


class TestTamperDetection:
    def _traced_events(self):
        with trace.capture() as tracer:
            _run_scenario_clean("equality")
        return tracer.events()

    def test_flipped_payload_bit_is_a_leaf_mismatch(self):
        events = self._traced_events()
        for ev in events:
            if ev.kind == "event" and ev.name == "wire.send":
                payload = ev.fields["payload"]
                flipped = ("1" if payload[0] == "0" else "0") + payload[1:]
                ev.fields = {**ev.fields, "payload": flipped}
                break
        replay = trace.replay_all(events)[0]
        assert not replay.verified
        assert any("leaf mismatch" in p for p in replay.problems)

    def test_truncated_payload_is_a_bit_count_mismatch(self):
        events = self._traced_events()
        for ev in events:
            if ev.kind == "event" and ev.name == "wire.send":
                ev.fields = {**ev.fields, "payload": ev.fields["payload"][:-1]}
                break
        replay = trace.replay_all(events)[0]
        assert not replay.verified
        assert any("payload length" in p for p in replay.problems)

    def test_missing_report_is_unreported_not_verified(self):
        events = [
            ev
            for ev in self._traced_events()
            if not (ev.kind == "event" and ev.name == "run.report")
        ]
        replay = trace.replay_all(events)[0]
        assert not replay.verified
        assert replay.report == {}
        assert not replay.problems  # nothing to check against — not a lie

    def test_replay_survives_jsonl_round_trip(self, tmp_path):
        with trace.capture() as tracer:
            result = _run_scenario_clean("solvability")
        path = tracer.flush(tmp_path / "run.jsonl")
        replay = trace.replay_all(trace.load_jsonl(path))[0]
        assert replay.verified
        assert replay.leaf == result.transcript.as_bit_string()
