"""Trace summaries and the ``repro trace`` CLI, against the issue's bars.

Two acceptance criteria live here: a traced E15 exact-search run must
attribute at least 95% of its wall time to named spans, and the JSON
export schema is pinned — field-for-field — so downstream consumers can
rely on it (bump :data:`repro.trace.SCHEMA_VERSION` to change it).
"""

import json

import pytest

from repro import trace
from repro.cli import main
from repro.comm.agents import run_protocol
from repro.comm.chaos import SCENARIOS

#: Every key a schema-v1 event carries — no more, no less.
SCHEMA_V1_EVENT_KEYS = {
    "seq", "tick_ns", "kind", "name", "span", "parent", "fields",
}


def _traced_e15_search():
    """A traced run of the quick E15 D(f) suite (fresh search, no memo)."""
    from repro.bench import _exact_search_suite
    from repro.comm.exhaustive import (
        clear_search_cache,
        communication_complexity,
    )

    suite = _exact_search_suite(quick=True)
    clear_search_cache()
    with trace.capture() as tracer:
        values = {
            name: communication_complexity(tm, engine="bitset")
            for name, tm in suite
        }
    return tracer, values


class TestSummaryBars:
    def test_e15_run_attributes_95_percent_of_wall_time(self):
        tracer, values = _traced_e15_search()
        summary = trace.summarize(tracer.events(), tracer.dropped)
        assert summary["coverage"] >= 0.95, summary["coverage"]
        span_stats = summary["spans"]["exhaustive.communication_complexity"]
        assert span_stats["calls"] == len(values) == 3
        assert span_stats["total_ns"] > 0

    def test_summary_counts_events_and_spans_per_name(self):
        case = SCENARIOS["equality"](0)
        with trace.capture() as tracer:
            run_protocol(
                case.protocol.agent0, case.protocol.agent1,
                case.input0, case.input1,
            )
        summary = trace.summarize(tracer.events(), tracer.dropped)
        assert summary["schema"] == trace.SCHEMA_VERSION
        assert summary["spans"]["protocol.run"]["calls"] == 1
        assert summary["event_counts"]["run.report"] == 1
        assert summary["event_counts"]["wire.send"] >= 1
        assert summary["dropped"] == 0

    def test_dropped_count_is_surfaced(self):
        tracer = trace.Tracer(capacity=2)
        for _ in range(5):
            tracer.event("tick")
        summary = trace.summarize(tracer.events(), tracer.dropped)
        assert summary["dropped"] == 3

    def test_chaos_points_fold_into_fault_attribution(self):
        with trace.capture() as tracer:
            trace.event(
                "chaos.point",
                protocol="equality", kind="flip", rate=0.01,
                faults_by_kind={"flip": 7},
                retries_by_kind={"flip": 10},
            )
            trace.event(
                "chaos.point",
                protocol="equality", kind="erase", rate=0.01,
                faults_by_kind={"erase": 2, "flip": 1},
                retries_by_kind={"erase": 3},
            )
        summary = trace.summarize(tracer.events())
        assert summary["faults_by_kind"] == {
            "erase": {"injected": 2, "retries": 3},
            "flip": {"injected": 8, "retries": 10},
        }
        rendered = trace.render_summary(summary)
        assert "fault kind" in rendered and "flip" in rendered

    def test_render_summary_is_humane(self):
        tracer, _ = _traced_e15_search()
        rendered = trace.render_summary(
            trace.summarize(tracer.events(), tracer.dropped)
        )
        assert "attributed to top-level spans" in rendered
        assert "exhaustive.communication_complexity" in rendered


@pytest.fixture()
def trace_file(tmp_path):
    """One flushed trace file holding a verified protocol run."""
    case = SCENARIOS["trivial"](0)
    with trace.capture() as tracer:
        run_protocol(
            case.protocol.agent0, case.protocol.agent1,
            case.input0, case.input1,
        )
    return tracer.flush(tmp_path / "run.jsonl")


class TestCli:
    def test_export_json_schema_is_pinned(self, trace_file, capsys):
        assert main(
            ["trace", "export", "--file", str(trace_file), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"schema", "events"}
        assert payload["schema"] == 1 == trace.SCHEMA_VERSION
        assert payload["events"], "export must carry the events"
        for event in payload["events"]:
            assert set(event) == SCHEMA_V1_EVENT_KEYS
            assert event["kind"] in trace.EVENT_KINDS
            assert isinstance(event["fields"], dict)

    def test_export_jsonl_is_the_canonical_passthrough(
        self, trace_file, capsys
    ):
        assert main(
            ["trace", "export", "--file", str(trace_file), "--format", "jsonl"]
        ) == 0
        out = capsys.readouterr().out
        assert out == trace_file.read_text()

    def test_summary_reads_a_directory(self, trace_file, capsys):
        assert main(
            ["trace", "summary", "--dir", str(trace_file.parent)]
        ) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out and "protocol.run" in out

    def test_replay_verifies_and_exits_zero(self, trace_file, capsys):
        assert main(["trace", "replay", "--file", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "1/1 runs verified bit-for-bit" in out

    def test_replay_of_a_tampered_trace_exits_nonzero(
        self, trace_file, capsys
    ):
        tampered = []
        for line in trace_file.read_text().splitlines():
            raw = json.loads(line)
            if raw["kind"] == "event" and raw["name"] == "wire.send":
                payload = raw["fields"]["payload"]
                raw["fields"]["payload"] = (
                    "1" if payload[0] == "0" else "0"
                ) + payload[1:]
            tampered.append(json.dumps(raw))
        trace_file.write_text("\n".join(tampered) + "\n")
        assert main(["trace", "replay", "--file", str(trace_file)]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_no_trace_files_is_a_usage_error(self, tmp_path, monkeypatch,
                                             capsys):
        monkeypatch.delenv(trace.ENV_VAR, raising=False)
        assert main(["trace", "summary", "--dir", str(tmp_path)]) == 2
        assert "no trace files" in capsys.readouterr().err

    def test_bad_format_for_action_is_rejected(self, trace_file, capsys):
        assert main(
            ["trace", "summary", "--file", str(trace_file),
             "--format", "jsonl"]
        ) == 2
        assert "not valid" in capsys.readouterr().err
