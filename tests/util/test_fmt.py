"""Tests for table rendering and big-number formatting."""

import math

import pytest

from repro.util.fmt import Table, format_pow, format_si, log2_big


class TestFormatSI:
    def test_plain(self):
        assert format_si(0) == "0"
        assert format_si(999) == "999"

    def test_kilo(self):
        assert format_si(1234) == "1.23k"

    def test_negative(self):
        assert format_si(-2500).startswith("-2.5")

    def test_huge(self):
        assert format_si(1e19).endswith("E")


class TestFormatPow:
    def test_power_of_two(self):
        assert format_pow(1024) == "2^10.0"

    def test_nonpositive(self):
        assert format_pow(0) == "0"
        assert format_pow(-5) == "-5"

    def test_other_base(self):
        assert format_pow(81, base=3) == "3^4.0"


class TestLog2Big:
    def test_small(self):
        assert log2_big(8) == pytest.approx(3.0)

    def test_huge_beyond_float(self):
        value = 3 ** (10**4)
        expected = (10**4) * math.log2(3)
        assert log2_big(value) == pytest.approx(expected, rel=1e-12)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log2_big(0)


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"])
        t.add_row(["x", 1])
        t.add_row(["longer", 123456])
        text = t.render()
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]

    def test_title(self):
        t = Table(["a"], title="hello")
        t.add_row([1])
        assert t.render().splitlines()[0] == "hello"

    def test_row_width_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row([3.14159265])
        assert "3.142" in t.render()

    def test_as_dicts(self):
        t = Table(["a", "b"])
        t.add_row([1, 2])
        assert t.as_dicts() == [{"a": "1", "b": "2"}]

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])
