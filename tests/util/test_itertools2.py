"""Tests for the enumeration helpers."""

import pytest

from repro.util.itertools2 import (
    chunked,
    mixed_radix_counter,
    mixed_radix_decode,
    mixed_radix_encode,
    mixed_radix_size,
    pairs,
    product_grid,
    sample_distinct,
    take,
)
from repro.util.rng import ReproducibleRNG


class TestMixedRadix:
    def test_counts_match_size(self):
        radices = [2, 3, 4]
        assert len(list(mixed_radix_counter(radices))) == mixed_radix_size(radices)

    def test_odometer_order(self):
        assert list(mixed_radix_counter([2, 2])) == [
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
        ]

    def test_empty_radices_yield_single_empty_tuple(self):
        assert list(mixed_radix_counter([])) == [()]

    def test_zero_radix_yields_nothing(self):
        assert list(mixed_radix_counter([3, 0, 2])) == []

    def test_negative_radix_rejected(self):
        with pytest.raises(ValueError):
            list(mixed_radix_counter([2, -1]))

    def test_decode_matches_enumeration(self):
        radices = [3, 2, 5]
        for index, tup in enumerate(mixed_radix_counter(radices)):
            assert mixed_radix_decode(index, radices) == tup

    def test_encode_decode_roundtrip(self):
        radices = [7, 4, 9]
        for index in [0, 1, 17, 251]:
            digits = mixed_radix_decode(index, radices)
            assert mixed_radix_encode(digits, radices) == index

    def test_decode_out_of_range(self):
        with pytest.raises(ValueError):
            mixed_radix_decode(6, [2, 3])

    def test_encode_bad_digit(self):
        with pytest.raises(ValueError):
            mixed_radix_encode([2, 0], [2, 3])


class TestGridAndSampling:
    def test_product_grid_cardinality(self):
        rows = list(product_grid(a=[1, 2], b=["x", "y", "z"]))
        assert len(rows) == 6
        assert rows[0] == {"a": 1, "b": "x"}

    def test_take(self):
        assert take(iter(range(100)), 3) == [0, 1, 2]
        assert take(iter([1]), 5) == [1]
        with pytest.raises(ValueError):
            take([], -1)

    def test_sample_distinct_small_universe(self):
        rng = ReproducibleRNG(0)
        out = sample_distinct(rng, 10, 10)
        assert sorted(out) == list(range(10))

    def test_sample_distinct_huge_universe(self):
        rng = ReproducibleRNG(0)
        out = sample_distinct(rng, 10**18, 50)
        assert len(set(out)) == 50
        assert all(0 <= x < 10**18 for x in out)

    def test_sample_distinct_rejects_oversample(self):
        rng = ReproducibleRNG(0)
        with pytest.raises(ValueError):
            sample_distinct(rng, 3, 4)

    def test_chunked(self):
        assert list(chunked(range(7), 3)) == [[0, 1, 2], [3, 4, 5], [6]]
        with pytest.raises(ValueError):
            list(chunked([1], 0))

    def test_pairs(self):
        assert list(pairs([1, 2, 3])) == [(1, 2), (1, 3), (2, 3)]
