"""Tests for the deterministic process-pool fan-out (repro.util.parallel)."""

import os
from unittest import mock

import pytest

from repro.util.parallel import SharedBound, parmap, resolve_workers


def _square(x):
    return x * x


def _pid_tag(x):
    return (x, os.getpid())


class TestResolveWorkers:
    def test_explicit_wins(self):
        with mock.patch.dict(os.environ, {"REPRO_WORKERS": "7"}):
            assert resolve_workers(3) == 3

    def test_env_fallback(self):
        with mock.patch.dict(os.environ, {"REPRO_WORKERS": "5"}):
            assert resolve_workers(None) == 5

    def test_default_is_serial(self):
        env = {k: v for k, v in os.environ.items() if k != "REPRO_WORKERS"}
        with mock.patch.dict(os.environ, env, clear=True):
            assert resolve_workers(None) == 1

    def test_clamped_below_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1

    def test_malformed_env_raises(self):
        with mock.patch.dict(os.environ, {"REPRO_WORKERS": "many"}):
            with pytest.raises(ValueError, match="REPRO_WORKERS"):
                resolve_workers(None)


class TestParmap:
    def test_serial_basic(self):
        assert parmap(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_empty(self):
        assert parmap(_square, [], workers=4) == []

    def test_single_task_stays_serial(self):
        (result,) = parmap(_pid_tag, [9], workers=8)
        assert result == (9, os.getpid())

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_order_and_values_worker_invariant(self, workers):
        tasks = list(range(30))
        assert parmap(_square, tasks, workers=workers) == [
            x * x for x in tasks
        ]

    def test_parallel_really_forks(self):
        results = parmap(_pid_tag, list(range(8)), workers=2)
        assert [x for x, _ in results] == list(range(8))  # order preserved
        pids = {pid for _, pid in results}
        assert os.getpid() not in pids  # ran in child processes

    def test_accepts_any_iterable(self):
        assert parmap(_square, range(4), workers=1) == [0, 1, 4, 9]


def _publish_task(task):
    path, value = task
    return SharedBound(path).publish(value)


class TestSharedBound:
    def test_missing_file_is_none(self, tmp_path):
        assert SharedBound(tmp_path / "bound").get() is None

    def test_publish_then_get(self, tmp_path):
        bound = SharedBound(tmp_path / "bound")
        assert bound.publish(7) == 7
        assert bound.get() == 7

    def test_min_merge(self, tmp_path):
        bound = SharedBound(tmp_path / "bound")
        bound.publish(9)
        assert bound.publish(4) == 4
        # A worse value never regresses the file.
        assert bound.publish(12) == 4
        assert bound.get() == 4

    def test_corrupt_file_degrades_to_none(self, tmp_path):
        path = tmp_path / "bound"
        path.write_text("not-an-int")
        bound = SharedBound(path)
        assert bound.get() is None
        # Publishing over corruption repairs the file.
        bound.publish(3)
        assert bound.get() == 3

    def test_cross_process_convergence(self, tmp_path):
        path = tmp_path / "bound"
        values = [9, 5, 8, 3, 7, 6, 4, 11]
        parmap(_publish_task, [(path, v) for v in values], workers=4)
        assert SharedBound(path).get() == min(values)

    def test_no_tmp_litter(self, tmp_path):
        bound = SharedBound(tmp_path / "bound")
        for value in (9, 3, 5):
            bound.publish(value)
        assert [p.name for p in tmp_path.iterdir()] == ["bound"]
