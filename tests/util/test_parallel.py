"""Tests for the deterministic process-pool fan-out (repro.util.parallel)."""

import os
from unittest import mock

import pytest

from repro.util.parallel import parmap, resolve_workers


def _square(x):
    return x * x


def _pid_tag(x):
    return (x, os.getpid())


class TestResolveWorkers:
    def test_explicit_wins(self):
        with mock.patch.dict(os.environ, {"REPRO_WORKERS": "7"}):
            assert resolve_workers(3) == 3

    def test_env_fallback(self):
        with mock.patch.dict(os.environ, {"REPRO_WORKERS": "5"}):
            assert resolve_workers(None) == 5

    def test_default_is_serial(self):
        env = {k: v for k, v in os.environ.items() if k != "REPRO_WORKERS"}
        with mock.patch.dict(os.environ, env, clear=True):
            assert resolve_workers(None) == 1

    def test_clamped_below_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1

    def test_malformed_env_raises(self):
        with mock.patch.dict(os.environ, {"REPRO_WORKERS": "many"}):
            with pytest.raises(ValueError, match="REPRO_WORKERS"):
                resolve_workers(None)


class TestParmap:
    def test_serial_basic(self):
        assert parmap(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_empty(self):
        assert parmap(_square, [], workers=4) == []

    def test_single_task_stays_serial(self):
        (result,) = parmap(_pid_tag, [9], workers=8)
        assert result == (9, os.getpid())

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_order_and_values_worker_invariant(self, workers):
        tasks = list(range(30))
        assert parmap(_square, tasks, workers=workers) == [
            x * x for x in tasks
        ]

    def test_parallel_really_forks(self):
        results = parmap(_pid_tag, list(range(8)), workers=2)
        assert [x for x, _ in results] == list(range(8))  # order preserved
        pids = {pid for _, pid in results}
        assert os.getpid() not in pids  # ran in child processes

    def test_accepts_any_iterable(self):
        assert parmap(_square, range(4), workers=1) == [0, 1, 4, 9]
