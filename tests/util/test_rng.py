"""Tests for reproducible RNG streams."""

import pytest

from repro.util.rng import ReproducibleRNG, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_path_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_order_sensitivity(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


class TestReproducibleRNG:
    def test_same_seed_same_stream(self):
        a = ReproducibleRNG(7)
        b = ReproducibleRNG(7)
        assert [a.randrange(1000) for _ in range(20)] == [
            b.randrange(1000) for _ in range(20)
        ]

    def test_spawn_independence(self):
        root = ReproducibleRNG(7)
        child_a = root.spawn("x")
        child_b = root.spawn("y")
        assert [child_a.randrange(100) for _ in range(10)] != [
            child_b.randrange(100) for _ in range(10)
        ]

    def test_spawn_reproducible(self):
        assert (
            ReproducibleRNG(7).spawn("x").randrange(10**9)
            == ReproducibleRNG(7).spawn("x").randrange(10**9)
        )

    def test_kbit_entry_range(self):
        rng = ReproducibleRNG(1)
        values = [rng.kbit_entry(3) for _ in range(200)]
        assert all(0 <= v <= 7 for v in values)
        assert len(set(values)) > 1

    def test_kbit_entry_rejects_bad_k(self):
        with pytest.raises(ValueError):
            ReproducibleRNG(1).kbit_entry(0)

    def test_kbit_matrix_shape(self):
        m = ReproducibleRNG(1).kbit_matrix(3, 4, 2)
        assert len(m) == 3 and all(len(r) == 4 for r in m)
        assert all(0 <= x <= 3 for row in m for x in row)

    def test_entry_below(self):
        rng = ReproducibleRNG(2)
        assert all(0 <= rng.entry_below(5) < 5 for _ in range(100))
        with pytest.raises(ValueError):
            rng.entry_below(0)

    def test_permutation_is_permutation(self):
        perm = ReproducibleRNG(3).permutation(20)
        assert sorted(perm) == list(range(20))

    def test_bit_vector(self):
        bits = ReproducibleRNG(4).bit_vector(50)
        assert len(bits) == 50
        assert set(bits) <= {0, 1}

    def test_root_seed_recorded(self):
        assert ReproducibleRNG(99).root_seed == 99
