"""Tests for the cycle-accurate funnel chip simulator."""

import pytest

from repro.vlsi.chip_sim import (
    FunnelRun,
    layout_of,
    measured_vs_bound,
    simulate_funnel,
    sweep_heights,
)
from repro.vlsi.cuts import thompson_cut


class TestSimulation:
    def test_single_lane_drains_serially(self):
        run = simulate_funnel(50, 1)
        assert run.cycles >= 50  # one bit per cycle through one wire

    def test_more_lanes_fewer_cycles(self):
        runs = sweep_heights(200, [1, 2, 4, 8])
        cycles = [r.cycles for r in runs]
        assert cycles == sorted(cycles, reverse=True)
        assert all(a > b for a, b in zip(cycles, cycles[1:]))

    def test_throughput_limit(self):
        # T >= bits / lanes always (each lane absorbs one bit per cycle).
        for h in (1, 3, 7):
            run = simulate_funnel(100, h)
            assert run.cycles >= 100 / h

    def test_all_bits_accounted(self):
        run = simulate_funnel(123, 5)
        assert run.input_bits == 123
        assert run.cycles < 10 * (123 + run.width)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_funnel(0, 1)
        with pytest.raises(ValueError):
            simulate_funnel(10, 0)

    def test_products(self):
        run = FunnelRun(10, 4, 40, 12)
        assert run.area == 40
        assert run.at_product == 480
        assert run.at2_product == 5760


class TestAgainstTheory:
    def test_respects_thompson_floor(self):
        rows = measured_vs_bound(392, 98.0, [1, 2, 4, 8, 14])
        assert all(r["respects_floor"] for r in rows)

    def test_at2_roughly_constant_in_drain_regime(self):
        # In the drain-limited regime T ~ I/h and A ~ I, so A·T² ~ I³/h²:
        # quadrupling lanes cuts A·T² by ~16x.
        runs = sweep_heights(400, [2, 8])
        ratio = runs[0].at2_product / runs[1].at2_product
        assert 8 < ratio < 32

    def test_layout_feeds_cut_machinery(self):
        run = simulate_funnel(392, 7)
        chip = layout_of(run)
        cut = thompson_cut(chip)
        assert cut.partition().is_even(tolerance=1)
