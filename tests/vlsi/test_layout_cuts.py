"""Tests for chip layouts and Thompson cuts."""

import pytest

from repro.vlsi.cuts import (
    best_time_bound_over_area,
    cut_bound_on_time,
    thompson_cut,
)
from repro.vlsi.layout import (
    ChipLayout,
    boundary_layout,
    column_blocks_layout,
    row_major_layout,
    scattered_layout,
)
from repro.util.rng import ReproducibleRNG


class TestLayouts:
    def test_row_major_dimensions(self):
        chip = row_major_layout(100)
        assert chip.area >= 100
        assert chip.num_inputs == 100

    def test_row_major_custom_width(self):
        chip = row_major_layout(10, width=3)
        assert chip.width == 3 and chip.height == 4

    def test_boundary_ports_on_perimeter(self):
        chip = boundary_layout(40)
        for x, y in chip.ports:
            assert x in (0, chip.width - 1) or y in (0, chip.height - 1)

    def test_boundary_area_quadratic(self):
        small = boundary_layout(40)
        large = boundary_layout(80)
        # Doubling the ports ~quadruples the area (perimeter-bound).
        assert large.area > 3 * small.area

    def test_scattered(self):
        chip = scattered_layout(ReproducibleRNG(0), 50, 10, 10)
        assert chip.num_inputs == 50

    def test_column_blocks(self):
        chip = column_blocks_layout(12, 3)
        assert chip.width == 3
        xs = {x for x, _ in chip.ports}
        assert xs == {0, 1, 2}

    def test_port_bounds_validated(self):
        with pytest.raises(ValueError):
            ChipLayout(2, 2, ((5, 0),))

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            ChipLayout(0, 3, ())

    def test_oriented_tall(self):
        chip = ChipLayout(2, 5, ((0, 4), (1, 0)))
        rotated = chip.oriented_tall()
        assert rotated.height <= rotated.width
        assert rotated.num_inputs == 2


class TestThompsonCut:
    def test_even_split_row_major(self):
        for bits in (10, 99, 100, 256):
            cut = thompson_cut(row_major_layout(bits))
            assert cut.imbalance() <= 1

    def test_wire_bound(self):
        chip = row_major_layout(144)  # 12x12
        cut = thompson_cut(chip)
        assert cut.wires_cut <= min(chip.width, chip.height) + 1

    def test_scattered_layouts(self):
        rng = ReproducibleRNG(1)
        for trial in range(10):
            chip = scattered_layout(rng, 60 + trial, 9, 13)
            cut = thompson_cut(chip)
            # Ports can share cells, so a perfectly even jog may not exist;
            # the cut must still be near-even and cheap.
            assert cut.imbalance() <= 9  # <= max ports per cell here
            assert cut.wires_cut <= 10

    def test_partition_is_induced_correctly(self):
        chip = row_major_layout(64)
        cut = thompson_cut(chip)
        partition = cut.partition()
        assert partition.total_bits == 64
        assert partition.is_even(tolerance=1)

    def test_column_block_layout_cuts_cheaply(self):
        chip = column_blocks_layout(100, 10)
        cut = thompson_cut(chip)
        assert cut.imbalance() <= 1

    def test_single_port(self):
        cut = thompson_cut(row_major_layout(1))
        assert cut.imbalance() <= 1


class TestTimeBounds:
    def test_cut_bound(self):
        chip = row_major_layout(100)
        cut = thompson_cut(chip)
        assert cut_bound_on_time(1000.0, cut) == 1000.0 / cut.wires_cut

    def test_area_form(self):
        assert best_time_bound_over_area(100.0, 100) == pytest.approx(100.0 / 11)

    def test_validation(self):
        chip = row_major_layout(4)
        cut = thompson_cut(chip)
        with pytest.raises(ValueError):
            cut_bound_on_time(-1.0, cut)
        with pytest.raises(ValueError):
            best_time_bound_over_area(10.0, 0)
