"""Tests for the AT²/AT/T calculators and the Chazelle–Monier comparison."""

import pytest

from repro.vlsi.chazelle_monier import (
    ChazelleMonierBounds,
    Comparison,
    boundary_area_penalty,
    model_assumptions,
)
from repro.vlsi.tradeoffs import VLSIBounds, empirical_exponent, shape_exponents


class TestVLSIBounds:
    def test_at2_is_comm_squared(self):
        b = VLSIBounds(10, 4)
        assert b.at2() == b.comm_bits**2

    def test_area_floor(self):
        b = VLSIBounds(10, 4)
        assert b.area() == 4 * 400

    def test_min_time_consistency(self):
        b = VLSIBounds(10, 4)
        assert b.min_time() == pytest.approx(b.comm_bits / b.area() ** 0.5)

    def test_time_decreases_with_area(self):
        b = VLSIBounds(10, 4)
        assert b.time_at_area(10_000) > b.time_at_area(40_000)

    def test_area_below_floor_rejected(self):
        b = VLSIBounds(10, 4)
        with pytest.raises(ValueError):
            b.time_at_area(1.0)

    def test_alpha_interpolation(self):
        b = VLSIBounds(10, 4)
        assert b.at_general_alpha(0) == b.input_bits
        assert b.at_general_alpha(1) == b.input_bits**2
        with pytest.raises(ValueError):
            b.at_general_alpha(2)


class TestShapeExponents:
    def test_at_exponents(self):
        # Finite-difference the calculators and compare to the claimed
        # (k, n) exponents — the "shape" contract of the reproduction.
        claims = shape_exponents()
        ns = [50, 100, 200, 400]
        ks = [2, 4, 8, 16]
        getters = {
            "comm": lambda b: b.comm_bits,
            "at2": lambda b: b.at2(),
            "area": lambda b: b.area(),
            "at": lambda b: b.at(),
            "min_time": lambda b: b.min_time(),
        }
        for name, (k_exp, n_exp) in claims.items():
            values_n = [
                getters[name](VLSIBounds(n, 4))
                if name != "comm"
                else VLSIBounds(n, 4).comm_bits
                for n in ns
            ]
            assert empirical_exponent(values_n, ns) == pytest.approx(n_exp, abs=1e-9)
            values_k = [
                getters[name](VLSIBounds(100, k))
                if name != "comm"
                else VLSIBounds(100, k).comm_bits
                for k in ks
            ]
            assert empirical_exponent(values_k, ks) == pytest.approx(k_exp, abs=1e-9)

    def test_empirical_exponent_validation(self):
        with pytest.raises(ValueError):
            empirical_exponent([1.0], [1.0])


class TestChazelleMonier:
    def test_their_bounds(self):
        cm = ChazelleMonierBounds(100, 8)
        assert cm.time() == 100
        assert cm.at() == 10_000

    def test_paper_improves_time_by_sqrt_k(self):
        rows = dict(
            (name, (ours, theirs, factor))
            for name, ours, theirs, factor in Comparison(100, 16).rows()
        )
        # T improvement factor = sqrt(k)/2 in our normalization: > 1 for k > 4.
        assert rows["T"][2] > 1.0
        assert rows["A*T"][2] > 100.0

    def test_improvement_grows_with_k(self):
        small = dict(
            (n, f) for n, _, _, f in Comparison(100, 4).rows()
        )
        large = dict(
            (n, f) for n, _, _, f in Comparison(100, 64).rows()
        )
        assert large["T"] > small["T"]
        assert large["A*T"] > small["A*T"]

    def test_boundary_penalty_quadratic(self):
        area, ratio = boundary_area_penalty(200)
        assert area > 200  # far above the I floor
        assert 0.01 < ratio < 1.0

    def test_model_assumptions_documented(self):
        assumptions = model_assumptions()
        assert "chazelle_monier" in assumptions
        assert any("boundary" in a for a in assumptions["chazelle_monier"])
